//! The wire-level PBFT cluster runtime: the glue between the
//! transport-agnostic [`confide_consensus::Replica`] state machine and a
//! real [`crate::server::NodeServer`] process.
//!
//! Three pieces live here:
//!
//! * [`ClusterConfig`] — who the peers are, which TEE platform this node
//!   quotes from, and which attestation roots it will trust for the mesh.
//! * [`ClusterShared`] — lock-free counters the connection handlers read
//!   (current view/leader for `NotPrimary` redirects, view-change and
//!   state-sync totals for [`crate::frame::NodeStatus`]).
//! * the **cluster driver** ([`cluster_loop`]) — the thread that replaces
//!   the single-node batcher when [`crate::server::ServerConfig::cluster`]
//!   is set. It owns the replica state machine, batches client jobs into
//!   proposals when it is the leader, executes committed blocks through
//!   the same `execute_block_parallel` + WAL-fsync path the batcher uses,
//!   and runs the StateSync client when it falls behind.
//!
//! ## Attested mesh
//!
//! Peer connections are ordinary T-Protocol connections that first run
//! the K-Protocol MAP join ([`crate::client::Conn::rejoin`]): the dialer
//! quotes its KM enclave, the acceptor counter-quotes and wraps the
//! consortium keys, and the dialer checks the unwrapped `pk_tx` equals
//! its own. Only after that exchange does the acceptor mark the
//! connection *attested* and accept [`crate::frame::Message::Peer`] or
//! `StateSyncReq` frames on it — an unattested socket cannot inject
//! consensus traffic or read the raw WAL. Attestation narrows the fault
//! model but does not eliminate misbehaviour: a compromised host can
//! still replay, delay or mutate traffic around its enclave. Every
//! consensus message therefore travels in a [`SignedPeerMsg`] envelope
//! under the member's enclave-held consensus key, commits carry signed
//! votes that fold into persisted [`QuorumCert`]s, and conflicting signed
//! messages become transferable [`Evidence`] (see `crates/consensus`).
//! The driver can also *play* the Byzantine side: [`ByzantinePreset`]
//! intercepts outbound traffic to equivocate, split votes, corrupt
//! proposals or go silent — the chaos harness the e2e tests drive.

use crate::client::{Conn, NetError};
use crate::frame::Message;
use crate::server::{InFlight, Job, ServerConfig, ServerStats};
use confide_consensus::evidence::{append_framed, read_framed};
use confide_consensus::{
    primary_of, Action, Evidence, Keyring, PeerMsg, ProposeError, QuorumCert, Replica,
    ReplicaConfig, SignedPeerMsg,
};
use confide_core::node::ConfideNode;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use confide_tee::platform::TeePlatform;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outbound per-peer queue depth. Consensus messages are small and
/// retransmission is built into the protocol (heartbeats, re-broadcast on
/// timeout), so a full queue drops the oldest traffic rather than
/// blocking the driver.
const PEER_QUEUE: usize = 1024;

/// Max WAL bytes served per `StateSyncResp` chunk. Sized so a chunk plus
/// its certificate payload stays well under the 1 MiB frame ceiling.
pub const SYNC_CHUNK_MAX: u32 = 256 * 1024;

/// Max bytes of encoded quorum certificates attached to one sync chunk.
/// A joiner that needs more certs than fit simply re-requests: it only
/// applies the cert-covered prefix, so the next request's `have_height`
/// picks up where the budget ran out.
pub const SYNC_CERT_BUDGET: usize = 300 * 1024;

/// A scripted misbehaviour the driver injects into its *outbound*
/// consensus traffic (inbound handling stays honest, so the faulty node's
/// local state remains well-defined). Used by `confide-node --byzantine`
/// and the chaos e2e tests; composes with [`crate::fault::FaultProxy`]
/// for network-level faults on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantinePreset {
    /// As leader, send one proposal to half the peers and a different
    /// (reordered/padded) proposal for the same (view, seq) to the rest —
    /// the classic equivocation the evidence machinery exists to catch.
    Equivocate,
    /// Send conflicting Prepare/Commit digests to different peers.
    ConflictingVote,
    /// As leader, broadcast proposals whose transaction bytes are
    /// corrupted relative to the copy it executes itself.
    CorruptProposal,
    /// As leader, send nothing at all (no proposals, no heartbeats) and
    /// force the followers to elect around the silence.
    SilentLeader,
}

impl std::str::FromStr for ByzantinePreset {
    type Err = String;
    fn from_str(s: &str) -> Result<ByzantinePreset, String> {
        match s {
            "equivocate" => Ok(ByzantinePreset::Equivocate),
            "conflicting-vote" => Ok(ByzantinePreset::ConflictingVote),
            "corrupt-proposal" => Ok(ByzantinePreset::CorruptProposal),
            "silent-leader" => Ok(ByzantinePreset::SilentLeader),
            other => Err(format!(
                "unknown byzantine preset {other:?} (want equivocate, conflicting-vote, \
                 corrupt-proposal or silent-leader)"
            )),
        }
    }
}

/// Membership + identity of one node in a wire cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// This node's index into `peers`.
    pub node_id: u32,
    /// Advertised `host:port` of every node, indexed by node id (this
    /// node's own entry included — it is what `NotPrimary` redirects
    /// carry when this node leads).
    pub peers: Vec<String>,
    /// The TEE platform this node quotes from when dialling peers.
    pub platform: Arc<TeePlatform>,
    /// Attestation root of every peer's platform, indexed by node id.
    /// The mesh dialer verifies peer `i`'s counter-quote against
    /// `peer_roots[i]`; the server side accepts joins from any of them.
    pub peer_roots: Vec<VerifyingKey>,
    /// Consensus verifying key of every member, indexed by node id — the
    /// consortium roster the replica authenticates peer messages and
    /// quorum certificates against. Derived from each member's platform
    /// provisioning ([`TeePlatform::consensus_public_key`]).
    pub consensus_keys: Vec<VerifyingKey>,
    /// SVN this node's KM enclave quotes at.
    pub svn: u16,
    /// Minimum SVN accepted from peers.
    pub min_svn: u16,
    /// Leader heartbeat period (ms).
    pub heartbeat_ms: u64,
    /// Follower silence window before a view change starts (ms).
    pub view_timeout_ms: u64,
    /// Consensus pipelining window (blocks proposed but not committed).
    pub max_inflight: u64,
    /// Spread for the deterministic per-node view-timeout jitter
    /// ([`confide_consensus::timeout_jitter`]): staggers follower
    /// timeouts so one election round usually settles a dead leader.
    pub timeout_jitter_ms: u64,
    /// Base seed for the joiner side of mesh attestation handshakes
    /// (mixed with a dial counter so ephemeral keys never repeat).
    pub rejoin_seed: u64,
    /// Scripted misbehaviour to inject into outbound consensus traffic
    /// (`None` = honest). See [`ByzantinePreset`].
    pub byzantine: Option<ByzantinePreset>,
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("node_id", &self.node_id)
            .field("peers", &self.peers)
            .field("svn", &self.svn)
            .field("min_svn", &self.min_svn)
            .field("heartbeat_ms", &self.heartbeat_ms)
            .field("view_timeout_ms", &self.view_timeout_ms)
            .field("max_inflight", &self.max_inflight)
            .field("timeout_jitter_ms", &self.timeout_jitter_ms)
            .field("byzantine", &self.byzantine)
            .finish_non_exhaustive()
    }
}

impl ClusterConfig {
    /// Cluster size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// Demo-consortium cluster config: deterministic per-node platforms
    /// derived from `cluster_seed` (see [`crate::demo::cluster_platform`]),
    /// so every node can compute every peer's attestation root without
    /// talking to it. Timeouts default to localhost-friendly values.
    pub fn demo(node_id: u32, peers: Vec<String>, cluster_seed: u64) -> ClusterConfig {
        let peer_roots = (0..peers.len() as u32)
            .map(|id| crate::demo::cluster_platform(cluster_seed, id).attestation_public_key())
            .collect();
        let consensus_keys = (0..peers.len() as u32)
            .map(|id| crate::demo::cluster_platform(cluster_seed, id).consensus_public_key())
            .collect();
        ClusterConfig {
            node_id,
            platform: crate::demo::cluster_platform(cluster_seed, node_id),
            peer_roots,
            consensus_keys,
            peers,
            svn: 1,
            min_svn: 1,
            heartbeat_ms: 150,
            view_timeout_ms: 1200,
            max_inflight: 4,
            timeout_jitter_ms: 250,
            rejoin_seed: cluster_seed ^ 0x6d65_7368, // "mesh"
            byzantine: None,
        }
    }
}

/// Live cluster state shared between the driver and connection handlers.
#[derive(Debug)]
pub struct ClusterShared {
    /// This node's id.
    pub node_id: u32,
    /// Current view number.
    pub view: AtomicU64,
    /// Current leader's node id.
    pub leader: AtomicU32,
    /// View changes this node has participated in.
    pub view_changes: AtomicU64,
    /// Blocks applied through StateSync catch-up.
    pub sync_blocks: AtomicU64,
    /// Equivocation evidence records this node has persisted.
    pub evidence: AtomicU64,
    peers: Vec<String>,
}

impl ClusterShared {
    pub(crate) fn new(cfg: &ClusterConfig) -> ClusterShared {
        ClusterShared {
            node_id: cfg.node_id,
            view: AtomicU64::new(0),
            leader: AtomicU32::new(primary_of(0, cfg.n())),
            view_changes: AtomicU64::new(0),
            sync_blocks: AtomicU64::new(0),
            evidence: AtomicU64::new(0),
            peers: cfg.peers.clone(),
        }
    }

    /// The advertised address of the current leader (for `NotPrimary`).
    pub fn leader_addr(&self) -> String {
        let id = self.leader.load(Ordering::Relaxed) as usize;
        self.peers
            .get(id % self.peers.len().max(1))
            .cloned()
            .unwrap_or_default()
    }

    /// Does this node currently believe it is the leader?
    pub fn is_leader(&self) -> bool {
        self.leader.load(Ordering::Relaxed) == self.node_id
    }
}

/// Per-connection cluster context handed to the legacy runtime's
/// `handle_connection` (the reactor path routes through
/// `pipeline::WorkerCtx` instead).
#[cfg(feature = "legacy-threaded")]
#[derive(Clone)]
pub(crate) struct ClusterCtx {
    pub shared: Arc<ClusterShared>,
    pub peer_tx: mpsc::Sender<SignedPeerMsg>,
}

/// Outbound half of the peer mesh: one sender thread per peer, each
/// owning its socket, re-dialling (with the attestation handshake) on
/// failure. Sends never block the driver; a full queue drops.
struct PeerMesh {
    queues: Vec<Option<SyncSender<SignedPeerMsg>>>,
    threads: Vec<JoinHandle<()>>,
}

impl PeerMesh {
    fn spawn(cfg: &ClusterConfig, expected_pk_tx: [u8; 32], stop: Arc<AtomicBool>) -> PeerMesh {
        let mut queues = Vec::with_capacity(cfg.n());
        let mut threads = Vec::new();
        for (id, addr) in cfg.peers.iter().enumerate() {
            if id as u32 == cfg.node_id {
                queues.push(None);
                continue;
            }
            let (tx, rx) = mpsc::sync_channel::<SignedPeerMsg>(PEER_QUEUE);
            queues.push(Some(tx));
            let addr = addr.clone();
            let platform = Arc::clone(&cfg.platform);
            let root = cfg.peer_roots[id];
            let (svn, min_svn) = (cfg.svn, cfg.min_svn);
            let seed = cfg
                .rejoin_seed
                .wrapping_add((cfg.node_id as u64) << 32)
                .wrapping_add((id as u64) << 16);
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name(format!("confide-mesh-{id}"))
                .spawn(move || {
                    peer_sender_loop(
                        addr,
                        platform,
                        root,
                        expected_pk_tx,
                        svn,
                        min_svn,
                        seed,
                        rx,
                        stop,
                    )
                })
                .expect("spawn mesh thread");
            threads.push(handle);
        }
        PeerMesh { queues, threads }
    }

    fn send(&self, to: u32, msg: SignedPeerMsg) {
        if let Some(Some(q)) = self.queues.get(to as usize) {
            let _ = q.try_send(msg);
        }
    }

    fn broadcast(&self, msg: SignedPeerMsg) {
        for q in self.queues.iter().flatten() {
            let _ = q.try_send(msg.clone());
        }
    }
}

/// Dial a peer and run the attestation handshake: K-Protocol MAP join
/// against `root`, then check the unwrapped consortium `pk_tx` equals
/// ours — a peer serving a different consortium (or a MITM substituting
/// keys) fails here, before any consensus traffic flows.
#[allow(clippy::too_many_arguments)]
fn dial_attested(
    addr: &str,
    platform: &Arc<TeePlatform>,
    root: &VerifyingKey,
    expected_pk_tx: [u8; 32],
    svn: u16,
    min_svn: u16,
    seed: u64,
    timeout: Duration,
) -> Result<Conn, NetError> {
    let mut conn = Conn::connect_timeout(addr, timeout)?;
    let keys = conn.rejoin(platform, root, svn, min_svn, seed)?;
    if keys.pk_tx() != expected_pk_tx {
        return Err(NetError::Attestation(
            "peer consortium pk_tx mismatch".into(),
        ));
    }
    Ok(conn)
}

#[allow(clippy::too_many_arguments)]
fn peer_sender_loop(
    addr: String,
    platform: Arc<TeePlatform>,
    root: VerifyingKey,
    expected_pk_tx: [u8; 32],
    svn: u16,
    min_svn: u16,
    seed: u64,
    rx: Receiver<SignedPeerMsg>,
    stop: Arc<AtomicBool>,
) {
    let mut backoff = Duration::from_millis(50);
    let mut dials = 0u64;
    'redial: loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        dials += 1;
        // Each dial mixes the attempt counter into the handshake seed so
        // the joiner's ephemeral key never repeats across reconnects.
        let dial_seed = seed.wrapping_add(dials.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut conn = match dial_attested(
            &addr,
            &platform,
            &root,
            expected_pk_tx,
            svn,
            min_svn,
            dial_seed,
            Duration::from_secs(2),
        ) {
            Ok(c) => c,
            Err(_) => {
                // Peer down or partitioned: drain stale traffic so the
                // queue holds only fresh messages when it comes back.
                while rx.try_recv().is_ok() {}
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(800));
                continue 'redial;
            }
        };
        backoff = Duration::from_millis(50);
        loop {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(msg) => {
                    // Peer frames are fire-and-forget: the server never
                    // replies on an attested mesh connection.
                    if conn.send(&Message::Peer(msg)).is_err() {
                        continue 'redial;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// The cluster driver thread: replaces `batcher_loop` when the server is
/// in cluster mode. Owns the replica state machine; everything it does is
/// driven by (a) peer messages, (b) client jobs, (c) the clock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cluster_loop(
    node: Arc<RwLock<ConfideNode>>,
    jobs: Receiver<Job>,
    peer_rx: Receiver<SignedPeerMsg>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    cluster: ClusterConfig,
    shared: Arc<ClusterShared>,
    in_flight: InFlight,
    stop: Arc<AtomicBool>,
) {
    let mut driver = match Driver::new(
        node,
        stats,
        config,
        cluster,
        shared,
        in_flight,
        Arc::clone(&stop),
    ) {
        Ok(d) => d,
        Err(e) => {
            // Fail-stop: a durable-log setup failure means this replica
            // cannot honour the "vote implies disk" contract. Refuse to
            // participate rather than vote on state it might lose.
            eprintln!("confide-cluster: driver init failed: {e}; halting replica");
            stop.store(true, Ordering::SeqCst);
            return;
        }
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // The peer-channel wait doubles as the driver's tick granularity.
        match peer_rx.recv_timeout(Duration::from_millis(2)) {
            Ok(msg) => {
                driver.on_peer(msg);
                while let Ok(more) = peer_rx.try_recv() {
                    driver.on_peer(more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        driver.pump_jobs(&jobs);
        driver.maybe_propose();
        driver.tick();
        driver.maybe_sync();
    }
    // Wind down the mesh sender threads.
    for t in driver.mesh.threads.drain(..) {
        let _ = t.join();
    }
}

struct Driver {
    node: Arc<RwLock<ConfideNode>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    cluster: ClusterConfig,
    shared: Arc<ClusterShared>,
    in_flight: InFlight,
    stop: Arc<AtomicBool>,
    replica: Replica,
    mesh: PeerMesh,
    epoch: Instant,
    wal_file: Option<(std::fs::File, usize)>,
    /// Durable quorum-certificate sidecar (`<wal>.certs`), kept in
    /// lockstep with the in-memory [`confide_core::node::ConfideNode`]
    /// cert log: the cert is on disk before any client hears "committed".
    cert_file: Option<(std::fs::File, usize)>,
    /// Durable equivocation-evidence sidecar (`<wal>.evidence`).
    evidence_file: Option<std::fs::File>,
    /// Jobs accepted but not yet proposed (leader only).
    pending: VecDeque<Job>,
    first_pending_at: Option<Instant>,
    /// Jobs whose transaction is inside a proposed-but-uncommitted block,
    /// keyed by wire hash. Replies are delivered at CommittedLocal.
    awaiting: HashMap<[u8; 32], Job>,
    /// Replies computed at execution time, delivered at commit time.
    ready: HashMap<u64, Vec<([u8; 32], Message)>>,
    want_sync: Option<u32>,
    last_sync_at: Option<Instant>,
    /// Capped exponential backoff between sync attempts; resets once a
    /// transfer makes progress.
    sync_backoff: Duration,
    sync_dials: u64,
    expected_pk_tx: [u8; 32],
}

impl Driver {
    fn new(
        node: Arc<RwLock<ConfideNode>>,
        stats: Arc<ServerStats>,
        config: ServerConfig,
        cluster: ClusterConfig,
        shared: Arc<ClusterShared>,
        in_flight: InFlight,
        stop: Arc<AtomicBool>,
    ) -> Result<Driver, String> {
        let (expected_pk_tx, height, wal_snapshot, cert_snapshot) = {
            let n = node.read().expect("node lock");
            (
                n.pk_tx(),
                n.blocks.height(),
                config.wal_path.as_ref().map(|_| n.wal_bytes().to_vec()),
                config
                    .wal_path
                    .as_ref()
                    .map(|_| n.cert_sidecar_bytes().to_vec()),
            )
        };
        // Durable logs: same contract as the batcher — rewrite the
        // committed prefix once, then append per block. Setup failures
        // are fail-stop (typed `Err`), not panics.
        let durable = |path: &std::path::Path, snapshot: &[u8]| -> Result<_, String> {
            let mut f = std::fs::File::create(path)
                .map_err(|e| format!("create {}: {e}", path.display()))?;
            f.write_all(snapshot)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            f.sync_all()
                .map_err(|e| format!("sync {}: {e}", path.display()))?;
            Ok((f, snapshot.len()))
        };
        let mut wal_file = None;
        let mut cert_file = None;
        let mut evidence_file = None;
        if let Some(path) = config.wal_path.as_ref() {
            wal_file = Some(durable(path, &wal_snapshot.expect("wal snapshot"))?);
            cert_file = Some(durable(
                &cert_sidecar_path(path),
                &cert_snapshot.expect("cert snapshot"),
            )?);
            // Evidence is append-only across restarts: accusations stay
            // on the record even after the view moves on.
            let ev_path = evidence_sidecar_path(path);
            let prior = std::fs::read(&ev_path).unwrap_or_default();
            let records = read_framed(&prior)
                .map_err(|e| format!("evidence sidecar {} is corrupt: {e}", ev_path.display()))?;
            shared
                .evidence
                .store(records.len() as u64, Ordering::Relaxed);
            evidence_file = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&ev_path)
                    .map_err(|e| format!("open {}: {e}", ev_path.display()))?,
            );
        }
        let rcfg = ReplicaConfig {
            node_id: cluster.node_id,
            n: cluster.n(),
            view_timeout_ms: cluster.view_timeout_ms,
            heartbeat_ms: cluster.heartbeat_ms,
            max_inflight: cluster.max_inflight,
            timeout_jitter_ms: cluster.timeout_jitter_ms,
        };
        if cluster.consensus_keys.len() != cluster.n() {
            return Err(format!(
                "consensus roster has {} keys for {} peers",
                cluster.consensus_keys.len(),
                cluster.n()
            ));
        }
        let keyring = Keyring::new(
            cluster.platform.consensus_signing_key(),
            cluster.consensus_keys.clone(),
        );
        let epoch = Instant::now();
        let replica = Replica::with_height(rcfg, keyring, height, 0);
        let mesh = PeerMesh::spawn(&cluster, expected_pk_tx, Arc::clone(&stop));
        let driver = Driver {
            node,
            stats,
            config,
            cluster,
            shared,
            in_flight,
            stop,
            replica,
            mesh,
            epoch,
            wal_file,
            cert_file,
            evidence_file,
            pending: VecDeque::new(),
            first_pending_at: None,
            awaiting: HashMap::new(),
            ready: HashMap::new(),
            want_sync: None,
            last_sync_at: None,
            sync_backoff: Duration::from_millis(300),
            sync_dials: 0,
            expected_pk_tx,
        };
        driver.publish();
        Ok(driver)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn publish(&self) {
        self.shared
            .view
            .store(self.replica.view(), Ordering::Relaxed);
        self.shared
            .leader
            .store(self.replica.leader(), Ordering::Relaxed);
        self.shared
            .view_changes
            .store(self.replica.view_changes(), Ordering::Relaxed);
    }

    /// Authenticated inbound path: the replica verifies the envelope
    /// signature, the embedded sender, the commit vote signature and the
    /// equivocation record before any protocol state moves. A rejected
    /// message is logged and dropped — `handle` guarantees it had no
    /// effect.
    fn on_peer(&mut self, signed: SignedPeerMsg) {
        let now = self.now_ms();
        match self.replica.handle(signed, now) {
            Ok(actions) => self.perform(actions),
            Err(e) => {
                eprintln!(
                    "confide-cluster: node {} dropped peer message: {e}",
                    self.cluster.node_id
                );
            }
        }
    }

    /// Outbound signing point — and the Byzantine chaos hook. An honest
    /// node signs the message the replica produced and ships it
    /// everywhere; a node running a [`ByzantinePreset`] splits, corrupts
    /// or swallows its *leader-side* traffic here. Both variants of an
    /// equivocation are genuinely signed with this node's key, which is
    /// exactly what makes the resulting [`Evidence`] irrefutable.
    fn emit(&mut self, to: Option<u32>, msg: PeerMsg) {
        let Some(preset) = self.cluster.byzantine else {
            let signed = self.replica.sign(msg);
            match to {
                Some(id) => self.mesh.send(id, signed),
                None => self.mesh.broadcast(signed),
            }
            return;
        };
        match (preset, &msg) {
            (ByzantinePreset::SilentLeader, _) if self.replica.is_leader() => {
                // Say nothing; let the followers time out around us.
            }
            (ByzantinePreset::Equivocate, PeerMsg::PrePrepare { view, seq, txs })
                if to.is_none() =>
            {
                // Two conflicting, validly-signed proposals for the same
                // slot: pad the second so its digest differs.
                let mut forked = txs.clone();
                forked.push(b"equivocation-fork".to_vec());
                let honest = self.replica.sign(msg.clone());
                let fork = self.replica.sign(PeerMsg::PrePrepare {
                    view: *view,
                    seq: *seq,
                    txs: forked,
                });
                self.split_send(honest, fork);
            }
            (
                ByzantinePreset::ConflictingVote,
                PeerMsg::Prepare {
                    view,
                    seq,
                    digest,
                    from,
                },
            ) if to.is_none() => {
                let honest = self.replica.sign(msg.clone());
                let mut flipped = *digest;
                flipped[0] ^= 0xFF;
                let fork = self.replica.sign(PeerMsg::Prepare {
                    view: *view,
                    seq: *seq,
                    digest: flipped,
                    from: *from,
                });
                self.split_send(honest, fork);
            }
            (ByzantinePreset::CorruptProposal, PeerMsg::PrePrepare { view, seq, txs })
                if to.is_none() && !txs.is_empty() && !txs[0].is_empty() =>
            {
                // Broadcast a proposal whose payload differs from the one
                // this node keeps locally: peers prepare a digest the
                // leader never matches, so the round stalls and the
                // cluster elects around it.
                let mut corrupt = txs.clone();
                corrupt[0][0] ^= 0xFF;
                let signed = self.replica.sign(PeerMsg::PrePrepare {
                    view: *view,
                    seq: *seq,
                    txs: corrupt,
                });
                self.mesh.broadcast(signed);
            }
            _ => {
                let signed = self.replica.sign(msg);
                match to {
                    Some(id) => self.mesh.send(id, signed),
                    None => self.mesh.broadcast(signed),
                }
            }
        }
    }

    /// Deliver one signed statement to the even peers and a conflicting
    /// one to the odd peers — then double-deal the highest peer with the
    /// opposite variant. The double-deal is what real equivocators do: a
    /// clean split can never quorum either digest (each side holds at
    /// most 2 of the 2f+1 votes), so the attacker courts a swing voter
    /// with both stories — and that peer now holds two validly-signed
    /// conflicting statements, the transferable [`Evidence`] pair.
    fn split_send(&mut self, honest: SignedPeerMsg, fork: SignedPeerMsg) {
        let me = self.cluster.node_id;
        for peer in 0..self.cluster.n() as u32 {
            if peer == me {
                continue;
            }
            let variant = if peer % 2 == 0 { &honest } else { &fork };
            self.mesh.send(peer, variant.clone());
        }
        if let Some(swing) = (0..self.cluster.n() as u32).rev().find(|&p| p != me) {
            let other = if swing % 2 == 0 { fork } else { honest };
            self.mesh.send(swing, other);
        }
    }

    fn tick(&mut self) {
        let now = self.now_ms();
        let actions = self.replica.on_tick(now);
        self.perform(actions);
    }

    /// Drain the client job queue. The handlers already validated,
    /// deduped and claimed each job; here the leader additionally answers
    /// late duplicates from the committed index (a resubmission can race
    /// past the handler check) and redirects if leadership moved while
    /// the job sat in the queue.
    fn pump_jobs(&mut self, jobs: &Receiver<Job>) {
        while let Ok(job) = jobs.try_recv() {
            if !self.replica.is_leader() {
                self.redirect(job);
                continue;
            }
            let committed = self
                .node
                .read()
                .expect("node lock")
                .committed_by_wire(&job.wire_hash);
            if let Some((sealed, receipt)) = committed {
                self.stats.deduped.fetch_add(1, Ordering::Relaxed);
                self.release(&job.wire_hash);
                job.reply
                    .send(Message::Committed { sealed, receipt }, &self.stats);
                continue;
            }
            if self.first_pending_at.is_none() {
                self.first_pending_at = Some(Instant::now());
            }
            self.pending.push_back(job);
        }
    }

    /// Seal the pending batch into a proposal when it is full or the
    /// linger window expired — the same cut rule as the single-node
    /// batcher, with consensus back-pressure (`max_inflight`) on top.
    fn maybe_propose(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if !self.replica.is_leader() {
            // Leadership moved with jobs queued: bounce them back.
            while let Some(job) = self.pending.pop_front() {
                self.redirect(job);
            }
            self.first_pending_at = None;
            return;
        }
        let full = self.pending.len() >= self.config.max_batch;
        let lingered = self
            .first_pending_at
            .map(|t| t.elapsed() >= self.config.batch_linger)
            .unwrap_or(false);
        if !full && !lingered {
            return;
        }
        let take = self.pending.len().min(self.config.max_batch);
        let batch: Vec<Job> = self.pending.drain(..take).collect();
        self.first_pending_at = if self.pending.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let tx_bytes: Vec<Vec<u8>> = batch.iter().map(|j| j.tx.encode()).collect();
        let now = self.now_ms();
        match self.replica.propose(tx_bytes, now) {
            Ok(actions) => {
                for job in batch {
                    self.awaiting.insert(job.wire_hash, job);
                }
                self.perform(actions);
            }
            Err(ProposeError::Backpressure) => {
                // Watermark window full: put the batch back and retry
                // once commits free a slot.
                for job in batch.into_iter().rev() {
                    self.pending.push_front(job);
                }
                if self.first_pending_at.is_none() {
                    self.first_pending_at = Some(Instant::now());
                }
            }
            Err(ProposeError::NotLeader) => {
                for job in batch {
                    self.redirect(job);
                }
            }
        }
    }

    fn perform(&mut self, actions: Vec<Action>) {
        let mut queue: VecDeque<Action> = actions.into();
        while let Some(action) = queue.pop_front() {
            match action {
                Action::Broadcast(msg) => self.emit(None, msg),
                Action::Send(to, msg) => self.emit(Some(to), msg),
                Action::Execute { seq, txs, .. } => {
                    let more = self.execute(seq, &txs);
                    queue.extend(more);
                }
                Action::CommittedLocal { seq, cert, .. } => self.committed(seq, cert),
                Action::NeedSync { peer, .. } => {
                    // Don't clobber a pending retry target: after a
                    // failed transfer the driver rotates to the next
                    // member, and the protocol's NeedSync re-arms (which
                    // always name the peer that reported being ahead —
                    // usually the leader) must not drag the retry back to
                    // the dead source before its backoff expires.
                    if self.want_sync.is_none() {
                        self.want_sync = Some(peer);
                    }
                }
                Action::LeaderChanged { .. } => {
                    // Elected or demoted: either way, jobs waiting for a
                    // proposal slot are only valid on the leader.
                    if !self.replica.is_leader() {
                        while let Some(job) = self.pending.pop_front() {
                            self.redirect(job);
                        }
                        self.first_pending_at = None;
                    }
                }
                Action::Evidence(ev) => self.record_evidence(&ev),
            }
        }
        self.publish();
    }

    /// Persist an equivocation record: the two conflicting signed
    /// messages are self-certifying, so the sidecar is a transferable
    /// accusation any consortium auditor can re-verify offline.
    fn record_evidence(&mut self, ev: &Evidence) {
        eprintln!(
            "confide-cluster: node {} recorded equivocation evidence against node {} \
             (view {}, seq {})",
            self.cluster.node_id, ev.accused, ev.view, ev.seq
        );
        if let Some(file) = self.evidence_file.as_mut() {
            let mut buf = Vec::new();
            append_framed(&mut buf, ev);
            if let Err(e) = file.write_all(&buf).and_then(|()| file.sync_all()) {
                eprintln!("confide-cluster: evidence append failed: {e}; halting replica");
                self.stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        self.shared.evidence.fetch_add(1, Ordering::Relaxed);
    }

    /// Execute one committed-order block: the replica guarantees strictly
    /// in-order delivery (`seq == height + 1`). This is the cluster's
    /// durable-commit point — the WAL suffix is fsync'd before
    /// `on_executed` lets the replica broadcast its Commit, so a vote for
    /// "executed" is always backed by disk (the PR-5 contract, now a
    /// consensus-safety requirement: a quorum certificate must imply a
    /// quorum of durable copies).
    fn execute(&mut self, seq: u64, txs_bytes: &[Vec<u8>]) -> Vec<Action> {
        // Undecodable bytes can only come from a buggy peer; the decode
        // verdict is deterministic on every replica, so skipping keeps
        // state identical cluster-wide.
        let mut decoded: Vec<(WireTx, [u8; 32])> = Vec::with_capacity(txs_bytes.len());
        for bytes in txs_bytes {
            if let Ok(tx) = WireTx::decode(bytes) {
                let hash = tx.wire_hash();
                decoded.push((tx, hash));
            }
        }
        let txs: Vec<WireTx> = decoded.iter().map(|(tx, _)| tx.clone()).collect();
        let threads = self.config.exec_threads.max(1);
        let mut durability_fault = None;
        let result = {
            let mut node = self.node.write().expect("node lock");
            let result = node.execute_block_parallel(&txs, threads);
            if result.is_ok() {
                if let Some((file, flushed)) = self.wal_file.as_mut() {
                    let bytes = node.wal_bytes();
                    let io = file
                        .write_all(&bytes[*flushed..])
                        .and_then(|()| file.sync_all());
                    match io {
                        Ok(()) => *flushed = bytes.len(),
                        Err(e) => durability_fault = Some(e),
                    }
                }
            }
            result
        };
        if let Some(e) = durability_fault {
            // Fail-stop, not panic: a replica that cannot make a block
            // durable must not vote for it (a quorum certificate implies
            // a quorum of disk copies). Halt before `on_executed`.
            eprintln!("confide-cluster: wal append for block {seq} failed: {e}; halting replica");
            self.stop.store(true, Ordering::SeqCst);
            return Vec::new();
        }
        for (_, hash) in &decoded {
            self.release(hash);
        }
        let res = match result {
            Ok(res) => res,
            Err(e) => {
                // A commit-level failure on agreed-order input is a local
                // fault (disk, resource). Halting this replica is the safe
                // move — the rest of the cluster keeps going without it.
                eprintln!("confide-cluster: block {seq} failed to execute: {e}; halting replica");
                self.stop.store(true, Ordering::SeqCst);
                return Vec::new();
            }
        };
        self.stats.blocks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .committed
            .fetch_add(res.accepted() as u64, Ordering::Relaxed);
        // Chaos hook: die after the durable-commit point but before the
        // Commit broadcast / any acknowledgement — the worst crash window
        // for the cluster (peers hold a prepared block this node already
        // executed).
        if let Some(limit) = self.config.crash_after {
            if self.stats.blocks.load(Ordering::Relaxed) >= limit {
                eprintln!("confide-cluster: crash-after hook firing at block {limit}");
                std::process::exit(101);
            }
        }
        let mut replies = Vec::with_capacity(decoded.len());
        for ((_, hash), outcome) in decoded.iter().zip(&res.outcomes) {
            let reply = match outcome {
                Ok((receipt, sealed)) => Message::Committed {
                    sealed: sealed.is_some(),
                    receipt: sealed.clone().unwrap_or_else(|| receipt.encode()),
                },
                Err(e) => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Message::Rejected(e.to_string())
                }
            };
            replies.push((*hash, reply));
        }
        self.ready.insert(seq, replies);
        let now = self.now_ms();
        let root = self.node.read().expect("node lock").state_root();
        self.replica.on_executed(seq, root, now)
    }

    /// CommittedLocal: 2f+1 replicas signed "executed and durable" votes
    /// over this height and state root. Persist the assembled quorum
    /// certificate *first* — only then do waiting clients hear about
    /// their transaction, so every acknowledged commit is provable to a
    /// third party from the sidecar alone.
    fn committed(&mut self, seq: u64, cert: QuorumCert) {
        {
            let mut node = self.node.write().expect("node lock");
            node.record_cert(seq, &cert.encode());
            if let Some((file, flushed)) = self.cert_file.as_mut() {
                let bytes = node.cert_sidecar_bytes();
                let io = file
                    .write_all(&bytes[*flushed..])
                    .and_then(|()| file.sync_all());
                match io {
                    Ok(()) => *flushed = bytes.len(),
                    Err(e) => {
                        eprintln!(
                            "confide-cluster: cert append for block {seq} failed: {e}; \
                             halting replica"
                        );
                        self.stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
        let Some(replies) = self.ready.remove(&seq) else {
            return;
        };
        for (hash, reply) in replies {
            if let Some(job) = self.awaiting.remove(&hash) {
                job.reply.send(reply, &self.stats);
            }
        }
    }

    fn redirect(&mut self, job: Job) {
        self.release(&job.wire_hash);
        job.reply.send(
            Message::NotPrimary {
                leader: self.shared.leader_addr(),
            },
            &self.stats,
        );
    }

    fn release(&self, wire_hash: &[u8; 32]) {
        self.in_flight
            .lock()
            .expect("in-flight lock")
            .remove(wire_hash);
    }

    /// StateSync client: fetch the missing WAL suffix, apply only the
    /// prefix covered by verified quorum certificates, and tell the
    /// replica the new height. A failed transfer rotates to the next
    /// peer under a capped exponential backoff, so a dead or lying sync
    /// source costs one backoff step, not liveness.
    fn maybe_sync(&mut self) {
        let Some(peer) = self.want_sync.take() else {
            return;
        };
        if let Some(last) = self.last_sync_at {
            if last.elapsed() < self.sync_backoff {
                // Too soon — re-arm; NeedSync also re-fires while the
                // gap lasts, but a mid-stream failure must not wait for
                // the protocol to notice again.
                self.want_sync = Some(peer);
                return;
            }
        }
        self.last_sync_at = Some(Instant::now());
        // Count progress even when the transfer errors midway (peer
        // died, read timeout): the blocks already applied are real, and
        // the replica must learn its new height either way.
        let mut applied = 0u64;
        if let Err(e) = self.run_sync(peer, &mut applied) {
            eprintln!(
                "confide-cluster: state sync from {peer} interrupted after {applied} block(s): {e}"
            );
            // Retry against the next member, backing off 300ms → 2.4s.
            let next = self.next_sync_peer(peer);
            self.want_sync = Some(next);
            self.sync_backoff = (self.sync_backoff * 2).min(Duration::from_millis(2400));
        }
        if applied > 0 {
            self.sync_backoff = Duration::from_millis(300);
            let height = self.node.read().expect("node lock").blocks.height();
            let now = self.now_ms();
            let actions = self.replica.on_caught_up(height, now);
            self.perform(actions);
        }
    }

    /// Round-robin over the other members, skipping ourselves.
    fn next_sync_peer(&self, failed: u32) -> u32 {
        let n = self.cluster.n() as u32;
        let mut next = (failed + 1) % n;
        if next == self.cluster.node_id {
            next = (next + 1) % n;
        }
        next
    }

    fn run_sync(&mut self, peer: u32, applied: &mut u64) -> Result<(), NetError> {
        let addr = self
            .cluster
            .peers
            .get(peer as usize)
            .cloned()
            .ok_or(NetError::Disconnected)?;
        self.sync_dials += 1;
        let seed = self
            .cluster
            .rejoin_seed
            .wrapping_add(0x7379_6e63) // "sync"
            .wrapping_add(self.sync_dials.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // The dial timeout doubles as the per-chunk read deadline: a peer
        // that dies mid-stream surfaces as a timeout here, and the caller
        // rotates to a different member.
        let mut conn = dial_attested(
            &addr,
            &self.cluster.platform,
            &self.cluster.peer_roots[peer as usize],
            self.expected_pk_tx,
            self.cluster.svn,
            self.cluster.min_svn,
            seed,
            Duration::from_secs(2),
        )?;
        let mut buf: Vec<u8> = Vec::new();
        let mut got_bytes = false;
        for _ in 0..10_000 {
            let (have, have_height) = {
                let node = self.node.read().expect("node lock");
                (
                    node.wal_bytes().len() as u64 + buf.len() as u64,
                    node.blocks.height(),
                )
            };
            let resp = conn.request(&Message::StateSyncReq {
                from: have,
                max: SYNC_CHUNK_MAX,
                have_height,
            })?;
            let (total, bytes, certs) = match resp {
                Message::StateSyncResp {
                    total,
                    bytes,
                    certs,
                    ..
                } => (total, bytes, certs),
                Message::Rejected(r) => return Err(NetError::Rejected(r)),
                other => return Err(NetError::UnexpectedReply(other.kind())),
            };
            if bytes.is_empty() {
                break;
            }
            got_bytes = true;
            buf.extend_from_slice(&bytes);
            self.apply_certified(&mut buf, &certs, applied)?;
            if have + bytes.len() as u64 >= total {
                break;
            }
        }
        if got_bytes && *applied == 0 {
            // The peer served WAL bytes but none of them carried a
            // verifiable quorum certificate. Treat this as a failed
            // transfer — silently looping here would retry the same
            // uncertified prefix forever — so the caller logs it, backs
            // off, and rotates to a different member.
            return Err(NetError::Rejected("peer served no certified blocks".into()));
        }
        Ok(())
    }

    /// Apply the longest prefix of `buf` whose blocks carry verified
    /// quorum certificates. The serving peer is *untrusted* here: a
    /// forged chunk fails either the cert check (no 2f+1 consortium
    /// signatures over that height/root) or `catch_up_from_wal`'s own
    /// hash-chain and root checks. Verified bytes are drained from
    /// `buf`; uncertified tail bytes stay for the next round.
    fn apply_certified(
        &mut self,
        buf: &mut Vec<u8>,
        certs: &[Vec<u8>],
        applied: &mut u64,
    ) -> Result<(), NetError> {
        // Index the certs that actually verify against the roster.
        let n = self.cluster.n();
        let keys = &self.replica.keyring().keys;
        let mut verified: HashMap<u64, QuorumCert> = HashMap::new();
        for raw in certs {
            let Ok(cert) = QuorumCert::decode(raw) else {
                return Err(NetError::Rejected("malformed sync certificate".into()));
            };
            if cert.verify(n, keys).is_err() {
                return Err(NetError::Rejected(format!(
                    "sync certificate for height {} fails quorum verification",
                    cert.height
                )));
            }
            verified.insert(cert.height, cert);
        }
        // Walk the complete blocks in the buffer and cut at the first
        // height without a verified matching-root certificate.
        let recovery = confide_storage::BlockWal::recover(buf);
        let mut certified_end = 0usize;
        let mut take: Vec<QuorumCert> = Vec::new();
        for (block, end) in recovery.blocks.iter().zip(&recovery.ends) {
            let h = block.header.height;
            match verified.get(&h) {
                Some(cert) if cert.root == block.header.state_root => {
                    certified_end = *end;
                    take.push(cert.clone());
                }
                Some(_) => {
                    return Err(NetError::Rejected(format!(
                        "sync certificate root mismatch at height {h}"
                    )));
                }
                None => break,
            }
        }
        if certified_end == 0 {
            return Ok(());
        }
        let report = {
            let mut node = self.node.write().expect("node lock");
            let report = node
                .catch_up_from_wal(&buf[..certified_end])
                .map_err(|e| NetError::Rejected(format!("state sync apply failed: {e}")))?;
            for cert in &take {
                node.record_cert(cert.height, &cert.encode());
            }
            // Publish per chunk and inside the node lock: a status
            // probe that observes the synced height (read under the
            // same lock) must already see these blocks attributed to
            // state sync, even mid-transfer.
            self.shared
                .sync_blocks
                .fetch_add(report.blocks_applied, Ordering::Relaxed);
            report
        };
        buf.drain(..report.bytes_consumed);
        *applied += report.blocks_applied;
        // Keep the durable files in lockstep with the synced blocks.
        let mut fault = None;
        {
            let node = self.node.read().expect("node lock");
            if let Some((file, flushed)) = self.wal_file.as_mut() {
                let wal = node.wal_bytes();
                if wal.len() > *flushed {
                    match file
                        .write_all(&wal[*flushed..])
                        .and_then(|()| file.sync_all())
                    {
                        Ok(()) => *flushed = wal.len(),
                        Err(e) => fault = Some(e),
                    }
                }
            }
            if let Some((file, flushed)) = self.cert_file.as_mut() {
                let bytes = node.cert_sidecar_bytes();
                if bytes.len() > *flushed && fault.is_none() {
                    match file
                        .write_all(&bytes[*flushed..])
                        .and_then(|()| file.sync_all())
                    {
                        Ok(()) => *flushed = bytes.len(),
                        Err(e) => fault = Some(e),
                    }
                }
            }
        }
        if let Some(e) = fault {
            eprintln!("confide-cluster: durable append during sync failed: {e}; halting replica");
            self.stop.store(true, Ordering::SeqCst);
            return Err(NetError::Disconnected);
        }
        Ok(())
    }
}

/// Serve one `StateSyncReq` against the node's WAL (called from the
/// connection handler on attested connections): returns the chunk at
/// `from`, clamped to [`SYNC_CHUNK_MAX`], plus the quorum certificates
/// for heights above `have_height` (clamped to [`SYNC_CERT_BUDGET`]) so
/// the requester can verify the blocks before applying them.
pub(crate) fn serve_state_sync(
    node: &RwLock<ConfideNode>,
    from: u64,
    max: u32,
    have_height: u64,
) -> Message {
    let node = node.read().expect("node lock");
    let wal = node.wal_bytes();
    let total = wal.len() as u64;
    let start = from.min(total) as usize;
    let len = (max.min(SYNC_CHUNK_MAX) as usize).min(wal.len() - start);
    let mut certs = Vec::new();
    let mut budget = SYNC_CERT_BUDGET;
    for (_, bytes) in node.certs_in(have_height, node.blocks.height()) {
        if bytes.len() + 4 > budget {
            break;
        }
        budget -= bytes.len() + 4;
        certs.push(bytes);
    }
    Message::StateSyncResp {
        height: node.blocks.height(),
        total,
        offset: start as u64,
        bytes: wal[start..start + len].to_vec(),
        certs,
    }
}

/// `<wal>.certs`: the quorum-certificate sidecar next to a WAL file.
pub fn cert_sidecar_path(wal: &std::path::Path) -> std::path::PathBuf {
    let mut os = wal.as_os_str().to_os_string();
    os.push(".certs");
    std::path::PathBuf::from(os)
}

/// `<wal>.evidence`: the equivocation-evidence sidecar next to a WAL file.
pub fn evidence_sidecar_path(wal: &std::path::Path) -> std::path::PathBuf {
    let mut os = wal.as_os_str().to_os_string();
    os.push(".evidence");
    std::path::PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_derives_matching_roots() {
        let peers = vec!["a:1".into(), "b:2".into(), "c:3".into(), "d:4".into()];
        let c0 = ClusterConfig::demo(0, peers.clone(), 99);
        let c1 = ClusterConfig::demo(1, peers, 99);
        // Every node derives the same root table without communication.
        assert_eq!(c0.peer_roots.len(), 4);
        for i in 0..4 {
            assert_eq!(
                c0.peer_roots[i].0, c1.peer_roots[i].0,
                "root {i} must match across nodes"
            );
        }
        // And each node's own platform quotes under its own root.
        assert_eq!(c0.platform.attestation_public_key().0, c0.peer_roots[0].0);
        assert_eq!(c1.platform.attestation_public_key().0, c1.peer_roots[1].0);
    }

    #[test]
    fn shared_tracks_leader_addr() {
        let cfg = ClusterConfig::demo(
            0,
            vec!["h:1".into(), "h:2".into(), "h:3".into(), "h:4".into()],
            7,
        );
        let shared = ClusterShared::new(&cfg);
        assert!(shared.is_leader());
        assert_eq!(shared.leader_addr(), "h:1");
        shared.leader.store(2, Ordering::Relaxed);
        assert!(!shared.is_leader());
        assert_eq!(shared.leader_addr(), "h:3");
    }
}
