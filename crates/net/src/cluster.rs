//! The wire-level PBFT cluster runtime: the glue between the
//! transport-agnostic [`confide_consensus::Replica`] state machine and a
//! real [`crate::server::NodeServer`] process.
//!
//! Three pieces live here:
//!
//! * [`ClusterConfig`] — who the peers are, which TEE platform this node
//!   quotes from, and which attestation roots it will trust for the mesh.
//! * [`ClusterShared`] — lock-free counters the connection handlers read
//!   (current view/leader for `NotPrimary` redirects, view-change and
//!   state-sync totals for [`crate::frame::NodeStatus`]).
//! * the **cluster driver** ([`cluster_loop`]) — the thread that replaces
//!   the single-node batcher when [`crate::server::ServerConfig::cluster`]
//!   is set. It owns the replica state machine, batches client jobs into
//!   proposals when it is the leader, executes committed blocks through
//!   the same `execute_block_parallel` + WAL-fsync path the batcher uses,
//!   and runs the StateSync client when it falls behind.
//!
//! ## Attested mesh
//!
//! Peer connections are ordinary T-Protocol connections that first run
//! the K-Protocol MAP join ([`crate::client::Conn::rejoin`]): the dialer
//! quotes its KM enclave, the acceptor counter-quotes and wraps the
//! consortium keys, and the dialer checks the unwrapped `pk_tx` equals
//! its own. Only after that exchange does the acceptor mark the
//! connection *attested* and accept [`crate::frame::Message::Peer`] or
//! `StateSyncReq` frames on it — an unattested socket cannot inject
//! consensus traffic or read the raw WAL. Attestation proves enclave
//! build, not protocol honesty: the fault model stays crash-fault (see
//! `crates/consensus`), matching the paper's consortium setting where
//! members are identified and misbehaviour is contractually visible.

use crate::client::{Conn, NetError};
use crate::frame::Message;
use crate::server::{InFlight, Job, ServerConfig, ServerStats};
use confide_consensus::{primary_of, Action, PeerMsg, ProposeError, Replica, ReplicaConfig};
use confide_core::node::ConfideNode;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use confide_tee::platform::TeePlatform;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outbound per-peer queue depth. Consensus messages are small and
/// retransmission is built into the protocol (heartbeats, re-broadcast on
/// timeout), so a full queue drops the oldest traffic rather than
/// blocking the driver.
const PEER_QUEUE: usize = 1024;

/// Max WAL bytes served per `StateSyncResp` chunk.
pub const SYNC_CHUNK_MAX: u32 = 512 * 1024;

/// Membership + identity of one node in a wire cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// This node's index into `peers`.
    pub node_id: u32,
    /// Advertised `host:port` of every node, indexed by node id (this
    /// node's own entry included — it is what `NotPrimary` redirects
    /// carry when this node leads).
    pub peers: Vec<String>,
    /// The TEE platform this node quotes from when dialling peers.
    pub platform: Arc<TeePlatform>,
    /// Attestation root of every peer's platform, indexed by node id.
    /// The mesh dialer verifies peer `i`'s counter-quote against
    /// `peer_roots[i]`; the server side accepts joins from any of them.
    pub peer_roots: Vec<VerifyingKey>,
    /// SVN this node's KM enclave quotes at.
    pub svn: u16,
    /// Minimum SVN accepted from peers.
    pub min_svn: u16,
    /// Leader heartbeat period (ms).
    pub heartbeat_ms: u64,
    /// Follower silence window before a view change starts (ms).
    pub view_timeout_ms: u64,
    /// Consensus pipelining window (blocks proposed but not committed).
    pub max_inflight: u64,
    /// Base seed for the joiner side of mesh attestation handshakes
    /// (mixed with a dial counter so ephemeral keys never repeat).
    pub rejoin_seed: u64,
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("node_id", &self.node_id)
            .field("peers", &self.peers)
            .field("svn", &self.svn)
            .field("min_svn", &self.min_svn)
            .field("heartbeat_ms", &self.heartbeat_ms)
            .field("view_timeout_ms", &self.view_timeout_ms)
            .field("max_inflight", &self.max_inflight)
            .finish_non_exhaustive()
    }
}

impl ClusterConfig {
    /// Cluster size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// Demo-consortium cluster config: deterministic per-node platforms
    /// derived from `cluster_seed` (see [`crate::demo::cluster_platform`]),
    /// so every node can compute every peer's attestation root without
    /// talking to it. Timeouts default to localhost-friendly values.
    pub fn demo(node_id: u32, peers: Vec<String>, cluster_seed: u64) -> ClusterConfig {
        let peer_roots = (0..peers.len() as u32)
            .map(|id| crate::demo::cluster_platform(cluster_seed, id).attestation_public_key())
            .collect();
        ClusterConfig {
            node_id,
            platform: crate::demo::cluster_platform(cluster_seed, node_id),
            peer_roots,
            peers,
            svn: 1,
            min_svn: 1,
            heartbeat_ms: 150,
            view_timeout_ms: 1200,
            max_inflight: 4,
            rejoin_seed: cluster_seed ^ 0x6d65_7368, // "mesh"
        }
    }
}

/// Live cluster state shared between the driver and connection handlers.
#[derive(Debug)]
pub struct ClusterShared {
    /// This node's id.
    pub node_id: u32,
    /// Current view number.
    pub view: AtomicU64,
    /// Current leader's node id.
    pub leader: AtomicU32,
    /// View changes this node has participated in.
    pub view_changes: AtomicU64,
    /// Blocks applied through StateSync catch-up.
    pub sync_blocks: AtomicU64,
    peers: Vec<String>,
}

impl ClusterShared {
    pub(crate) fn new(cfg: &ClusterConfig) -> ClusterShared {
        ClusterShared {
            node_id: cfg.node_id,
            view: AtomicU64::new(0),
            leader: AtomicU32::new(primary_of(0, cfg.n())),
            view_changes: AtomicU64::new(0),
            sync_blocks: AtomicU64::new(0),
            peers: cfg.peers.clone(),
        }
    }

    /// The advertised address of the current leader (for `NotPrimary`).
    pub fn leader_addr(&self) -> String {
        let id = self.leader.load(Ordering::Relaxed) as usize;
        self.peers
            .get(id % self.peers.len().max(1))
            .cloned()
            .unwrap_or_default()
    }

    /// Does this node currently believe it is the leader?
    pub fn is_leader(&self) -> bool {
        self.leader.load(Ordering::Relaxed) == self.node_id
    }
}

/// Per-connection cluster context handed to the legacy runtime's
/// `handle_connection` (the reactor path routes through
/// `pipeline::WorkerCtx` instead).
#[cfg(feature = "legacy-threaded")]
#[derive(Clone)]
pub(crate) struct ClusterCtx {
    pub shared: Arc<ClusterShared>,
    pub peer_tx: mpsc::Sender<PeerMsg>,
}

/// Outbound half of the peer mesh: one sender thread per peer, each
/// owning its socket, re-dialling (with the attestation handshake) on
/// failure. Sends never block the driver; a full queue drops.
struct PeerMesh {
    queues: Vec<Option<SyncSender<PeerMsg>>>,
    threads: Vec<JoinHandle<()>>,
}

impl PeerMesh {
    fn spawn(cfg: &ClusterConfig, expected_pk_tx: [u8; 32], stop: Arc<AtomicBool>) -> PeerMesh {
        let mut queues = Vec::with_capacity(cfg.n());
        let mut threads = Vec::new();
        for (id, addr) in cfg.peers.iter().enumerate() {
            if id as u32 == cfg.node_id {
                queues.push(None);
                continue;
            }
            let (tx, rx) = mpsc::sync_channel::<PeerMsg>(PEER_QUEUE);
            queues.push(Some(tx));
            let addr = addr.clone();
            let platform = Arc::clone(&cfg.platform);
            let root = cfg.peer_roots[id];
            let (svn, min_svn) = (cfg.svn, cfg.min_svn);
            let seed = cfg
                .rejoin_seed
                .wrapping_add((cfg.node_id as u64) << 32)
                .wrapping_add((id as u64) << 16);
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name(format!("confide-mesh-{id}"))
                .spawn(move || {
                    peer_sender_loop(
                        addr,
                        platform,
                        root,
                        expected_pk_tx,
                        svn,
                        min_svn,
                        seed,
                        rx,
                        stop,
                    )
                })
                .expect("spawn mesh thread");
            threads.push(handle);
        }
        PeerMesh { queues, threads }
    }

    fn send(&self, to: u32, msg: PeerMsg) {
        if let Some(Some(q)) = self.queues.get(to as usize) {
            let _ = q.try_send(msg);
        }
    }

    fn broadcast(&self, msg: PeerMsg) {
        for q in self.queues.iter().flatten() {
            let _ = q.try_send(msg.clone());
        }
    }
}

/// Dial a peer and run the attestation handshake: K-Protocol MAP join
/// against `root`, then check the unwrapped consortium `pk_tx` equals
/// ours — a peer serving a different consortium (or a MITM substituting
/// keys) fails here, before any consensus traffic flows.
#[allow(clippy::too_many_arguments)]
fn dial_attested(
    addr: &str,
    platform: &Arc<TeePlatform>,
    root: &VerifyingKey,
    expected_pk_tx: [u8; 32],
    svn: u16,
    min_svn: u16,
    seed: u64,
    timeout: Duration,
) -> Result<Conn, NetError> {
    let mut conn = Conn::connect_timeout(addr, timeout)?;
    let keys = conn.rejoin(platform, root, svn, min_svn, seed)?;
    if keys.pk_tx() != expected_pk_tx {
        return Err(NetError::Attestation(
            "peer consortium pk_tx mismatch".into(),
        ));
    }
    Ok(conn)
}

#[allow(clippy::too_many_arguments)]
fn peer_sender_loop(
    addr: String,
    platform: Arc<TeePlatform>,
    root: VerifyingKey,
    expected_pk_tx: [u8; 32],
    svn: u16,
    min_svn: u16,
    seed: u64,
    rx: Receiver<PeerMsg>,
    stop: Arc<AtomicBool>,
) {
    let mut backoff = Duration::from_millis(50);
    let mut dials = 0u64;
    'redial: loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        dials += 1;
        // Each dial mixes the attempt counter into the handshake seed so
        // the joiner's ephemeral key never repeats across reconnects.
        let dial_seed = seed.wrapping_add(dials.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut conn = match dial_attested(
            &addr,
            &platform,
            &root,
            expected_pk_tx,
            svn,
            min_svn,
            dial_seed,
            Duration::from_secs(2),
        ) {
            Ok(c) => c,
            Err(_) => {
                // Peer down or partitioned: drain stale traffic so the
                // queue holds only fresh messages when it comes back.
                while rx.try_recv().is_ok() {}
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(800));
                continue 'redial;
            }
        };
        backoff = Duration::from_millis(50);
        loop {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(msg) => {
                    // Peer frames are fire-and-forget: the server never
                    // replies on an attested mesh connection.
                    if conn.send(&Message::Peer(msg)).is_err() {
                        continue 'redial;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// The cluster driver thread: replaces `batcher_loop` when the server is
/// in cluster mode. Owns the replica state machine; everything it does is
/// driven by (a) peer messages, (b) client jobs, (c) the clock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cluster_loop(
    node: Arc<RwLock<ConfideNode>>,
    jobs: Receiver<Job>,
    peer_rx: Receiver<PeerMsg>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    cluster: ClusterConfig,
    shared: Arc<ClusterShared>,
    in_flight: InFlight,
    stop: Arc<AtomicBool>,
) {
    let mut driver = Driver::new(
        node,
        stats,
        config,
        cluster,
        shared,
        in_flight,
        Arc::clone(&stop),
    );
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // The peer-channel wait doubles as the driver's tick granularity.
        match peer_rx.recv_timeout(Duration::from_millis(2)) {
            Ok(msg) => {
                driver.on_peer(msg);
                while let Ok(more) = peer_rx.try_recv() {
                    driver.on_peer(more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        driver.pump_jobs(&jobs);
        driver.maybe_propose();
        driver.tick();
        driver.maybe_sync();
    }
    // Wind down the mesh sender threads.
    for t in driver.mesh.threads.drain(..) {
        let _ = t.join();
    }
}

struct Driver {
    node: Arc<RwLock<ConfideNode>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    cluster: ClusterConfig,
    shared: Arc<ClusterShared>,
    in_flight: InFlight,
    stop: Arc<AtomicBool>,
    replica: Replica,
    mesh: PeerMesh,
    epoch: Instant,
    wal_file: Option<(std::fs::File, usize)>,
    /// Jobs accepted but not yet proposed (leader only).
    pending: VecDeque<Job>,
    first_pending_at: Option<Instant>,
    /// Jobs whose transaction is inside a proposed-but-uncommitted block,
    /// keyed by wire hash. Replies are delivered at CommittedLocal.
    awaiting: HashMap<[u8; 32], Job>,
    /// Replies computed at execution time, delivered at commit time.
    ready: HashMap<u64, Vec<([u8; 32], Message)>>,
    want_sync: Option<u32>,
    last_sync_at: Option<Instant>,
    sync_dials: u64,
    expected_pk_tx: [u8; 32],
}

impl Driver {
    fn new(
        node: Arc<RwLock<ConfideNode>>,
        stats: Arc<ServerStats>,
        config: ServerConfig,
        cluster: ClusterConfig,
        shared: Arc<ClusterShared>,
        in_flight: InFlight,
        stop: Arc<AtomicBool>,
    ) -> Driver {
        let (expected_pk_tx, height, wal_snapshot) = {
            let n = node.read().expect("node lock");
            (
                n.pk_tx(),
                n.blocks.height(),
                config.wal_path.as_ref().map(|_| n.wal_bytes().to_vec()),
            )
        };
        // Durable log: same contract as the batcher — rewrite the
        // committed prefix once, then append per block.
        let wal_file = config.wal_path.as_ref().map(|path| {
            let mut f = std::fs::File::create(path).expect("create wal file");
            let snapshot = wal_snapshot.expect("wal snapshot");
            f.write_all(&snapshot).expect("write wal prefix");
            f.sync_all().expect("sync wal prefix");
            (f, snapshot.len())
        });
        let rcfg = ReplicaConfig {
            node_id: cluster.node_id,
            n: cluster.n(),
            view_timeout_ms: cluster.view_timeout_ms,
            heartbeat_ms: cluster.heartbeat_ms,
            max_inflight: cluster.max_inflight,
        };
        let epoch = Instant::now();
        let replica = Replica::with_height(rcfg, height, 0);
        let mesh = PeerMesh::spawn(&cluster, expected_pk_tx, Arc::clone(&stop));
        let driver = Driver {
            node,
            stats,
            config,
            cluster,
            shared,
            in_flight,
            stop,
            replica,
            mesh,
            epoch,
            wal_file,
            pending: VecDeque::new(),
            first_pending_at: None,
            awaiting: HashMap::new(),
            ready: HashMap::new(),
            want_sync: None,
            last_sync_at: None,
            sync_dials: 0,
            expected_pk_tx,
        };
        driver.publish();
        driver
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn publish(&self) {
        self.shared
            .view
            .store(self.replica.view(), Ordering::Relaxed);
        self.shared
            .leader
            .store(self.replica.leader(), Ordering::Relaxed);
        self.shared
            .view_changes
            .store(self.replica.view_changes(), Ordering::Relaxed);
    }

    /// Which node a peer message speaks for. PrePrepares and NewViews are
    /// only ever valid from the view's rightful primary, so the embedded
    /// view determines the sender; everything else carries `from`.
    fn peer_from(&self, msg: &PeerMsg) -> u32 {
        match msg {
            PeerMsg::PrePrepare { view, .. } => primary_of(*view, self.cluster.n()),
            PeerMsg::Prepare { from, .. }
            | PeerMsg::Commit { from, .. }
            | PeerMsg::ViewChange { from, .. }
            | PeerMsg::NewView { from, .. }
            | PeerMsg::Heartbeat { from, .. } => *from,
        }
    }

    fn on_peer(&mut self, msg: PeerMsg) {
        let from = self.peer_from(&msg);
        let now = self.now_ms();
        let actions = self.replica.on_msg(from, msg, now);
        self.perform(actions);
    }

    fn tick(&mut self) {
        let now = self.now_ms();
        let actions = self.replica.on_tick(now);
        self.perform(actions);
    }

    /// Drain the client job queue. The handlers already validated,
    /// deduped and claimed each job; here the leader additionally answers
    /// late duplicates from the committed index (a resubmission can race
    /// past the handler check) and redirects if leadership moved while
    /// the job sat in the queue.
    fn pump_jobs(&mut self, jobs: &Receiver<Job>) {
        while let Ok(job) = jobs.try_recv() {
            if !self.replica.is_leader() {
                self.redirect(job);
                continue;
            }
            let committed = self
                .node
                .read()
                .expect("node lock")
                .committed_by_wire(&job.wire_hash);
            if let Some((sealed, receipt)) = committed {
                self.stats.deduped.fetch_add(1, Ordering::Relaxed);
                self.release(&job.wire_hash);
                job.reply
                    .send(Message::Committed { sealed, receipt }, &self.stats);
                continue;
            }
            if self.first_pending_at.is_none() {
                self.first_pending_at = Some(Instant::now());
            }
            self.pending.push_back(job);
        }
    }

    /// Seal the pending batch into a proposal when it is full or the
    /// linger window expired — the same cut rule as the single-node
    /// batcher, with consensus back-pressure (`max_inflight`) on top.
    fn maybe_propose(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if !self.replica.is_leader() {
            // Leadership moved with jobs queued: bounce them back.
            while let Some(job) = self.pending.pop_front() {
                self.redirect(job);
            }
            self.first_pending_at = None;
            return;
        }
        let full = self.pending.len() >= self.config.max_batch;
        let lingered = self
            .first_pending_at
            .map(|t| t.elapsed() >= self.config.batch_linger)
            .unwrap_or(false);
        if !full && !lingered {
            return;
        }
        let take = self.pending.len().min(self.config.max_batch);
        let batch: Vec<Job> = self.pending.drain(..take).collect();
        self.first_pending_at = if self.pending.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let tx_bytes: Vec<Vec<u8>> = batch.iter().map(|j| j.tx.encode()).collect();
        let now = self.now_ms();
        match self.replica.propose(tx_bytes, now) {
            Ok(actions) => {
                for job in batch {
                    self.awaiting.insert(job.wire_hash, job);
                }
                self.perform(actions);
            }
            Err(ProposeError::Backpressure) => {
                // Watermark window full: put the batch back and retry
                // once commits free a slot.
                for job in batch.into_iter().rev() {
                    self.pending.push_front(job);
                }
                if self.first_pending_at.is_none() {
                    self.first_pending_at = Some(Instant::now());
                }
            }
            Err(ProposeError::NotLeader) => {
                for job in batch {
                    self.redirect(job);
                }
            }
        }
    }

    fn perform(&mut self, actions: Vec<Action>) {
        let mut queue: VecDeque<Action> = actions.into();
        while let Some(action) = queue.pop_front() {
            match action {
                Action::Broadcast(msg) => self.mesh.broadcast(msg),
                Action::Send(to, msg) => self.mesh.send(to, msg),
                Action::Execute { seq, txs, .. } => {
                    let more = self.execute(seq, &txs);
                    queue.extend(more);
                }
                Action::CommittedLocal { seq, .. } => self.committed(seq),
                Action::NeedSync { peer, .. } => {
                    self.want_sync = Some(peer);
                }
                Action::LeaderChanged { .. } => {
                    // Elected or demoted: either way, jobs waiting for a
                    // proposal slot are only valid on the leader.
                    if !self.replica.is_leader() {
                        while let Some(job) = self.pending.pop_front() {
                            self.redirect(job);
                        }
                        self.first_pending_at = None;
                    }
                }
            }
        }
        self.publish();
    }

    /// Execute one committed-order block: the replica guarantees strictly
    /// in-order delivery (`seq == height + 1`). This is the cluster's
    /// durable-commit point — the WAL suffix is fsync'd before
    /// `on_executed` lets the replica broadcast its Commit, so a vote for
    /// "executed" is always backed by disk (the PR-5 contract, now a
    /// consensus-safety requirement: a quorum certificate must imply a
    /// quorum of durable copies).
    fn execute(&mut self, seq: u64, txs_bytes: &[Vec<u8>]) -> Vec<Action> {
        // Undecodable bytes can only come from a buggy peer; the decode
        // verdict is deterministic on every replica, so skipping keeps
        // state identical cluster-wide.
        let mut decoded: Vec<(WireTx, [u8; 32])> = Vec::with_capacity(txs_bytes.len());
        for bytes in txs_bytes {
            if let Ok(tx) = WireTx::decode(bytes) {
                let hash = tx.wire_hash();
                decoded.push((tx, hash));
            }
        }
        let txs: Vec<WireTx> = decoded.iter().map(|(tx, _)| tx.clone()).collect();
        let threads = self.config.exec_threads.max(1);
        let result = {
            let mut node = self.node.write().expect("node lock");
            let result = node.execute_block_parallel(&txs, threads);
            if result.is_ok() {
                if let Some((file, flushed)) = self.wal_file.as_mut() {
                    let bytes = node.wal_bytes();
                    file.write_all(&bytes[*flushed..]).expect("append wal");
                    file.sync_all().expect("sync wal");
                    *flushed = bytes.len();
                }
            }
            result
        };
        for (_, hash) in &decoded {
            self.release(hash);
        }
        let res = match result {
            Ok(res) => res,
            Err(e) => {
                // A commit-level failure on agreed-order input is a local
                // fault (disk, resource). Halting this replica is the safe
                // move — the rest of the cluster keeps going without it.
                eprintln!("confide-cluster: block {seq} failed to execute: {e}; halting replica");
                self.stop.store(true, Ordering::SeqCst);
                return Vec::new();
            }
        };
        self.stats.blocks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .committed
            .fetch_add(res.accepted() as u64, Ordering::Relaxed);
        // Chaos hook: die after the durable-commit point but before the
        // Commit broadcast / any acknowledgement — the worst crash window
        // for the cluster (peers hold a prepared block this node already
        // executed).
        if let Some(limit) = self.config.crash_after {
            if self.stats.blocks.load(Ordering::Relaxed) >= limit {
                eprintln!("confide-cluster: crash-after hook firing at block {limit}");
                std::process::exit(101);
            }
        }
        let mut replies = Vec::with_capacity(decoded.len());
        for ((_, hash), outcome) in decoded.iter().zip(&res.outcomes) {
            let reply = match outcome {
                Ok((receipt, sealed)) => Message::Committed {
                    sealed: sealed.is_some(),
                    receipt: sealed.clone().unwrap_or_else(|| receipt.encode()),
                },
                Err(e) => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Message::Rejected(e.to_string())
                }
            };
            replies.push((*hash, reply));
        }
        self.ready.insert(seq, replies);
        let now = self.now_ms();
        self.replica.on_executed(seq, now)
    }

    /// CommittedLocal: 2f+1 replicas voted "executed and durable" — now
    /// (and only now) waiting clients hear about their transaction.
    fn committed(&mut self, seq: u64) {
        let Some(replies) = self.ready.remove(&seq) else {
            return;
        };
        for (hash, reply) in replies {
            if let Some(job) = self.awaiting.remove(&hash) {
                job.reply.send(reply, &self.stats);
            }
        }
    }

    fn redirect(&mut self, job: Job) {
        self.release(&job.wire_hash);
        job.reply.send(
            Message::NotPrimary {
                leader: self.shared.leader_addr(),
            },
            &self.stats,
        );
    }

    fn release(&self, wire_hash: &[u8; 32]) {
        self.in_flight
            .lock()
            .expect("in-flight lock")
            .remove(wire_hash);
    }

    /// StateSync client: fetch the missing WAL suffix from the peer that
    /// revealed the gap, apply it chunk by chunk through
    /// `catch_up_from_wal` (which re-frames each block byte-identically,
    /// keeping the local byte cursor valid), and tell the replica the new
    /// height when done.
    fn maybe_sync(&mut self) {
        let Some(peer) = self.want_sync.take() else {
            return;
        };
        if let Some(last) = self.last_sync_at {
            if last.elapsed() < Duration::from_millis(300) {
                // Too soon — drop; NeedSync re-fires while the gap lasts.
                return;
            }
        }
        self.last_sync_at = Some(Instant::now());
        // Count progress even when the transfer errors midway (peer
        // died, read timeout): the blocks already applied are real, and
        // the replica must learn its new height either way.
        let mut applied = 0u64;
        if let Err(e) = self.run_sync(peer, &mut applied) {
            eprintln!(
                "confide-cluster: state sync from {peer} interrupted after {applied} block(s): {e}"
            );
        }
        if applied > 0 {
            let height = self.node.read().expect("node lock").blocks.height();
            let now = self.now_ms();
            let actions = self.replica.on_caught_up(height, now);
            self.perform(actions);
        }
    }

    fn run_sync(&mut self, peer: u32, applied: &mut u64) -> Result<(), NetError> {
        let addr = self
            .cluster
            .peers
            .get(peer as usize)
            .cloned()
            .ok_or(NetError::Disconnected)?;
        self.sync_dials += 1;
        let seed = self
            .cluster
            .rejoin_seed
            .wrapping_add(0x7379_6e63) // "sync"
            .wrapping_add(self.sync_dials.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut conn = dial_attested(
            &addr,
            &self.cluster.platform,
            &self.cluster.peer_roots[peer as usize],
            self.expected_pk_tx,
            self.cluster.svn,
            self.cluster.min_svn,
            seed,
            Duration::from_secs(2),
        )?;
        let mut buf: Vec<u8> = Vec::new();
        for _ in 0..10_000 {
            let have = {
                let node = self.node.read().expect("node lock");
                node.wal_bytes().len() as u64 + buf.len() as u64
            };
            let resp = conn.request(&Message::StateSyncReq {
                from: have,
                max: SYNC_CHUNK_MAX,
            })?;
            let (total, bytes) = match resp {
                Message::StateSyncResp { total, bytes, .. } => (total, bytes),
                Message::Rejected(r) => return Err(NetError::Rejected(r)),
                other => return Err(NetError::UnexpectedReply(other.kind())),
            };
            if bytes.is_empty() {
                break;
            }
            buf.extend_from_slice(&bytes);
            let report = {
                let mut node = self.node.write().expect("node lock");
                let report = node
                    .catch_up_from_wal(&buf)
                    .map_err(|e| NetError::Rejected(format!("state sync apply failed: {e}")))?;
                // Publish per chunk and inside the node lock: a status
                // probe that observes the synced height (read under the
                // same lock) must already see these blocks attributed to
                // state sync, even mid-transfer.
                self.shared
                    .sync_blocks
                    .fetch_add(report.blocks_applied, Ordering::Relaxed);
                report
            };
            buf.drain(..report.bytes_consumed);
            *applied += report.blocks_applied;
            // Keep the durable file in lockstep with the synced blocks.
            if let Some((file, flushed)) = self.wal_file.as_mut() {
                let node = self.node.read().expect("node lock");
                let wal = node.wal_bytes();
                if wal.len() > *flushed {
                    file.write_all(&wal[*flushed..]).expect("append wal");
                    file.sync_all().expect("sync wal");
                    *flushed = wal.len();
                }
            }
            if have + bytes.len() as u64 >= total {
                break;
            }
        }
        Ok(())
    }
}

/// Serve one `StateSyncReq` against the node's WAL (called from the
/// connection handler on attested connections): returns the chunk at
/// `from`, clamped to [`SYNC_CHUNK_MAX`].
pub(crate) fn serve_state_sync(node: &RwLock<ConfideNode>, from: u64, max: u32) -> Message {
    let node = node.read().expect("node lock");
    let wal = node.wal_bytes();
    let total = wal.len() as u64;
    let start = from.min(total) as usize;
    let len = (max.min(SYNC_CHUNK_MAX) as usize).min(wal.len() - start);
    Message::StateSyncResp {
        height: node.blocks.height(),
        total,
        offset: start as u64,
        bytes: wal[start..start + len].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_derives_matching_roots() {
        let peers = vec!["a:1".into(), "b:2".into(), "c:3".into(), "d:4".into()];
        let c0 = ClusterConfig::demo(0, peers.clone(), 99);
        let c1 = ClusterConfig::demo(1, peers, 99);
        // Every node derives the same root table without communication.
        assert_eq!(c0.peer_roots.len(), 4);
        for i in 0..4 {
            assert_eq!(
                c0.peer_roots[i].0, c1.peer_roots[i].0,
                "root {i} must match across nodes"
            );
        }
        // And each node's own platform quotes under its own root.
        assert_eq!(c0.platform.attestation_public_key().0, c0.peer_roots[0].0);
        assert_eq!(c1.platform.attestation_public_key().0, c1.peer_roots[1].0);
    }

    #[test]
    fn shared_tracks_leader_addr() {
        let cfg = ClusterConfig::demo(
            0,
            vec!["h:1".into(), "h:2".into(), "h:3".into(), "h:4".into()],
            7,
        );
        let shared = ClusterShared::new(&cfg);
        assert!(shared.is_leader());
        assert_eq!(shared.leader_addr(), "h:1");
        shared.leader.store(2, Ordering::Relaxed);
        assert!(!shared.is_leader());
        assert_eq!(shared.leader_addr(), "h:3");
    }
}
