//! Open/closed-loop load generation over the framed transport, plus the
//! `results/BENCH_net.json` emitter.
//!
//! Two loop disciplines (both standard in serving-system benchmarking):
//!
//! * **closed** — each worker is one logical client: seal → `SubmitTxWait`
//!   → decrypt the committed receipt → next. Measured latency is the full
//!   T-Protocol round trip (seal + wire + queue + batch + execute +
//!   receipt seal), and offered load self-regulates to the service rate.
//! * **open** — transactions are sealed *before* the timed window, then
//!   pipelined `SubmitTx` frames are blasted at the node; the server's
//!   only escape valve is the typed `Busy` response, so this mode is how
//!   overload behaviour (busy-reject rate, zero silent drops) is probed.
//!
//! All workers verify their sealed receipts under `k_tx` at the end — a
//! wire-level bench run is also an end-to-end confidentiality check.

use crate::client::{Conn, NetError};
use crate::frame::{FrameError, Message};
use confide_core::client::ConfideClient;
use confide_core::node::ConfideNode;
use confide_core::receipt::Receipt;
use confide_core::seal_signed_tx;
use confide_core::tx::WireTx;
use confide_crypto::HmacDrbg;
use confide_tee::meter::CostModel;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Node addresses. One entry drives a single node; several entries
    /// drive a consortium cluster — workers spread their initial
    /// connections across the list, follow typed `NotPrimary`
    /// redirects to whoever currently leads, and rotate to the next
    /// endpoint when a member dies mid-stream (resubmission is safe:
    /// the committed-wire-hash index answers retries of landed
    /// transactions with the stored receipt).
    pub endpoints: Vec<SocketAddr>,
    /// Worker threads (= concurrent logical clients in closed mode).
    pub threads: usize,
    /// Transactions per worker.
    pub txs_per_thread: usize,
    /// Closed loop (`true`) or open loop (`false`).
    pub closed: bool,
    /// Seal T-Protocol envelopes (`true`) or send public plaintext
    /// transactions (`false`).
    pub confidential: bool,
    /// Open loop: in-flight pipeline window per worker.
    pub window: usize,
    /// Retry budget for `Busy` responses in closed mode (open mode never
    /// retries: busy-rejects are the measurement).
    pub busy_retries: usize,
    /// Contract to invoke.
    pub contract: [u8; 32],
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            endpoints: vec![SocketAddr::from(([127, 0, 0, 1], 0))],
            threads: 4,
            txs_per_thread: 250,
            closed: true,
            confidential: true,
            window: 64,
            busy_retries: 50,
            contract: crate::demo::DEMO_CONTRACT,
        }
    }
}

/// Aggregated outcome of one loadgen run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Mode label (`"closed"` / `"open"`).
    pub mode: String,
    /// Confidential or public workload.
    pub confidential: bool,
    /// Worker threads.
    pub threads: usize,
    /// Unique transactions submitted, deduplicated by wire hash: a
    /// `Busy` reject followed by a successful retry is *one* submission
    /// (the resends are counted under `retries`). Open loop sends each
    /// transaction exactly once, so there `submitted` still equals
    /// accepted + busy + rejected + redirects.
    pub submitted: u64,
    /// Transactions the server accepted into the queue.
    pub accepted: u64,
    /// Typed `Busy` responses observed.
    pub busy: u64,
    /// Typed `Rejected` responses observed.
    pub rejected: u64,
    /// Resubmission attempts beyond each transaction's first (closed-loop
    /// backoff-and-retry on `Busy`).
    pub retries: u64,
    /// Typed `NotPrimary` redirects followed (cluster runs: a worker
    /// landed on a follower and was pointed at the leader).
    pub redirects: u64,
    /// Receipts fetched and (for confidential txs) decrypted under `k_tx`.
    pub receipts_verified: u64,
    /// Wall-clock of the measured window, seconds.
    pub elapsed_s: f64,
    /// Committed throughput, transactions/second.
    pub throughput_tps: f64,
    /// Latency distribution in milliseconds (closed: seal→commit;
    /// open: submit→accept).
    pub latency_ms: LatencySummary,
}

/// Latency percentiles (milliseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    fn from_micros(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64 / 1000.0
        };
        LatencySummary {
            mean: samples.iter().sum::<u64>() as f64 / n as f64 / 1000.0,
            p50: pct(0.50),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty") as f64 / 1000.0,
        }
    }
}

struct WorkerResult {
    submitted: u64,
    accepted: u64,
    busy: u64,
    rejected: u64,
    retries: u64,
    redirects: u64,
    receipts_verified: u64,
    latencies_us: Vec<u64>,
}

impl WorkerResult {
    fn empty(cap: usize) -> WorkerResult {
        WorkerResult {
            submitted: 0,
            accepted: 0,
            busy: 0,
            rejected: 0,
            retries: 0,
            redirects: 0,
            receipts_verified: 0,
            latencies_us: Vec::with_capacity(cap),
        }
    }
}

/// Dial some endpoint, starting at `*start` and rotating through the
/// list (a dead member mid-run is expected in cluster chaos drills).
fn connect_any(endpoints: &[SocketAddr], start: &mut usize) -> Result<Conn, NetError> {
    let mut last = NetError::Disconnected;
    for i in 0..endpoints.len() * 8 {
        let idx = (*start + i) % endpoints.len();
        match Conn::connect(endpoints[idx]) {
            Ok(c) => {
                *start = idx;
                return Ok(c);
            }
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(last)
}

/// One sealed (or signed public) transaction the worker retains enough
/// context about to verify its receipt later.
struct PreparedTx {
    wire: WireTx,
    tx_hash: [u8; 32],
    k_tx: Option<[u8; 32]>,
}

fn prepare_txs(
    worker: usize,
    n: usize,
    confidential: bool,
    contract: [u8; 32],
    pk_tx: &[u8; 32],
) -> Result<Vec<PreparedTx>, NetError> {
    let identity = {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&(worker as u64 + 1).to_le_bytes());
        seed[8] = 0x10;
        seed
    };
    let root_key = {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&(worker as u64 + 1).to_le_bytes());
        seed[8] = 0x20;
        seed
    };
    let mut client = ConfideClient::new(identity, root_key, worker as u64 + 7);
    let mut rng = HmacDrbg::from_u64(worker as u64 + 90_000);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let args = crate::demo::demo_args(worker, i);
        if confidential {
            let signed = client.build_raw(contract, "main", &args);
            let (wire, tx_hash, k_tx) = seal_signed_tx(&signed, &root_key, pk_tx, &mut rng)
                .map_err(|_| NetError::Crypto)?;
            out.push(PreparedTx {
                wire,
                tx_hash,
                k_tx: Some(k_tx),
            });
        } else {
            let signed = client.build_raw(contract, "main", &args);
            let tx_hash = signed.raw.hash();
            out.push(PreparedTx {
                wire: WireTx::Public(signed),
                tx_hash,
                k_tx: None,
            });
        }
    }
    Ok(out)
}

/// Fetch + verify the receipt for one prepared tx. Returns true when the
/// receipt exists and (for confidential txs) decrypts under `k_tx`.
fn verify_receipt(conn: &mut Conn, tx: &PreparedTx) -> bool {
    match conn.get_receipt(&tx.tx_hash) {
        Ok(Some(bytes)) => match &tx.k_tx {
            Some(k_tx) => Receipt::open(&bytes, k_tx, &tx.tx_hash)
                .map(|r| r.tx_hash == tx.tx_hash)
                .unwrap_or(false),
            None => Receipt::decode(&bytes)
                .map(|r| r.tx_hash == tx.tx_hash)
                .unwrap_or(false),
        },
        _ => false,
    }
}

fn closed_worker(
    cfg: &LoadgenConfig,
    worker: usize,
    pk_tx: &[u8; 32],
) -> Result<WorkerResult, NetError> {
    let mut endpoint = worker % cfg.endpoints.len();
    let mut conn = connect_any(&cfg.endpoints, &mut endpoint)?;
    let txs = prepare_txs(
        worker,
        cfg.txs_per_thread,
        cfg.confidential,
        cfg.contract,
        pk_tx,
    )?;
    let mut res = WorkerResult::empty(txs.len());
    for tx in &txs {
        let t0 = Instant::now();
        let mut attempts = 0usize;
        // One unique wire hash = one submission, however many times the
        // Busy backoff loop resends it. Counting each resend used to
        // inflate the tps denominator (a Busy reject + its retry were
        // two "submissions"); retries are tallied separately below.
        res.submitted += 1;
        loop {
            match conn.submit_wait(&tx.wire) {
                Ok((sealed, receipt)) => {
                    res.accepted += 1;
                    res.latencies_us.push(t0.elapsed().as_micros() as u64);
                    let ok = match &tx.k_tx {
                        Some(k_tx) => {
                            sealed
                                && Receipt::open(&receipt, k_tx, &tx.tx_hash)
                                    .map(|r| r.tx_hash == tx.tx_hash)
                                    .unwrap_or(false)
                        }
                        None => {
                            !sealed
                                && Receipt::decode(&receipt)
                                    .map(|r| r.tx_hash == tx.tx_hash)
                                    .unwrap_or(false)
                        }
                    };
                    if ok {
                        res.receipts_verified += 1;
                    }
                    break;
                }
                Err(NetError::Busy) => {
                    res.busy += 1;
                    res.retries += 1;
                    attempts += 1;
                    if attempts > cfg.busy_retries {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1 << attempts.min(5)));
                }
                Err(NetError::Rejected(_)) => {
                    res.rejected += 1;
                    break;
                }
                Err(NetError::NotPrimary(leader)) => {
                    // A follower answered: chase the typed redirect.
                    // A stale pointer (the leader just died) falls back
                    // to rotating through the endpoint list.
                    res.redirects += 1;
                    attempts += 1;
                    if attempts > cfg.busy_retries {
                        break;
                    }
                    match leader.parse::<SocketAddr>().ok().and_then(|a| {
                        cfg.endpoints.iter().position(|e| *e == a)?;
                        Conn::connect(a).ok()
                    }) {
                        Some(c) => conn = c,
                        None => {
                            std::thread::sleep(Duration::from_millis(50));
                            endpoint += 1;
                            conn = connect_any(&cfg.endpoints, &mut endpoint)?;
                        }
                    }
                }
                Err(e) if transport_failure(&e) && cfg.endpoints.len() > 1 => {
                    // The member died mid-conversation (a cluster chaos
                    // drill kills the leader under load). Resubmitting
                    // elsewhere is exactly-once safe: the committed
                    // index deduplicates by wire hash.
                    res.retries += 1;
                    attempts += 1;
                    if attempts > cfg.busy_retries {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1 << attempts.min(6)));
                    endpoint += 1;
                    conn = connect_any(&cfg.endpoints, &mut endpoint)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(res)
}

/// Did the wire itself fail (as opposed to a typed protocol verdict)?
fn transport_failure(e: &NetError) -> bool {
    matches!(e, NetError::Frame(_) | NetError::Disconnected)
}

fn open_worker(
    cfg: &LoadgenConfig,
    worker: usize,
    pk_tx: &[u8; 32],
) -> Result<WorkerResult, NetError> {
    let mut endpoint = worker % cfg.endpoints.len();
    let mut conn = connect_any(&cfg.endpoints, &mut endpoint)?;
    // Seal outside the timed window: open loop measures the *server*.
    let txs = prepare_txs(
        worker,
        cfg.txs_per_thread,
        cfg.confidential,
        cfg.contract,
        pk_tx,
    )?;
    let mut res = WorkerResult::empty(txs.len());
    let window = cfg.window.max(1);
    let mut sent_at: Vec<Instant> = Vec::with_capacity(txs.len());
    let mut next_to_send = 0usize;
    let mut next_to_read = 0usize;
    let mut accepted_idx: Vec<usize> = Vec::new();
    while next_to_read < txs.len() {
        while next_to_send < txs.len() && next_to_send - next_to_read < window {
            conn.send(&Message::SubmitTx(txs[next_to_send].wire.clone()))?;
            sent_at.push(Instant::now());
            next_to_send += 1;
        }
        let reply = conn.recv()?;
        res.submitted += 1;
        res.latencies_us
            .push(sent_at[next_to_read].elapsed().as_micros() as u64);
        match reply {
            Message::Accepted(_) => {
                res.accepted += 1;
                accepted_idx.push(next_to_read);
            }
            Message::Busy => res.busy += 1,
            Message::Rejected(_) => res.rejected += 1,
            // Open loop measures *one* server; a follower's redirect is
            // recorded but deliberately not chased (the pipelined
            // window has no per-tx conversation to move).
            Message::NotPrimary { .. } => res.redirects += 1,
            other => return Err(NetError::UnexpectedReply(other.kind())),
        }
        next_to_read += 1;
    }
    // Wait for the queue to drain, then verify every accepted receipt.
    for &i in &accepted_idx {
        let tx = &txs[i];
        let mut polls = 0usize;
        loop {
            if verify_receipt(&mut conn, tx) {
                res.receipts_verified += 1;
                break;
            }
            polls += 1;
            if polls > 2000 {
                break; // counted as unverified — surfaces in the report
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    Ok(res)
}

/// Run one workload against a live node (or cluster).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, NetError> {
    if cfg.endpoints.is_empty() {
        return Err(NetError::Disconnected);
    }
    // pk_tx is consortium-wide: any live member can hand it out.
    let mut start = 0usize;
    let pk_tx = connect_any(&cfg.endpoints, &mut start)?.fetch_pk_tx()?;
    let t0 = Instant::now();
    let results: Vec<Result<WorkerResult, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|w| {
                let cfg = cfg.clone();
                scope.spawn(move || {
                    if cfg.closed {
                        closed_worker(&cfg, w, &pk_tx)
                    } else {
                        open_worker(&cfg, w, &pk_tx)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(NetError::Disconnected)))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut report = LoadReport {
        mode: if cfg.closed { "closed" } else { "open" }.into(),
        confidential: cfg.confidential,
        threads: cfg.threads,
        elapsed_s: elapsed,
        ..LoadReport::default()
    };
    let mut latencies = Vec::new();
    for r in results {
        let r = r?;
        report.submitted += r.submitted;
        report.accepted += r.accepted;
        report.busy += r.busy;
        report.rejected += r.rejected;
        report.retries += r.retries;
        report.redirects += r.redirects;
        report.receipts_verified += r.receipts_verified;
        latencies.extend(r.latencies_us);
    }
    report.throughput_tps = report.receipts_verified as f64 / elapsed.max(1e-9);
    report.latency_ms = LatencySummary::from_micros(latencies);
    Ok(report)
}

/// One measured point of the §6.2 thread-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads the block executor scheduled for.
    pub threads: usize,
    /// Conflict groups the executor discovered.
    pub groups: usize,
    /// Virtual-cycle makespan of the block, converted to milliseconds at
    /// the cost model's clock (3.7 GHz, matching the paper's testbed).
    pub makespan_ms: f64,
    /// Modeled committed throughput: block size / makespan.
    pub model_tps: f64,
    /// `makespan(1) / makespan(threads)`.
    pub speedup_vs_1: f64,
}

/// The scaling curve for one workload shape.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Workload label (`"conflict_free"` / `"four_groups"`).
    pub workload: String,
    /// Transactions in the measured block.
    pub txs: usize,
    /// One point per thread count.
    pub points: Vec<ScalingPoint>,
}

/// Seal `senders × txs_per_sender` confidential transfers, each sender
/// paying into its *own* user key — cross-sender conflict-free, while a
/// sender's own transactions chain through its nonce key. `pick` chooses
/// the target contract per sender, so the same generator produces
/// single-engine and mixed VM+EVM blocks.
fn scaling_txs_for(
    pk_tx: &[u8; 32],
    senders: usize,
    txs_per_sender: usize,
    pick: impl Fn(usize) -> [u8; 32],
) -> Result<Vec<WireTx>, NetError> {
    let mut out = Vec::with_capacity(senders * txs_per_sender);
    for s in 0..senders {
        let mut identity = [0u8; 32];
        identity[..8].copy_from_slice(&(s as u64 + 1).to_le_bytes());
        identity[8] = 0x30;
        let mut root_key = identity;
        root_key[8] = 0x40;
        let mut client = ConfideClient::new(identity, root_key, s as u64 + 500);
        let mut rng = HmacDrbg::from_u64(s as u64 + 91_000);
        for i in 0..txs_per_sender {
            let args = format!(r#"{{"to":"scal{s}","amount":{}}}"#, i + 1);
            let signed = client.build_raw(pick(s), "main", args.as_bytes());
            let (wire, _, _) = seal_signed_tx(&signed, &root_key, pk_tx, &mut rng)
                .map_err(|_| NetError::Crypto)?;
            out.push(wire);
        }
    }
    Ok(out)
}

/// [`scaling_txs_for`] with every sender targeting the same `contract`.
fn scaling_txs(
    pk_tx: &[u8; 32],
    contract: [u8; 32],
    senders: usize,
    txs_per_sender: usize,
) -> Result<Vec<WireTx>, NetError> {
    scaling_txs_for(pk_tx, senders, txs_per_sender, |_| contract)
}

/// Run one warm-up block so `contract`'s code cache is hot before the
/// measured block — otherwise the single decrypt+decode miss is charged
/// to whichever transaction runs first and skews the makespan.
fn warm_up_on(node: &mut ConfideNode, contract: [u8; 32]) -> Result<(), NetError> {
    let pk_tx = node.pk_tx();
    // A dedicated identity: the warm-up must not consume a nonce of any
    // sender appearing in the measured block. Derived from the contract
    // address, so warming several contracts on one node never reuses a
    // nonce.
    let mut identity = [0x5A; 32];
    identity[0] ^= contract[0];
    let mut root_key = [0x5B; 32];
    root_key[0] ^= contract[0];
    let mut client = ConfideClient::new(identity, root_key, 424_242);
    let mut rng = HmacDrbg::from_u64(424_242 ^ contract[0] as u64);
    let signed = client.build_raw(contract, "main", br#"{"to":"warm","amount":1}"#);
    let (wire, _, _) =
        seal_signed_tx(&signed, &root_key, &pk_tx, &mut rng).map_err(|_| NetError::Crypto)?;
    let res = node
        .execute_block_parallel(&[wire], 1)
        .map_err(|e| NetError::Rejected(e.to_string()))?;
    if res.accepted() != 1 {
        return Err(NetError::Rejected("warm-up tx rejected".into()));
    }
    Ok(())
}

/// Measure the §6.2 scaling curves on an in-process node: the *real*
/// parallel block executor runs the block, and its virtual-cycle makespan
/// prices what each thread count buys. Results are deterministic (seeded
/// node, measured cycle costs), so the emitted numbers are reproducible
/// bit-for-bit — and independent of how many physical cores this host
/// has.
///
/// Two workload shapes bracket the paper's Figure: `conflict_free`
/// (16 independent senders — near-linear 1→4 scaling) and `four_groups`
/// (4 senders × 6 chained txs — the curve flatlines past 4 threads,
/// "no further improvement when the number of thread increases to 6").
pub fn run_parallel_scaling(seed: u64) -> Result<Vec<ScalingReport>, NetError> {
    let thread_counts = [1usize, 2, 4, 6];
    let model = CostModel::default();
    let mut reports = Vec::new();
    for (workload, senders, per_sender) in
        [("conflict_free", 16usize, 1usize), ("four_groups", 4, 6)]
    {
        let mut points: Vec<ScalingPoint> = Vec::new();
        let mut base_ms = 0.0f64;
        for &threads in &thread_counts {
            // Fresh node per point: committing the measured block advances
            // nonces, so re-running the same transactions needs a replica
            // starting from the identical state.
            let mut node = crate::demo::demo_node(seed);
            warm_up_on(&mut node, crate::demo::DEMO_CONTRACT)?;
            let txs = scaling_txs(
                &node.pk_tx(),
                crate::demo::DEMO_CONTRACT,
                senders,
                per_sender,
            )?;
            let res = node
                .execute_block_parallel(&txs, threads)
                .map_err(|e| NetError::Rejected(e.to_string()))?;
            if res.accepted() != txs.len() {
                return Err(NetError::Rejected(format!(
                    "scaling block rejected {} of {} txs",
                    txs.len() - res.accepted(),
                    txs.len()
                )));
            }
            let ms = model.cycles_to_ms(res.report.makespan_cycles).max(1e-9);
            if threads == 1 {
                base_ms = ms;
            }
            points.push(ScalingPoint {
                threads,
                groups: res.report.groups,
                makespan_ms: ms,
                model_tps: txs.len() as f64 / (ms / 1000.0),
                speedup_vs_1: base_ms / ms,
            });
        }
        reports.push(ScalingReport {
            workload: workload.into(),
            txs: senders * per_sender,
            points,
        });
    }
    Ok(reports)
}

/// The static-scheduling datapoint: the same conflict-free block executed
/// by the OCC path (speculate → group → commit) and the static path
/// (plan → group → commit, zero speculative runs), on replicas that start
/// from identical state.
#[derive(Debug, Clone)]
pub struct StaticSchedReport {
    /// Transactions in the measured block.
    pub txs: usize,
    /// Worker threads both executions scheduled for.
    pub threads: usize,
    /// Speculative runs the OCC path performed (= block size).
    pub occ_spec_runs: usize,
    /// Speculative runs the static path performed (must be 0).
    pub static_spec_runs: usize,
    /// Measured cycles the OCC speculation phase burned (stable cost:
    /// EPC memory-pool commits excluded, as in the executor's own load
    /// accounting — pool hits race with thread timing and build speed).
    pub occ_spec_cycles: u64,
    /// Measured cycles static planning spent (per-tx envelope peeks).
    pub plan_cycles: u64,
    /// Modeled end-to-end OCC time: the speculation phase (per-tx
    /// independent, spread over the workers) + commit-phase makespan.
    pub occ_modeled_ms: f64,
    /// Modeled end-to-end static time: planning (also per-tx independent
    /// — `plan_tx` is a pure read) + commit-phase makespan.
    pub static_modeled_ms: f64,
    /// `occ_modeled_ms / static_modeled_ms` — what skipping speculation
    /// buys on a block whose summaries are all precise.
    pub modeled_speedup: f64,
    /// Whether the two replicas sealed byte-identical state roots.
    pub roots_match: bool,
    /// Whether the static path actually engaged (no OCC fallback).
    pub static_schedule: bool,
}

/// Execute the conflict-free scaling block once under forced OCC and once
/// under static scheduling, price both end-to-end, and cross-check the
/// sealed state roots. Deterministic: seeded nodes, measured virtual
/// cycles.
pub fn run_static_sched(seed: u64) -> Result<StaticSchedReport, NetError> {
    let threads = 4usize;
    let senders = 16usize;
    let model = CostModel::default();

    let run = |mode: confide_core::SchedMode| -> Result<_, NetError> {
        let mut node = crate::demo::demo_node(seed);
        warm_up_on(&mut node, crate::demo::DEMO_CONTRACT)?;
        let txs = scaling_txs(&node.pk_tx(), crate::demo::DEMO_CONTRACT, senders, 1)?;
        let res = node
            .execute_block_sched(&txs, threads, mode)
            .map_err(|e| NetError::Rejected(e.to_string()))?;
        if res.accepted() != txs.len() {
            return Err(NetError::Rejected(format!(
                "static-sched block rejected {} of {} txs",
                txs.len() - res.accepted(),
                txs.len()
            )));
        }
        Ok(res)
    };
    let occ = run(confide_core::SchedMode::Occ)?;
    let stat = run(confide_core::SchedMode::Static)?;

    // Stable speculation cost: strip the EPC pool-commit cycles exactly
    // as the executor's per-tx loads do (pool hits depend on worker
    // timing, so the raw total is not replica-deterministic).
    let occ_spec_cycles = occ
        .report
        .spec_counters
        .total_cycles()
        .saturating_sub(occ.report.spec_counters.mem_commit_cycles);
    let occ_end_to_end = occ.report.makespan_cycles + occ_spec_cycles / threads as u64;
    let static_end_to_end = stat.report.makespan_cycles + stat.report.plan_cycles / threads as u64;
    let occ_modeled_ms = model.cycles_to_ms(occ_end_to_end).max(1e-9);
    let static_modeled_ms = model.cycles_to_ms(static_end_to_end).max(1e-9);
    Ok(StaticSchedReport {
        txs: senders,
        threads,
        occ_spec_runs: occ.report.spec_runs,
        static_spec_runs: stat.report.spec_runs,
        occ_spec_cycles,
        plan_cycles: stat.report.plan_cycles,
        occ_modeled_ms,
        static_modeled_ms,
        modeled_speedup: occ_modeled_ms / static_modeled_ms,
        roots_match: occ.block.header.state_root == stat.block.header.state_root,
        static_schedule: stat.report.static_schedule,
    })
}

/// The cross-engine (EVM-parity) datapoint: the same logical ledger
/// block priced on both machines (Figure 10's architecture gap), the
/// mixed VM+EVM block's scheduler behaviour and 1-vs-4-thread root
/// equality, and a CCL→EVM confidential cross-engine call whose sealed
/// receipt must open under `k_tx`.
#[derive(Debug, Clone, Default)]
pub struct EvmReport {
    /// Transactions in each single-engine measured block.
    pub txs: usize,
    /// Modeled committed throughput of the EVM block (1 thread).
    pub evm_model_tps: f64,
    /// Modeled committed throughput of the CONFIDE-VM block (1 thread).
    pub vm_model_tps: f64,
    /// `vm_model_tps / evm_model_tps` — how much faster the Wasm-derived
    /// machine runs the identical CCL program (paper Figure 10).
    pub vm_vs_evm_speedup: f64,
    /// Whether the mixed VM+EVM block under [`SchedMode::Static`] took
    /// the whole-block OCC fallback (EVM transactions carry no static
    /// access summary, so a static schedule would be unsound).
    ///
    /// [`SchedMode::Static`]: confide_core::SchedMode::Static
    pub mixed_occ_fallback: bool,
    /// Whether the mixed block sealed byte-identical state roots at
    /// 1 and 4 execution threads.
    pub mixed_roots_match: bool,
    /// Whether the CCL→EVM cross-engine calls executed, chained state
    /// through the EVM callee, and their sealed receipts opened under
    /// `k_tx` with the expected ledger results.
    pub cross_call_ok: bool,
}

/// Measure the EVM-parity datapoints on in-process nodes. Deterministic:
/// seeded nodes, virtual-cycle makespans.
pub fn run_evm_bench(seed: u64) -> Result<EvmReport, NetError> {
    let senders = 8usize;
    let model = CostModel::default();

    // (1) Figure 10: the same CCL ledger block on each engine, 1 thread.
    let measure = |contract: [u8; 32]| -> Result<f64, NetError> {
        let mut node = crate::demo::demo_node(seed);
        warm_up_on(&mut node, contract)?;
        let txs = scaling_txs(&node.pk_tx(), contract, senders, 1)?;
        let res = node
            .execute_block_parallel(&txs, 1)
            .map_err(|e| NetError::Rejected(e.to_string()))?;
        if res.accepted() != txs.len() {
            return Err(NetError::Rejected(format!(
                "evm bench block rejected {} of {} txs",
                txs.len() - res.accepted(),
                txs.len()
            )));
        }
        let ms = model.cycles_to_ms(res.report.makespan_cycles).max(1e-9);
        Ok(txs.len() as f64 / (ms / 1000.0))
    };
    let evm_model_tps = measure(crate::demo::DEMO_EVM_CONTRACT)?;
    let vm_model_tps = measure(crate::demo::DEMO_CONTRACT)?;

    // (2) Mixed VM+EVM block under Static mode: must fall back to
    // whole-block OCC and stay thread-count-invariant.
    let mixed = |threads: usize| -> Result<_, NetError> {
        let mut node = crate::demo::demo_node(seed);
        warm_up_on(&mut node, crate::demo::DEMO_CONTRACT)?;
        warm_up_on(&mut node, crate::demo::DEMO_EVM_CONTRACT)?;
        let txs = scaling_txs_for(&node.pk_tx(), senders, 1, |s| {
            if s % 2 == 0 {
                crate::demo::DEMO_CONTRACT
            } else {
                crate::demo::DEMO_EVM_CONTRACT
            }
        })?;
        let res = node
            .execute_block_sched(&txs, threads, confide_core::SchedMode::Static)
            .map_err(|e| NetError::Rejected(e.to_string()))?;
        if res.accepted() != txs.len() {
            return Err(NetError::Rejected(format!(
                "mixed block rejected {} of {} txs",
                txs.len() - res.accepted(),
                txs.len()
            )));
        }
        Ok(res)
    };
    let one = mixed(1)?;
    let four = mixed(4)?;
    let mixed_occ_fallback = !one.report.static_schedule
        && !four.report.static_schedule
        && one.report.spec_runs == senders
        && four.report.spec_runs == senders;
    let mixed_roots_match = one.block.header.state_root == four.block.header.state_root;

    // (3) CCL→EVM cross-engine call over the forwarder contract: two
    // chained transfers from one client, so the second receipt proves the
    // EVM callee's storage carried state across the call boundary.
    let cross_call_ok = {
        let mut node = crate::demo::demo_node(seed);
        let pk_tx = node.pk_tx();
        let identity = [0x6A; 32];
        let root_key = [0x6B; 32];
        let mut client = ConfideClient::new(identity, root_key, 636_363);
        let mut rng = HmacDrbg::from_u64(636_363);
        let mut wires = Vec::new();
        let mut opens = Vec::new();
        for _ in 0..2 {
            let signed = client.build_raw(
                crate::demo::DEMO_CROSS_CONTRACT,
                "main",
                br#"{"to":"xeng","amount":7}"#,
            );
            let (wire, tx_hash, k_tx) = seal_signed_tx(&signed, &root_key, &pk_tx, &mut rng)
                .map_err(|_| NetError::Crypto)?;
            wires.push(wire);
            opens.push((tx_hash, k_tx));
        }
        let res = node
            .execute_block_parallel(&wires, 2)
            .map_err(|e| NetError::Rejected(e.to_string()))?;
        res.accepted() == 2
            && res
                .outcomes
                .iter()
                .zip(&opens)
                .zip([b"7".as_slice(), b"14".as_slice()])
                .all(|((outcome, (tx_hash, k_tx)), want)| match outcome {
                    Ok((_, Some(sealed))) => Receipt::open(sealed, k_tx, tx_hash)
                        .map(|r| r.success && r.return_data == want)
                        .unwrap_or(false),
                    _ => false,
                })
    };

    Ok(EvmReport {
        txs: senders,
        evm_model_tps,
        vm_model_tps,
        vm_vs_evm_speedup: vm_model_tps / evm_model_tps.max(1e-9),
        mixed_occ_fallback,
        mixed_roots_match,
        cross_call_ok,
    })
}

/// Knobs of the pipelined-reactor benchmark ([`run_pipeline_bench`]).
///
/// Targets are *requests*: the run reads the process fd limit
/// (`/proc/self/limits`) and scales both fleets down proportionally when
/// the box cannot hold them — in-process loopback costs two descriptors
/// per connection (client end + server end). The emitted report records
/// the target and what was actually opened.
#[derive(Debug, Clone)]
pub struct PipelineBenchConfig {
    /// Idle connections to park on the reactor (default 10 000): they
    /// handshake, then send nothing, and must cost the sweep loop ~zero.
    pub idle_target: usize,
    /// Active connections submitting transactions (default 1 000).
    pub active_target: usize,
    /// Pipelined transactions per active connection (one sender identity
    /// per connection, so per-connection FIFO carries the nonce order).
    pub txs_per_conn: usize,
    /// Driver threads multiplexing the active fleet.
    pub drivers: usize,
    /// Ingest-ring bound for the bench server.
    pub queue_depth: usize,
    /// Execute-stage worker threads for the bench server.
    pub exec_threads: usize,
}

impl Default for PipelineBenchConfig {
    fn default() -> PipelineBenchConfig {
        PipelineBenchConfig {
            idle_target: 10_000,
            active_target: 1_000,
            txs_per_conn: 4,
            drivers: 8,
            queue_depth: 8192,
            exec_threads: 4,
        }
    }
}

/// Outcome of one [`run_pipeline_bench`] run — the `"pipeline"` section
/// of `BENCH_net.json`.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Idle connections requested.
    pub idle_conns_target: usize,
    /// Idle connections actually parked (fd-limit scaled).
    pub idle_conns: usize,
    /// Active connections actually driven.
    pub active_conns: usize,
    /// Transactions offered across the active fleet.
    pub txs: u64,
    /// Transactions the server accepted into the pipeline.
    pub accepted: u64,
    /// Typed `Busy` rejects (open loop: never retried).
    pub busy: u64,
    /// Typed `Rejected` verdicts.
    pub rejected: u64,
    /// Wall-clock of the wire phase (first byte offered → last accepted
    /// transaction's receipt durable and fetched), seconds.
    pub wire_elapsed_s: f64,
    /// Accepted-and-committed throughput over the wire, tx/s.
    pub wire_tps: f64,
    /// Exec-only throughput of the same workload on an in-process twin
    /// node (no sockets, no preverify pool, no fsync), tx/s.
    pub model_tps: f64,
    /// `model_tps / wire_tps` — how much the wire path gives up against
    /// pure execution. The check gate requires ≤ 2.0.
    pub model_ratio: f64,
    /// Preverify-stage busy time over the wire phase, in worker-seconds
    /// per wall-second (can exceed 1.0: the stage is a pool).
    pub preverify_occupancy: f64,
    /// Execute-stage busy time / wall (single thread: ≤ 1.0).
    pub execute_occupancy: f64,
    /// Commit-stage busy time / wall (single thread: ≤ 1.0).
    pub commit_occupancy: f64,
    /// Group commits (fsync batches) the commit stage issued.
    pub fsyncs: u64,
    /// Blocks made durable across those group commits.
    pub fsync_blocks: u64,
    /// Mean blocks amortized per fsync.
    pub blocks_per_fsync: f64,
    /// Largest single commit group, in blocks.
    pub max_group: u64,
    /// Group-size histogram; bucket labels are
    /// [`confide_storage::GROUP_BUCKETS`].
    pub group_hist: Vec<u64>,
    /// Block height made durable by the end of the run.
    pub durable_height: u64,
}

/// Soft fd limit of this process, from `/proc/self/limits` (fallback
/// 1024 when the file is absent or unparseable — e.g. non-Linux).
fn fd_soft_limit() -> usize {
    let txt = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    for line in txt.lines() {
        if let Some(rest) = line.strip_prefix("Max open files") {
            let tok = rest.split_whitespace().next().unwrap_or("");
            if tok == "unlimited" {
                return 1 << 20;
            }
            if let Ok(v) = tok.parse::<usize>() {
                return v;
            }
        }
    }
    1024
}

/// Scale `(idle, active)` targets to what the fd budget can hold:
/// in-process loopback costs 2 fds per connection, and ~300 descriptors
/// are reserved for the WAL, listener, stdio and the harness itself.
fn scale_to_fd_budget(idle_target: usize, active_target: usize) -> (usize, usize) {
    let cap = fd_soft_limit().saturating_sub(300) / 2;
    let want = idle_target + active_target;
    if want <= cap {
        return (idle_target, active_target);
    }
    let f = cap as f64 / want.max(1) as f64;
    let active = ((active_target as f64 * f) as usize).max(1);
    let idle = cap.saturating_sub(active);
    (idle, active)
}

/// Measure the three-stage pipeline end to end on an in-process reactor
/// node: park an idle fleet (default 10 000 connections) to prove
/// readiness sweeps don't tax quiet sockets, drive an active fleet
/// (default 1 000 connections) open-loop with pipelined confidential
/// submissions, and price the wire path against an exec-only twin of the
/// same node running the identical workload. Stage-occupancy and
/// group-commit-size numbers come from the server's own
/// `PipelineStats` counters, delta'd over the measured window.
pub fn run_pipeline_bench(cfg: &PipelineBenchConfig) -> Result<PipelineReport, NetError> {
    let (idle_n, active_n) = scale_to_fd_budget(cfg.idle_target, cfg.active_target);
    let txs_per_conn = cfg.txs_per_conn.max(1);

    // Bench server: durable WAL in a scratch dir so the commit stage
    // exercises real group fsyncs.
    let scratch = std::env::temp_dir().join(format!("confide-pipebench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(FrameError::from)?;
    let server_cfg = crate::server::ServerConfig::builder()
        .queue_depth(cfg.queue_depth.max(active_n * txs_per_conn))
        .exec_threads(cfg.exec_threads)
        // Throughput posture: a generous linger floor lets blocks fill
        // so per-block overhead (root recompute, WAL encode, fsync)
        // amortizes — the same group-commit tuning a database bench
        // would use. Interactive latency is not what this bench measures.
        .batch_linger(Duration::from_millis(50))
        .wal_path(scratch.join("bench.wal"))
        .build()
        .map_err(|e| NetError::Rejected(e.to_string()))?;
    let max_batch = server_cfg.max_batch;
    let mut server =
        crate::server::NodeServer::spawn(crate::demo::demo_node(7), ("127.0.0.1", 0), server_cfg)
            .map_err(FrameError::from)?;
    let addr = server.addr();

    // Park the idle fleet. A connect may transiently fail while the
    // accept backlog churns; retry briefly, and settle for what landed
    // (the report records the actual count).
    let mut idle: Vec<std::net::TcpStream> = Vec::with_capacity(idle_n);
    'park: for _ in 0..idle_n {
        for attempt in 0..3 {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => {
                    idle.push(s);
                    continue 'park;
                }
                Err(_) if attempt < 2 => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => break 'park,
            }
        }
    }

    let pk_tx = Conn::connect(addr)?.fetch_pk_tx()?;

    // Seal the whole workload before anything is timed: one sender
    // identity per active connection, txs chained through that sender's
    // nonce (per-connection FIFO on the wire preserves the order).
    let drivers = cfg.drivers.clamp(1, active_n);
    let mut prepared: Vec<Vec<PreparedTx>> = Vec::with_capacity(active_n);
    {
        let lanes: Vec<Result<Vec<Vec<PreparedTx>>, NetError>> = std::thread::scope(|scope| {
            (0..drivers)
                .map(|d| {
                    let pk_tx = &pk_tx;
                    scope.spawn(move || {
                        (d..active_n)
                            .step_by(drivers)
                            .map(|c| {
                                prepare_txs(
                                    c,
                                    txs_per_conn,
                                    true,
                                    crate::demo::DEMO_CONTRACT,
                                    pk_tx,
                                )
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(NetError::Disconnected)))
                .collect()
        });
        let mut by_driver: Vec<std::vec::IntoIter<Vec<PreparedTx>>> = Vec::new();
        for lane in lanes {
            by_driver.push(lane?.into_iter());
        }
        for c in 0..active_n {
            match by_driver[c % drivers].next() {
                Some(txs) => prepared.push(txs),
                None => return Err(NetError::Disconnected),
            }
        }
    }

    // Exec-only twin: demo_node is seed-deterministic, so the same
    // sealed envelopes open under the twin's k_tx. Blocks are chunked
    // round-robin across senders at the server's own max_batch, which
    // both preserves each sender's nonce order and mirrors the block
    // shape the wire path produces.
    let model_tps = {
        let mut twin = crate::demo::demo_node(7);
        warm_up_on(&mut twin, crate::demo::DEMO_CONTRACT)?;
        let mut flat: Vec<WireTx> = Vec::with_capacity(active_n * txs_per_conn);
        for round in 0..txs_per_conn {
            for txs in &prepared {
                flat.push(txs[round].wire.clone());
            }
        }
        let t0 = Instant::now();
        for chunk in flat.chunks(max_batch) {
            let res = twin
                .execute_block_parallel(chunk, cfg.exec_threads)
                .map_err(|e| NetError::Rejected(e.to_string()))?;
            if res.accepted() != chunk.len() {
                return Err(NetError::Rejected(format!(
                    "exec-only twin rejected {} of {} txs",
                    chunk.len() - res.accepted(),
                    chunk.len()
                )));
            }
        }
        flat.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };

    // Wire phase. Drivers connect their conns first, rendezvous on a
    // barrier, then the clock starts: pipelined sends round-robin across
    // each driver's conns, with every connection's *last* transaction a
    // `SubmitTxWait` — its reply is dispatched only after the group
    // fsync covering its block, so draining the replies observes
    // durability with zero polling traffic (a poll loop here would
    // compete with ingest for the preverify workers and poison the
    // measurement on small machines).
    let pipe0 = snapshot_pipe(server.pipeline_stats());
    let barrier = std::sync::Barrier::new(drivers + 1);
    let t0;
    let lane_results: Vec<Result<(u64, u64, u64), NetError>>;
    {
        let prepared = &prepared;
        let barrier = &barrier;
        let (t, r) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..drivers)
                .map(|d| {
                    scope.spawn(move || -> Result<(u64, u64, u64), NetError> {
                        let my: Vec<usize> = (d..active_n).step_by(drivers).collect();
                        let mut conns: Vec<Conn> = my
                            .iter()
                            .map(|_| Conn::connect(addr))
                            .collect::<Result<_, _>>()?;
                        barrier.wait();
                        #[allow(clippy::needless_range_loop)] // round-major send order is the point
                        for round in 0..txs_per_conn {
                            for (slot, &c) in my.iter().enumerate() {
                                let wire = prepared[c][round].wire.clone();
                                let msg = if round + 1 == txs_per_conn {
                                    Message::SubmitTxWait(wire)
                                } else {
                                    Message::SubmitTx(wire)
                                };
                                conns[slot].send(&msg)?;
                            }
                        }
                        let (mut accepted, mut busy, mut rejected) = (0u64, 0u64, 0u64);
                        for (slot, &c) in my.iter().enumerate() {
                            for tx in &prepared[c] {
                                match conns[slot].recv()? {
                                    Message::Accepted(_) => accepted += 1,
                                    Message::Committed { sealed, receipt } => {
                                        // The wait reply doubles as the
                                        // end-to-end confidentiality
                                        // check: the receipt must open
                                        // under this tx's k_tx.
                                        let ok = match &tx.k_tx {
                                            Some(k_tx) => {
                                                sealed
                                                    && Receipt::open(&receipt, k_tx, &tx.tx_hash)
                                                        .map(|r| r.tx_hash == tx.tx_hash)
                                                        .unwrap_or(false)
                                            }
                                            None => !sealed,
                                        };
                                        if !ok {
                                            return Err(NetError::Crypto);
                                        }
                                        accepted += 1;
                                    }
                                    Message::Busy => busy += 1,
                                    Message::Rejected(_) => rejected += 1,
                                    other => return Err(NetError::UnexpectedReply(other.kind())),
                                }
                            }
                        }
                        Ok((accepted, busy, rejected))
                    })
                })
                .collect();
            barrier.wait();
            let t0 = Instant::now();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(NetError::Disconnected)))
                .collect();
            (t0, results)
        });
        t0 = t;
        lane_results = r;
    }
    let wire_elapsed = t0.elapsed().as_secs_f64();
    let (mut accepted, mut busy, mut rejected) = (0u64, 0u64, 0u64);
    for lane in lane_results {
        let (a, b, r) = lane?;
        accepted += a;
        busy += b;
        rejected += r;
    }
    let pipe1 = snapshot_pipe(server.pipeline_stats());
    let idle_parked = idle.len();
    drop(idle);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    let wall_ns = (wire_elapsed * 1e9).max(1.0);
    let wire_tps = accepted as f64 / wire_elapsed.max(1e-9);
    let delta = |f: fn(&PipeSnapshot) -> u64| f(&pipe1).saturating_sub(f(&pipe0)) as f64;
    let fsyncs = pipe1.fsyncs.saturating_sub(pipe0.fsyncs);
    let fsync_blocks = pipe1.fsync_blocks.saturating_sub(pipe0.fsync_blocks);
    Ok(PipelineReport {
        idle_conns_target: cfg.idle_target,
        idle_conns: idle_parked,
        active_conns: active_n,
        txs: (active_n * txs_per_conn) as u64,
        accepted,
        busy,
        rejected,
        wire_elapsed_s: wire_elapsed,
        wire_tps,
        model_tps,
        model_ratio: model_tps / wire_tps.max(1e-9),
        preverify_occupancy: delta(|s| s.preverify_ns) / wall_ns,
        execute_occupancy: delta(|s| s.execute_ns) / wall_ns,
        commit_occupancy: delta(|s| s.commit_ns) / wall_ns,
        fsyncs,
        fsync_blocks,
        blocks_per_fsync: fsync_blocks as f64 / fsyncs.max(1) as f64,
        max_group: pipe1.max_group,
        group_hist: pipe1
            .group_hist
            .iter()
            .zip(pipe0.group_hist.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect(),
        durable_height: pipe1.durable_height,
    })
}

/// Point-in-time copy of the server's pipeline counters (the live struct
/// is atomics; the bench wants before/after deltas).
struct PipeSnapshot {
    preverify_ns: u64,
    execute_ns: u64,
    commit_ns: u64,
    fsyncs: u64,
    fsync_blocks: u64,
    max_group: u64,
    group_hist: Vec<u64>,
    durable_height: u64,
}

fn snapshot_pipe(p: &crate::pipeline::PipelineStats) -> PipeSnapshot {
    use std::sync::atomic::Ordering;
    PipeSnapshot {
        preverify_ns: p.preverify_ns.load(Ordering::Relaxed),
        execute_ns: p.execute_ns.load(Ordering::Relaxed),
        commit_ns: p.commit_ns.load(Ordering::Relaxed),
        fsyncs: p.fsyncs.load(Ordering::Relaxed),
        fsync_blocks: p.fsync_blocks.load(Ordering::Relaxed),
        max_group: p.max_group.load(Ordering::Relaxed),
        group_hist: p
            .group_hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect(),
        durable_height: p.durable_height.load(Ordering::Relaxed),
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.0".into()
    }
}

/// The crash-recovery datapoint of one bench run: WAL replay latency
/// (measured by `confide-node --wal` and plumbed in via
/// `confide-loadgen --recover-ms`) plus the client-side retry totals.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    /// Milliseconds `recover_from_wal` took on the last restart (0 when
    /// the run had no recovery).
    pub recover_ms: u64,
    /// Blocks the recovery replayed.
    pub recovered_blocks: u64,
    /// Retry attempts across all workloads.
    pub retries: u64,
    /// Submissions that ran out of retry budget.
    pub retries_exhausted: u64,
}

/// The consensus-level datapoint of a cluster bench run: how many
/// members were driven, what the cluster committed, and the view
/// change / state sync counters its members report afterwards.
/// Single-node runs emit the section with `n = 1` and zeroed counters,
/// so the JSON schema never drifts between deployment shapes.
#[derive(Debug, Clone, Default)]
pub struct ConsensusInfo {
    /// Cluster members the run targeted (1 = single node).
    pub n: usize,
    /// Committed throughput of the cluster workload, tx/s.
    pub tps: f64,
    /// View installations across members (max over members — every
    /// survivor observes the same view change).
    pub view_changes: u64,
    /// Blocks applied via state sync, summed over members.
    pub sync_blocks: u64,
    /// `NotPrimary` redirects the workload followed.
    pub redirects: u64,
    /// Equivocation evidence records, summed over members (non-zero
    /// only when a run overlapped a Byzantine drill).
    pub evidence: u64,
}

impl ConsensusInfo {
    /// Probe each endpoint's status and fold the counters into the
    /// section; unreachable members (e.g. a killed leader) are skipped.
    pub fn probe(endpoints: &[SocketAddr], tps: f64, redirects: u64) -> ConsensusInfo {
        let mut info = ConsensusInfo {
            n: endpoints.len(),
            tps,
            redirects,
            ..ConsensusInfo::default()
        };
        for addr in endpoints {
            let status = Conn::connect_timeout(*addr, Duration::from_millis(800))
                .and_then(|mut c| c.status());
            if let Ok(s) = status {
                info.view_changes = info.view_changes.max(s.view_changes);
                info.sync_blocks += s.sync_blocks;
                info.evidence += s.evidence;
            }
        }
        info
    }
}

/// The Byzantine-robustness datapoint of a bench run: the signed-vote /
/// quorum-certificate hot path measured in-process on every run, plus
/// chaos-drill counters plumbed in via `confide-loadgen` flags when
/// `scripts/check.sh byzantine-chaos` ran a drill first (zeroed and
/// `preset: "none"` otherwise, so the schema never drifts).
#[derive(Debug, Clone)]
pub struct ByzantineReport {
    /// Chaos preset the drill ran (`"none"` when the run had no drill).
    pub preset: String,
    /// Equivocation evidence records across members after the drill.
    pub evidence: u64,
    /// Milliseconds from attack start until the honest majority
    /// re-elected and resumed committing (0 = no drill / no election).
    pub view_change_ms: u64,
    /// Blocks a corrupted member re-applied via cert-verified state
    /// sync during self-healing WAL repair.
    pub repair_blocks: u64,
    /// Milliseconds the WAL repair (truncate + certified sync) took.
    pub repair_ms: u64,
    /// Microbench: microseconds to Ed25519-sign one commit vote.
    pub cert_sign_us: f64,
    /// Microbench: microseconds to verify one 2f+1 quorum certificate
    /// against the consortium roster.
    pub cert_verify_us: f64,
}

impl Default for ByzantineReport {
    fn default() -> ByzantineReport {
        ByzantineReport {
            preset: "none".into(),
            evidence: 0,
            view_change_ms: 0,
            repair_blocks: 0,
            repair_ms: 0,
            cert_sign_us: 0.0,
            cert_verify_us: 0.0,
        }
    }
}

/// Measure the quorum-certificate hot path in-process: per-vote Ed25519
/// signing and full 2f+1 certificate verification against a
/// deterministic `n`-member roster. This is the marginal cost PR 10's
/// authenticated consensus adds to every committed block, so the bench
/// records it alongside the throughput numbers it taxes.
pub fn cert_microbench(n: usize, iters: u32) -> (f64, f64) {
    use confide_consensus::{quorum, sign_vote, Keyring, QuorumCert};
    let rings: Vec<Keyring> = (0..n as u32)
        .map(|id| Keyring::deterministic(0xbe9c, id, n))
        .collect();
    let root = [0x5a; 32];
    let iters = iters.max(1);
    let t0 = Instant::now();
    let mut last_sig = [0u8; 64];
    for i in 0..iters {
        last_sig = sign_vote(&rings[0].signer, u64::from(i) + 1, &root);
    }
    let sign_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    // One realistic cert: the first 2f+1 members vote for the same
    // (height, root); verification checks every signature.
    let height = u64::from(iters);
    let cert = QuorumCert {
        height,
        root,
        votes: (0..quorum(n) as u32)
            .map(|id| {
                let sig = if id == 0 {
                    last_sig
                } else {
                    sign_vote(&rings[id as usize].signer, height, &root)
                };
                (id, sig)
            })
            .collect(),
    };
    let t1 = Instant::now();
    for _ in 0..iters {
        cert.verify(n, &rings[0].keys)
            .expect("microbench cert verifies");
    }
    let verify_us = t1.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    (sign_us, verify_us)
}

/// Render reports as the `BENCH_net.json` document (hand-rolled JSON —
/// the build stays zero-dependency).
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    reports: &[LoadReport],
    scaling: &[ScalingReport],
    static_sched: &StaticSchedReport,
    evm: &EvmReport,
    server_cfg: &crate::server::ServerConfig,
    recovery: &RecoveryInfo,
    consensus: &ConsensusInfo,
    byzantine: &ByzantineReport,
    pipeline: Option<&PipelineReport>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 7,\n");
    out.push_str("  \"bench\": \"net_loopback\",\n");
    out.push_str(&format!(
        "  \"machine\": {{ \"cores\": {} }},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"server\": {{ \"max_batch\": {}, \"queue_depth\": {}, \"batch_linger_ms\": {}, \
         \"exec_threads\": {} }},\n",
        server_cfg.max_batch,
        server_cfg.queue_depth,
        server_cfg.batch_linger.as_millis(),
        server_cfg.exec_threads
    ));
    out.push_str(&format!(
        "  \"recovery\": {{ \"recover_ms\": {}, \"recovered_blocks\": {}, \"retries\": {}, \
         \"retries_exhausted\": {} }},\n",
        recovery.recover_ms,
        recovery.recovered_blocks,
        recovery.retries,
        recovery.retries_exhausted
    ));
    out.push_str(&format!(
        "  \"consensus\": {{ \"n\": {}, \"tps\": {}, \"view_changes\": {}, \
         \"sync_blocks\": {}, \"redirects\": {}, \"evidence\": {} }},\n",
        consensus.n,
        fmt_f64(consensus.tps),
        consensus.view_changes,
        consensus.sync_blocks,
        consensus.redirects,
        consensus.evidence
    ));
    out.push_str(&format!(
        "  \"byzantine\": {{ \"preset\": \"{}\", \"evidence\": {}, \"view_change_ms\": {}, \
         \"repair_blocks\": {}, \"repair_ms\": {}, \"cert_sign_us\": {}, \
         \"cert_verify_us\": {} }},\n",
        byzantine.preset,
        byzantine.evidence,
        byzantine.view_change_ms,
        byzantine.repair_blocks,
        byzantine.repair_ms,
        fmt_f64(byzantine.cert_sign_us),
        fmt_f64(byzantine.cert_verify_us)
    ));
    out.push_str("  \"parallel_exec\": [\n");
    for (i, s) in scaling.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", s.workload));
        out.push_str(&format!("      \"txs\": {},\n", s.txs));
        out.push_str("      \"points\": [\n");
        for (j, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"threads\": {}, \"groups\": {}, \"makespan_ms\": {}, \
                 \"model_tps\": {}, \"speedup_vs_1\": {} }}{}\n",
                p.threads,
                p.groups,
                fmt_f64(p.makespan_ms),
                fmt_f64(p.model_tps),
                fmt_f64(p.speedup_vs_1),
                if j + 1 == s.points.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == scaling.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"static_sched\": {{ \"txs\": {}, \"threads\": {}, \"occ_spec_runs\": {}, \
         \"static_spec_runs\": {}, \"occ_spec_cycles\": {}, \"plan_cycles\": {}, \
         \"occ_modeled_ms\": {}, \"static_modeled_ms\": {}, \"modeled_speedup\": {}, \
         \"roots_match\": {}, \"static_schedule\": {} }},\n",
        static_sched.txs,
        static_sched.threads,
        static_sched.occ_spec_runs,
        static_sched.static_spec_runs,
        static_sched.occ_spec_cycles,
        static_sched.plan_cycles,
        fmt_f64(static_sched.occ_modeled_ms),
        fmt_f64(static_sched.static_modeled_ms),
        fmt_f64(static_sched.modeled_speedup),
        static_sched.roots_match,
        static_sched.static_schedule
    ));
    out.push_str(&format!(
        "  \"evm\": {{ \"txs\": {}, \"evm_model_tps\": {}, \"vm_model_tps\": {}, \
         \"vm_vs_evm_speedup\": {}, \"mixed_occ_fallback\": {}, \"mixed_roots_match\": {}, \
         \"cross_call_ok\": {} }},\n",
        evm.txs,
        fmt_f64(evm.evm_model_tps),
        fmt_f64(evm.vm_model_tps),
        fmt_f64(evm.vm_vs_evm_speedup),
        evm.mixed_occ_fallback,
        evm.mixed_roots_match,
        evm.cross_call_ok
    ));
    // The pipelined-reactor section. `ran: false` (all-zero counters)
    // marks a run that skipped the bench — the schema keys are always
    // present so downstream parsers never branch on absence.
    let zero = PipelineReport::default();
    let (ran, p) = match pipeline {
        Some(p) => (true, p),
        None => (false, &zero),
    };
    out.push_str("  \"pipeline\": {\n");
    out.push_str(&format!("    \"ran\": {ran},\n"));
    out.push_str(&format!(
        "    \"idle_conns_target\": {}, \"idle_conns\": {}, \"active_conns\": {},\n",
        p.idle_conns_target, p.idle_conns, p.active_conns
    ));
    out.push_str(&format!(
        "    \"txs\": {}, \"accepted\": {}, \"busy\": {}, \"rejected\": {},\n",
        p.txs, p.accepted, p.busy, p.rejected
    ));
    out.push_str(&format!(
        "    \"wire_elapsed_s\": {}, \"wire_tps\": {}, \"model_tps\": {}, \
         \"model_ratio\": {},\n",
        fmt_f64(p.wire_elapsed_s),
        fmt_f64(p.wire_tps),
        fmt_f64(p.model_tps),
        fmt_f64(p.model_ratio)
    ));
    out.push_str(&format!(
        "    \"stage_occupancy\": {{ \"preverify\": {}, \"execute\": {}, \"commit\": {} }},\n",
        fmt_f64(p.preverify_occupancy),
        fmt_f64(p.execute_occupancy),
        fmt_f64(p.commit_occupancy)
    ));
    let hist_labels: Vec<String> = confide_storage::GROUP_BUCKETS
        .iter()
        .zip(p.group_hist.iter().chain(std::iter::repeat(&0)))
        .map(|(label, count)| format!("{{ \"bucket\": \"{label}\", \"count\": {count} }}"))
        .collect();
    out.push_str(&format!(
        "    \"group_commit\": {{ \"fsyncs\": {}, \"blocks\": {}, \"blocks_per_fsync\": {}, \
         \"max_group\": {}, \"hist\": [{}] }},\n",
        p.fsyncs,
        p.fsync_blocks,
        fmt_f64(p.blocks_per_fsync),
        p.max_group,
        hist_labels.join(", ")
    ));
    out.push_str(&format!("    \"durable_height\": {}\n", p.durable_height));
    out.push_str("  },\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"mode\": \"{}\",\n", r.mode));
        out.push_str(&format!("      \"confidential\": {},\n", r.confidential));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"txs_submitted\": {},\n", r.submitted));
        out.push_str(&format!("      \"txs_accepted\": {},\n", r.accepted));
        out.push_str(&format!("      \"busy_rejects\": {},\n", r.busy));
        out.push_str(&format!("      \"rejected\": {},\n", r.rejected));
        out.push_str(&format!("      \"retries\": {},\n", r.retries));
        out.push_str(&format!("      \"redirects\": {},\n", r.redirects));
        out.push_str(&format!(
            "      \"receipts_verified\": {},\n",
            r.receipts_verified
        ));
        // Rate per wire *attempt*: unique submissions plus resends —
        // `submitted` alone would overstate the rate now that retries of
        // the same wire hash are deduplicated out of it.
        out.push_str(&format!(
            "      \"busy_reject_rate\": {},\n",
            fmt_f64(r.busy as f64 / (r.submitted + r.retries).max(1) as f64)
        ));
        out.push_str(&format!("      \"elapsed_s\": {},\n", fmt_f64(r.elapsed_s)));
        out.push_str(&format!(
            "      \"throughput_tps\": {},\n",
            fmt_f64(r.throughput_tps)
        ));
        out.push_str(&format!(
            "      \"latency_ms\": {{ \"mean\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
            fmt_f64(r.latency_ms.mean),
            fmt_f64(r.latency_ms.p50),
            fmt_f64(r.latency_ms.p99),
            fmt_f64(r.latency_ms.max)
        ));
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_micros((1..=1000).map(|i| i * 1000).collect());
        assert!((s.p50 - 500.0).abs() <= 1.0);
        assert!((s.p99 - 990.0).abs() <= 1.0);
        assert!((s.max - 1000.0).abs() < f64::EPSILON);
        assert!((s.mean - 500.5).abs() < 0.01);
    }

    #[test]
    fn cert_microbench_reports_positive_costs() {
        let (sign_us, verify_us) = cert_microbench(4, 4);
        assert!(sign_us.is_finite() && sign_us > 0.0, "sign_us {sign_us}");
        assert!(
            verify_us.is_finite() && verify_us > 0.0,
            "verify_us {verify_us}"
        );
    }

    #[test]
    fn json_contains_required_schema_keys() {
        let report = LoadReport {
            mode: "closed".into(),
            threads: 4,
            ..LoadReport::default()
        };
        let scaling = ScalingReport {
            workload: "conflict_free".into(),
            txs: 16,
            points: vec![ScalingPoint {
                threads: 4,
                groups: 16,
                makespan_ms: 1.0,
                model_tps: 16_000.0,
                speedup_vs_1: 3.2,
            }],
        };
        let static_sched = StaticSchedReport {
            txs: 16,
            threads: 4,
            occ_spec_runs: 16,
            static_spec_runs: 0,
            occ_spec_cycles: 1_000_000,
            plan_cycles: 50_000,
            occ_modeled_ms: 0.5,
            static_modeled_ms: 0.3,
            modeled_speedup: 1.66,
            roots_match: true,
            static_schedule: true,
        };
        let pipeline = PipelineReport {
            idle_conns_target: 10_000,
            idle_conns: 9_000,
            active_conns: 900,
            txs: 3600,
            accepted: 3600,
            wire_elapsed_s: 2.0,
            wire_tps: 1800.0,
            model_tps: 2400.0,
            model_ratio: 1.33,
            preverify_occupancy: 1.2,
            execute_occupancy: 0.8,
            commit_occupancy: 0.3,
            fsyncs: 10,
            fsync_blocks: 25,
            blocks_per_fsync: 2.5,
            max_group: 4,
            group_hist: vec![1, 2, 3, 4, 0, 0],
            durable_height: 26,
            ..PipelineReport::default()
        };
        let evm = EvmReport {
            txs: 8,
            evm_model_tps: 4_000.0,
            vm_model_tps: 16_000.0,
            vm_vs_evm_speedup: 4.0,
            mixed_occ_fallback: true,
            mixed_roots_match: true,
            cross_call_ok: true,
        };
        let json = to_json(
            &[report],
            &[scaling],
            &static_sched,
            &evm,
            &crate::server::ServerConfig::default(),
            &RecoveryInfo {
                recover_ms: 12,
                recovered_blocks: 3,
                retries: 4,
                retries_exhausted: 0,
            },
            &ConsensusInfo {
                n: 4,
                tps: 120.0,
                view_changes: 1,
                sync_blocks: 7,
                redirects: 3,
                evidence: 2,
            },
            &ByzantineReport {
                preset: "equivocate".into(),
                evidence: 2,
                view_change_ms: 1400,
                repair_blocks: 9,
                repair_ms: 350,
                cert_sign_us: 14.0,
                cert_verify_us: 90.0,
            },
            Some(&pipeline),
        );
        for key in [
            "\"schema_version\": 7",
            "\"pipeline\"",
            "\"ran\": true",
            "\"idle_conns_target\"",
            "\"idle_conns\"",
            "\"active_conns\"",
            "\"wire_tps\"",
            "\"model_ratio\"",
            "\"stage_occupancy\"",
            "\"preverify\"",
            "\"execute\"",
            "\"commit\"",
            "\"group_commit\"",
            "\"fsyncs\"",
            "\"blocks_per_fsync\"",
            "\"max_group\"",
            "\"hist\"",
            "\"bucket\"",
            "\"durable_height\"",
            "\"consensus\"",
            "\"n\"",
            "\"view_changes\"",
            "\"sync_blocks\"",
            "\"redirects\"",
            "\"evidence\"",
            "\"byzantine\"",
            "\"preset\": \"equivocate\"",
            "\"view_change_ms\"",
            "\"repair_blocks\"",
            "\"repair_ms\"",
            "\"cert_sign_us\"",
            "\"cert_verify_us\"",
            "\"bench\"",
            "\"workloads\"",
            "\"mode\"",
            "\"txs_submitted\"",
            "\"busy_rejects\"",
            "\"receipts_verified\"",
            "\"throughput_tps\"",
            "\"p50\"",
            "\"p99\"",
            "\"busy_reject_rate\"",
            "\"parallel_exec\"",
            "\"threads\"",
            "\"model_tps\"",
            "\"speedup_vs_1\"",
            "\"exec_threads\"",
            "\"recovery\"",
            "\"recover_ms\"",
            "\"recovered_blocks\"",
            "\"retries\"",
            "\"retries_exhausted\"",
            "\"static_sched\"",
            "\"occ_spec_runs\"",
            "\"static_spec_runs\"",
            "\"plan_cycles\"",
            "\"modeled_speedup\"",
            "\"roots_match\"",
            "\"static_schedule\"",
            "\"evm\"",
            "\"evm_model_tps\"",
            "\"vm_model_tps\"",
            "\"vm_vs_evm_speedup\"",
            "\"mixed_occ_fallback\"",
            "\"mixed_roots_match\"",
            "\"cross_call_ok\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn static_sched_skips_speculation_and_preserves_the_root() {
        let r = run_static_sched(7).expect("static sched run");
        assert!(r.static_schedule, "static path must engage: {r:?}");
        assert_eq!(r.static_spec_runs, 0, "static path must not speculate");
        assert_eq!(r.occ_spec_runs, r.txs, "OCC speculates every tx");
        assert!(r.occ_spec_cycles > 0, "speculation work must be measured");
        assert!(r.roots_match, "replicas must seal identical state roots");
        assert!(
            r.modeled_speedup > 1.0,
            "skipping speculation must price faster: {r:?}"
        );
        // Deterministic: a second run reproduces the numbers bit-for-bit.
        let r2 = run_static_sched(7).expect("static sched rerun");
        assert_eq!(r.occ_spec_cycles, r2.occ_spec_cycles);
        assert_eq!(r.plan_cycles, r2.plan_cycles);
        assert!((r.modeled_speedup - r2.modeled_speedup).abs() < f64::EPSILON);
    }

    #[test]
    fn evm_bench_confirms_parity_and_the_architecture_gap() {
        let r = run_evm_bench(7).expect("evm bench run");
        assert!(
            r.mixed_occ_fallback,
            "mixed VM+EVM block must take the whole-block OCC fallback: {r:?}"
        );
        assert!(
            r.mixed_roots_match,
            "mixed block roots must be thread-count-invariant: {r:?}"
        );
        assert!(
            r.cross_call_ok,
            "CCL->EVM cross-engine call must verify end-to-end: {r:?}"
        );
        // Figure 10's direction: 256-bit words and word-granular memory
        // make the EVM strictly slower on the identical CCL program.
        assert!(
            r.vm_vs_evm_speedup > 1.0,
            "CONFIDE-VM must out-price the EVM: {r:?}"
        );
        // Deterministic: a rerun reproduces the modeled numbers exactly.
        let r2 = run_evm_bench(7).expect("evm bench rerun");
        assert!((r.evm_model_tps - r2.evm_model_tps).abs() < f64::EPSILON);
        assert!((r.vm_model_tps - r2.vm_model_tps).abs() < f64::EPSILON);
    }

    #[test]
    fn parallel_scaling_reproduces_the_paper_curve() {
        let reports = run_parallel_scaling(7).expect("scaling run");
        assert_eq!(reports.len(), 2);
        let free = &reports[0];
        assert_eq!(free.workload, "conflict_free");
        let at = |r: &ScalingReport, t: usize| {
            r.points
                .iter()
                .find(|p| p.threads == t)
                .expect("point")
                .clone()
        };
        assert_eq!(at(free, 1).groups, 16);
        assert!(
            at(free, 4).speedup_vs_1 >= 1.8,
            "conflict-free 4-thread speedup {} < 1.8",
            at(free, 4).speedup_vs_1
        );
        let grouped = &reports[1];
        assert_eq!(grouped.workload, "four_groups");
        assert_eq!(at(grouped, 4).groups, 4);
        // Figure-11 shape: no further improvement past the group count.
        assert!((at(grouped, 4).makespan_ms - at(grouped, 6).makespan_ms).abs() < 1e-12);
        assert!(at(grouped, 2).speedup_vs_1 > 1.5);
    }
}
