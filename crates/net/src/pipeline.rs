//! The three-stage block pipeline behind the reactor front end.
//!
//! ```text
//!  preverify workers          execute stage             commit stage
//!  ─────────────────          ─────────────             ────────────
//!  batch N+2:                 batch N+1:                batch N:
//!  dedup, claim,       ──►    linger-batch,      ──►    group fsync,
//!  envelope open +            execute_block_staged      release claims,
//!  sig verify                 (node write lock)         ordered replies
//!  (lock-free vs node)        [IngestRing]              [bounded queue]
//! ```
//!
//! The stages overlap: while batch N's WAL delta is being fsync'd, batch
//! N+1 executes under the node write lock and batch N+2 pre-verifies on
//! the worker pool — the exit-less request path of the in-enclave design
//! (requests cross stage boundaries through lock-free/bounded queues,
//! never through a per-request enclave exit).
//!
//! ## Durability (the PR-5 contract on the pipelined path)
//!
//! *No acked receipt may be lost; no transaction may execute twice.*
//!
//! 1. A waiter only hears `Committed` from the **commit stage**, strictly
//!    after its block's WAL delta was fsync'd as part of a group — same
//!    durable-commit point as the serial batcher, amortized over
//!    `group` blocks per `fsync`.
//! 2. The in-flight wire-hash claim of a transaction is held until
//!    **after** that fsync. A resubmission therefore sees either `Busy`
//!    (twin still in flight — not yet durable) or a committed-index hit
//!    that is provably durable: the claim-first order in
//!    [`handle_work`] means a successful claim implies the twin released,
//!    which implies its group fsync completed.
//! 3. Late duplicates caught in the execute stage are answered through
//!    the commit queue (reply-only items) so their replies also sequence
//!    after the twin's group fsync.

use crate::cluster::ClusterShared;
use crate::frame::Message;
use crate::reactor::{ConnToken, ReactorHandle, Work, WorkQueue};
use crate::server::{claim, release, validate, InFlight, Job, ReplyTo, ServerConfig, ServerStats};
use confide_core::keys::JoinOffer;
use confide_core::node::{ConfideNode, SchedMode, WalDelta};
use confide_core::tx::WireTx;
use confide_storage::{WalFile, GROUP_BUCKETS};
use confide_tee::IngestRing;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Live pipeline counters: per-stage busy time (for occupancy), the
/// group-commit histogram, and the durable height watermark. All fields
/// only ever increase; a bench snapshots them before/after its window.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Nanoseconds preverify workers spent handling requests (summed
    /// across the pool — divide by the worker count for per-thread
    /// occupancy).
    pub preverify_ns: AtomicU64,
    /// Nanoseconds the execute stage spent in dedup + block execution.
    pub execute_ns: AtomicU64,
    /// Nanoseconds the commit stage spent in fsync + reply dispatch.
    pub commit_ns: AtomicU64,
    /// Group fsyncs issued (0 when the server runs without a WAL).
    pub fsyncs: AtomicU64,
    /// Blocks made durable across all groups.
    pub fsync_blocks: AtomicU64,
    /// WAL bytes flushed across all groups.
    pub fsync_bytes: AtomicU64,
    /// Largest commit group observed (blocks in one fsync).
    pub max_group: AtomicU64,
    /// Group-size histogram; buckets are [`GROUP_BUCKETS`].
    pub group_hist: [AtomicU64; GROUP_BUCKETS.len()],
    /// Height of the last block whose WAL delta is on disk.
    pub durable_height: AtomicU64,
}

impl PipelineStats {
    /// Histogram bucket index for a group of `blocks` blocks.
    pub fn bucket(blocks: u64) -> usize {
        match blocks {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        }
    }

    /// Blocks per fsync so far (the amortization factor; ≥ 1.0 once any
    /// group committed).
    pub fn blocks_per_fsync(&self) -> f64 {
        let fsyncs = self.fsyncs.load(Ordering::Relaxed);
        if fsyncs == 0 {
            return 0.0;
        }
        self.fsync_blocks.load(Ordering::Relaxed) as f64 / fsyncs as f64
    }

    fn note_group(&self, blocks: u64, bytes: u64, synced: bool) {
        if synced {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.fsync_blocks.fetch_add(blocks, Ordering::Relaxed);
        self.fsync_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.max_group.fetch_max(blocks, Ordering::Relaxed);
        self.group_hist[PipelineStats::bucket(blocks)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Where validated submissions go: the single-node pipeline ring or the
/// cluster consensus driver's job queue.
pub(crate) enum Ingest {
    /// Single-node: the bounded MPSC ring into the execute stage.
    Ring(Arc<IngestRing<Job>>),
    /// Cluster: the bounded channel into `cluster_loop`.
    Cluster(SyncSender<Job>),
}

/// Server-side mirror of the node's committed wire-hash index,
/// maintained by the commit stage (inserts happen after the group fsync
/// and *before* the claim release, so a dedup hit here is provably
/// durable). Seeded at spawn from [`ConfideNode::committed_wire_entries`]
/// so resubmits of pre-restart commits dedup too. Exists so the
/// per-submission dedup check is a short mutexed map probe instead of a
/// `node.read()` that convoys behind block execution's write lock.
pub(crate) type DurableIndex = Arc<Mutex<HashMap<[u8; 32], (bool, Vec<u8>)>>>;

/// Everything a preverify worker needs, shared across the pool.
pub(crate) struct WorkerCtx {
    pub(crate) node: Arc<RwLock<ConfideNode>>,
    /// Direct engine handle: preverify must never take the node lock
    /// (execute holds it write-side for whole blocks).
    pub(crate) conf_engine: Arc<confide_core::engine::Engine>,
    /// Durable-commit dedup index (single-node pipeline mode only;
    /// cluster mode dedups against the node under consensus ordering).
    pub(crate) durable: DurableIndex,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) pipe: Arc<PipelineStats>,
    pub(crate) in_flight: InFlight,
    pub(crate) handle: ReactorHandle,
    pub(crate) work: Arc<WorkQueue>,
    pub(crate) ingest: Ingest,
    pub(crate) cluster: Option<Arc<ClusterShared>>,
    pub(crate) config: ServerConfig,
}

/// Worker thread body: drain this worker's shard of the reactor's work
/// queue until it stops (shard-per-worker keeps per-connection FIFO —
/// see [`WorkQueue`]).
pub(crate) fn preverify_worker(ctx: Arc<WorkerCtx>, shard: usize) {
    while let Some(work) = ctx.work.pop(shard) {
        let t0 = Instant::now();
        handle_work(&ctx, work);
        ctx.pipe
            .preverify_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Handle one offloaded request. Everything here may take the node
/// *read* lock; only the execute stage takes the write lock.
fn handle_work(ctx: &WorkerCtx, work: Work) {
    let Work {
        conn,
        seq,
        msg,
        attested,
    } = work;
    match msg {
        Message::SubmitTx(tx) => submit(ctx, conn, seq, tx, false),
        Message::SubmitTxWait(tx) => submit(ctx, conn, seq, tx, true),
        Message::GetReceipt(hash) => {
            let stored = ctx.node.read().expect("node lock").stored_receipt(&hash);
            let reply = match stored {
                Some(bytes) => Message::ReceiptIs(bytes),
                None => Message::NotFound,
            };
            ctx.handle.reply(conn, seq, reply);
        }
        Message::GetStatus => {
            let (height, state_root) = {
                let node = ctx.node.read().expect("node lock");
                (node.blocks.height(), node.state_root())
            };
            let status = match &ctx.cluster {
                Some(shared) => crate::frame::NodeStatus {
                    node_id: shared.node_id,
                    view: shared.view.load(Ordering::Relaxed),
                    leader: shared.leader.load(Ordering::Relaxed),
                    height,
                    state_root,
                    view_changes: shared.view_changes.load(Ordering::Relaxed),
                    sync_blocks: shared.sync_blocks.load(Ordering::Relaxed),
                    evidence: shared.evidence.load(Ordering::Relaxed),
                },
                None => crate::frame::NodeStatus {
                    node_id: 0,
                    view: 0,
                    leader: 0,
                    height,
                    state_root,
                    view_changes: 0,
                    sync_blocks: 0,
                    evidence: 0,
                },
            };
            ctx.handle.reply(conn, seq, Message::StatusIs(status));
        }
        Message::JoinRequest { eph_pk, report } => {
            if ctx.config.join_roots.is_empty() {
                ctx.handle
                    .reply(conn, seq, Message::Rejected("wire joins disabled".into()));
                return;
            }
            let offer = JoinOffer { eph_pk, report };
            // Each approval burns a unique seed: wrap_keys derives its
            // ephemeral secret and GCM nonce from it.
            let seed = ctx
                .config
                .join_seed
                .wrapping_add(ctx.stats.joins.fetch_add(1, Ordering::Relaxed));
            let node = ctx.node.read().expect("node lock");
            let mut approved = None;
            let mut last_err = String::from("no join roots configured");
            for root in &ctx.config.join_roots {
                match node.approve_join(
                    root,
                    &offer,
                    ctx.config.join_svn,
                    ctx.config.join_min_svn,
                    seed,
                ) {
                    Ok((blob, member_report)) => {
                        approved = Some(Message::JoinApprove {
                            blob,
                            member_report,
                        });
                        break;
                    }
                    Err(e) => last_err = e.to_string(),
                }
            }
            drop(node);
            match approved {
                // The joiner's quote verified against a consortium root:
                // the reactor marks the socket attested when it flushes
                // this reply.
                Some(reply) => ctx.handle.reply_attest(conn, seq, reply),
                None => ctx.handle.reply(
                    conn,
                    seq,
                    Message::Rejected(format!("join refused: {last_err}")),
                ),
            }
        }
        Message::StateSyncReq {
            from,
            max,
            have_height,
        } => {
            let reply = if attested && ctx.cluster.is_some() {
                crate::cluster::serve_state_sync(&ctx.node, from, max, have_height)
            } else {
                Message::Rejected("state sync requires an attested connection".into())
            };
            ctx.handle.reply(conn, seq, reply);
        }
        // The reactor only offloads the kinds above; anything else is a
        // protocol violation it already answered inline.
        other => {
            ctx.handle.reply_close(
                conn,
                seq,
                Message::Rejected(format!("unexpected message kind {:#04x}", other.kind())),
            );
        }
    }
}

/// Validate + route one submission.
fn submit(ctx: &WorkerCtx, conn: ConnToken, seq: u64, tx: WireTx, wait: bool) {
    let wire_hash = tx.wire_hash();
    let reply_to = if wait {
        ReplyTo::Conn {
            handle: ctx.handle.clone(),
            conn,
            seq,
        }
    } else {
        ReplyTo::Fire
    };
    match &ctx.ingest {
        // Cluster mode keeps the threaded path's order (dedup → redirect
        // → claim → validate → enqueue): `cluster_loop` fsyncs inside
        // `execute` and releases claims right after, so a committed-index
        // hit here is already durable.
        Ingest::Cluster(job_tx) => {
            let committed = ctx
                .node
                .read()
                .expect("node lock")
                .committed_by_wire(&wire_hash);
            if let Some((sealed, receipt)) = committed {
                ctx.stats.deduped.fetch_add(1, Ordering::Relaxed);
                let reply = if wait {
                    Message::Committed { sealed, receipt }
                } else {
                    Message::Accepted(wire_hash)
                };
                ctx.handle.reply(conn, seq, reply);
                return;
            }
            if let Some(shared) = ctx.cluster.as_ref().filter(|s| !s.is_leader()) {
                ctx.handle.reply(
                    conn,
                    seq,
                    Message::NotPrimary {
                        leader: shared.leader_addr(),
                    },
                );
                return;
            }
            if !claim(&ctx.in_flight, wire_hash) {
                ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                ctx.handle.reply(conn, seq, Message::Busy);
                return;
            }
            match validate(&ctx.conf_engine, &tx) {
                Err(reason) => {
                    release(&ctx.in_flight, &wire_hash);
                    ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    ctx.handle.reply(conn, seq, Message::Rejected(reason));
                }
                Ok(()) => match job_tx.try_send(Job {
                    tx,
                    wire_hash,
                    reply: reply_to,
                }) {
                    Ok(()) => {
                        ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        if !wait {
                            ctx.handle.reply(conn, seq, Message::Accepted(wire_hash));
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        release(&ctx.in_flight, &wire_hash);
                        ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                        ctx.handle.reply(conn, seq, Message::Busy);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        release(&ctx.in_flight, &wire_hash);
                        ctx.handle.reply(
                            conn,
                            seq,
                            Message::Rejected("server shutting down".into()),
                        );
                    }
                },
            }
        }
        // Pipeline mode claims FIRST: the commit stage holds claims
        // until after the group fsync, so claim-success ⇒ any twin
        // released ⇒ its fsync completed ⇒ a committed-index hit below
        // is durable. (Checking committed first — the threaded order —
        // would open a window where a not-yet-fsync'd commit is acked.)
        Ingest::Ring(ring) => {
            if !claim(&ctx.in_flight, wire_hash) {
                ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                ctx.handle.reply(conn, seq, Message::Busy);
                return;
            }
            let committed = ctx
                .durable
                .lock()
                .expect("durable index lock")
                .get(&wire_hash)
                .cloned();
            if let Some((sealed, receipt)) = committed {
                release(&ctx.in_flight, &wire_hash);
                ctx.stats.deduped.fetch_add(1, Ordering::Relaxed);
                let reply = if wait {
                    Message::Committed { sealed, receipt }
                } else {
                    Message::Accepted(wire_hash)
                };
                ctx.handle.reply(conn, seq, reply);
                return;
            }
            if let Err(reason) = validate(&ctx.conf_engine, &tx) {
                release(&ctx.in_flight, &wire_hash);
                ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
                ctx.handle.reply(conn, seq, Message::Rejected(reason));
                return;
            }
            match ring.try_push(Job {
                tx,
                wire_hash,
                reply: reply_to,
            }) {
                Ok(()) => {
                    ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    if !wait {
                        ctx.handle.reply(conn, seq, Message::Accepted(wire_hash));
                    }
                }
                Err(_) => {
                    release(&ctx.in_flight, &wire_hash);
                    ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                    ctx.handle.reply(conn, seq, Message::Busy);
                }
            }
        }
    }
}

/// One unit crossing the execute → commit boundary.
pub(crate) enum CommitItem {
    /// A sealed block: jobs + their replies (index-aligned) + the WAL
    /// byte delta the block appended.
    Block {
        jobs: Vec<Job>,
        replies: Vec<Message>,
        delta: WalDelta,
        accepted: u64,
    },
    /// Reply-only passthrough (late dedups, commit-level failures):
    /// routed through the commit queue so delivery — and the claim
    /// release — sequences after the group fsync of anything ahead.
    Replies(Vec<(Job, Message)>),
}

// Park slices are coarse on purpose: on a box with few cores the
// execute stage parking in tens-of-microsecond slices monopolizes a
// core just to poll an empty ring — starving the preverify workers
// that would fill it. Millisecond slices cost nothing against the
// linger window and hand the core back to the producers.
const EXEC_IDLE_PARK: Duration = Duration::from_millis(1);
const EXEC_LINGER_PARK: Duration = Duration::from_millis(5);

/// Execute stage: drain the ingest ring into linger-batched blocks,
/// execute each under the node write lock, and push the staged WAL delta
/// plus replies to the commit stage. The bounded commit queue
/// (`pipeline_depth`) is the only backpressure between the stages.
pub(crate) fn execute_loop(
    node: Arc<RwLock<ConfideNode>>,
    ring: Arc<IngestRing<Job>>,
    commit_tx: SyncSender<CommitItem>,
    stats: Arc<ServerStats>,
    pipe: Arc<PipelineStats>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    // Never spawn more per-block exec threads than the machine has
    // cores: past that point the scoped spawns are pure overhead paid on
    // every block.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(usize::MAX);
    let threads = config.exec_threads.max(1).min(cores);
    // Adaptive linger: the batching window tracks the previous block's
    // execution time (floored at the configured linger, capped at 50x).
    // When per-block overhead dominates — slow cores, tiny blocks — the
    // window stretches so arrivals amortize it; when execution is fast
    // the window stays at the configured floor and adds no latency.
    let mut linger = config.batch_linger;
    loop {
        let Some(first) = ring.pop() else {
            if stop.load(Ordering::SeqCst) && ring.is_empty() {
                return; // dropping commit_tx drains the commit stage
            }
            std::thread::park_timeout(EXEC_IDLE_PARK);
            continue;
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + linger;
        while batch.len() < config.max_batch {
            match ring.pop() {
                Some(job) => batch.push(job),
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::park_timeout((deadline - now).min(EXEC_LINGER_PARK));
                }
            }
        }
        let t0 = Instant::now();
        // Late dedup: a resubmission can race past the worker's check and
        // sit in the ring behind the block that commits its twin. Route
        // the stored answer through the commit queue (not straight to the
        // reactor) so it delivers after the twin's group fsync.
        let mut dedup: Vec<(Job, Message)> = Vec::new();
        let mut fresh: Vec<Job> = Vec::with_capacity(batch.len());
        {
            let node = node.read().expect("node lock");
            for job in batch {
                match node.committed_by_wire(&job.wire_hash) {
                    Some((sealed, receipt)) => {
                        stats.deduped.fetch_add(1, Ordering::Relaxed);
                        dedup.push((job, Message::Committed { sealed, receipt }));
                    }
                    None => fresh.push(job),
                }
            }
        }
        if !dedup.is_empty() && commit_tx.send(CommitItem::Replies(dedup)).is_err() {
            return;
        }
        if fresh.is_empty() {
            pipe.execute_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            continue;
        }
        let txs: Vec<WireTx> = fresh.iter().map(|j| j.tx.clone()).collect();
        let result =
            node.write()
                .expect("node lock")
                .execute_block_staged(&txs, threads, SchedMode::Static);
        linger = t0
            .elapsed()
            .clamp(config.batch_linger, config.batch_linger * 50);
        pipe.execute_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let item = match result {
            Ok((res, delta)) => {
                let mut replies = Vec::with_capacity(fresh.len());
                for outcome in &res.outcomes {
                    replies.push(match outcome {
                        Ok((receipt, sealed)) => Message::Committed {
                            sealed: sealed.is_some(),
                            receipt: sealed.clone().unwrap_or_else(|| receipt.encode()),
                        },
                        Err(e) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Message::Rejected(e.to_string())
                        }
                    });
                }
                CommitItem::Block {
                    jobs: fresh,
                    replies,
                    delta,
                    accepted: res.accepted() as u64,
                }
            }
            Err(e) => {
                // Commit-level failure: every job learns, via the commit
                // queue so ordering guarantees hold.
                let msg = format!("block commit failed: {e}");
                stats
                    .rejected
                    .fetch_add(fresh.len() as u64, Ordering::Relaxed);
                CommitItem::Replies(
                    fresh
                        .into_iter()
                        .map(|job| (job, Message::Rejected(msg.clone())))
                        .collect(),
                )
            }
        };
        if commit_tx.send(item).is_err() {
            return;
        }
    }
}

/// Commit stage: drain whatever the execute stage has ready, fsync all
/// pending WAL deltas with **one** `sync_all` (group commit), then — and
/// only then — release in-flight claims and dispatch replies. Exits when
/// the execute stage drops its sender.
pub(crate) fn commit_loop(
    rx: Receiver<CommitItem>,
    mut wal: Option<WalFile>,
    stats: Arc<ServerStats>,
    pipe: Arc<PipelineStats>,
    in_flight: InFlight,
    durable: DurableIndex,
    config: ServerConfig,
) {
    while let Ok(first) = rx.recv() {
        let mut items = vec![first];
        while let Ok(item) = rx.try_recv() {
            items.push(item);
        }
        let t0 = Instant::now();
        let deltas: Vec<&[u8]> = items
            .iter()
            .filter_map(|i| match i {
                CommitItem::Block { delta, .. } => Some(delta.bytes.as_slice()),
                CommitItem::Replies(_) => None,
            })
            .collect();
        let group = deltas.len() as u64;
        if group > 0 {
            let bytes: u64 = deltas.iter().map(|d| d.len() as u64).sum();
            if let Some(w) = wal.as_mut() {
                w.commit_group(&deltas).expect("wal group commit");
            }
            pipe.note_group(group, bytes, wal.is_some());
            let mut new_blocks = 0u64;
            for item in &items {
                if let CommitItem::Block {
                    delta, accepted, ..
                } = item
                {
                    new_blocks += 1;
                    stats.committed.fetch_add(*accepted, Ordering::Relaxed);
                    pipe.durable_height
                        .fetch_max(delta.height, Ordering::Relaxed);
                }
            }
            stats.blocks.fetch_add(new_blocks, Ordering::Relaxed);
            // Chaos hook: die after the durable-commit point (group
            // fsync) but before any acknowledgement or claim release —
            // the worst crash window, now group-wide.
            if let Some(limit) = config.crash_after {
                if stats.blocks.load(Ordering::Relaxed) >= limit {
                    eprintln!("confide-commit: crash-after hook firing at block {limit}");
                    std::process::exit(101);
                }
            }
        }
        // Durable: publish to the dedup index, release claims, then
        // answer. Per job the order is index-insert → release → reply:
        // a resubmitter whose claim succeeds must already see the index
        // entry (the claim-first proof in the module docs).
        let index = |job: &Job, reply: &Message, durable: &DurableIndex| {
            if let Message::Committed { sealed, receipt } = reply {
                durable
                    .lock()
                    .expect("durable index lock")
                    .insert(job.wire_hash, (*sealed, receipt.clone()));
            }
        };
        for item in items {
            match item {
                CommitItem::Block { jobs, replies, .. } => {
                    for (job, reply) in jobs.into_iter().zip(replies) {
                        index(&job, &reply, &durable);
                        release(&in_flight, &job.wire_hash);
                        job.reply.send(reply, &stats);
                    }
                }
                CommitItem::Replies(list) => {
                    for (job, reply) in list {
                        index(&job, &reply, &durable);
                        release(&in_flight, &job.wire_hash);
                        job.reply.send(reply, &stats);
                    }
                }
            }
        }
        pipe.commit_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_buckets_cover_the_histogram() {
        assert_eq!(PipelineStats::bucket(1), 0);
        assert_eq!(PipelineStats::bucket(2), 1);
        assert_eq!(PipelineStats::bucket(3), 2);
        assert_eq!(PipelineStats::bucket(4), 2);
        assert_eq!(PipelineStats::bucket(5), 3);
        assert_eq!(PipelineStats::bucket(8), 3);
        assert_eq!(PipelineStats::bucket(9), 4);
        assert_eq!(PipelineStats::bucket(16), 4);
        assert_eq!(PipelineStats::bucket(17), 5);
        assert_eq!(PipelineStats::bucket(1000), 5);
        assert_eq!(GROUP_BUCKETS.len(), 6);
    }

    #[test]
    fn blocks_per_fsync_amortizes() {
        let p = PipelineStats::default();
        p.note_group(1, 100, true);
        p.note_group(4, 400, true);
        p.note_group(3, 300, true);
        assert!((p.blocks_per_fsync() - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.max_group.load(Ordering::Relaxed), 4);
        assert_eq!(p.group_hist[0].load(Ordering::Relaxed), 1);
        assert_eq!(p.group_hist[2].load(Ordering::Relaxed), 2);
    }
}
