//! # confide-net
//!
//! The zero-dependency networked node runtime: everything needed to put a
//! [`confide_core::node::ConfideNode`] behind a real TCP socket and drive
//! it with real clients, while keeping PR 1's hermetic std-only build.
//!
//! Layers:
//!
//! * [`frame`] — length-prefixed frame codec + the T-Protocol wire
//!   message set (submit envelope-sealed transactions, poll sealed
//!   receipts, fetch `pk_tx` and its attestation report), with a version
//!   byte and a max-frame guard. Typed errors, no panicking parser.
//! * [`server`] — [`server::NodeServer`]: a single-threaded nonblocking
//!   reactor multiplexing every connection (adaptive idle backoff,
//!   ordered reply sequencing, bounded write buffers), a preverify
//!   worker pool, and a three-stage block pipeline — preverify ∥
//!   execute ∥ group-commit fsync. Every queue is bounded; overflow is
//!   surfaced to the submitter as a typed `Busy` response — never a
//!   silent drop. Configuration is validated through
//!   [`server::ServerConfig::builder`].
//! * [`client`] — [`client::Conn`] (framed transport) and the unified
//!   [`client::Client`]: a pooled, retrying, redirect-chasing handle
//!   configured by [`client::ClientConfig`] that seals envelopes through
//!   the *same* [`confide_core::seal_signed_tx`] path as the in-process
//!   client. (The former `Gateway` and connect-style `Client` remain as
//!   deprecated forwarders.)
//! * [`error`] — the consolidated taxonomy: every public client call
//!   returns [`error::Error`] with a typed [`error::ErrorKind`] and the
//!   full `source()` chain preserved.
//! * [`loadgen`] — open/closed-loop workload driver behind the
//!   `confide-loadgen` binary; emits `results/BENCH_net.json`.
//! * [`fault`] — [`fault::FaultProxy`]: a seeded fault-injecting TCP
//!   relay (drop/delay/duplicate/truncate/bit-flip/force-close) for
//!   chaos and fuzz tests; deterministic per seed.
//!
//! ## Threat model
//!
//! The transport adds **no** confidentiality of its own — deliberately.
//! The server (and any network middlebox) is untrusted in CONFIDE's model
//! (§3.3): transaction bodies cross the wire only inside T-Protocol
//! envelopes sealed to the enclave key `pk_tx`, receipts only sealed
//! under the one-time `k_tx`, and clients can demand an attestation
//! report binding `pk_tx` to the CS-enclave build before trusting it.
//! The loopback sniffer test (`tests/e2e.rs`) captures every frame of a
//! live session and asserts no plaintext payload or receipt bytes appear.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod demo;
pub mod error;
pub mod fault;
pub mod frame;
pub mod loadgen;
mod pipeline;
mod reactor;
pub mod server;

#[allow(deprecated)]
pub use client::Gateway;
pub use client::{Client, ClientConfig, Conn, NetError, RetryPolicy, RetryStats};
pub use cluster::{ByzantinePreset, ClusterConfig, ClusterShared};
pub use error::{Error, ErrorKind};
pub use fault::{FaultPlan, FaultProxy, FaultStats};
pub use frame::{FrameError, Message, NodeStatus, DEFAULT_MAX_FRAME, WIRE_VERSION};
pub use pipeline::PipelineStats;
pub use server::{NodeServer, ServerConfig, ServerConfigBuilder, ServerStats};
