//! The demo workload shared by `confide-node`, `confide-loadgen`, the
//! smoke test in `scripts/check.sh` and the e2e tests: one confidential
//! balance contract on a freshly provisioned node.

use confide_core::engine::{EngineConfig, VmKind};
use confide_core::keys::NodeKeys;
use confide_core::node::ConfideNode;
use confide_crypto::HmacDrbg;
use confide_tee::platform::TeePlatform;

/// Address of the confidential demo contract.
pub const DEMO_CONTRACT: [u8; 32] = [0x42; 32];

/// Address of the *public* demo contract: the same ledger code deployed
/// without confidentiality, so mixed public/confidential streams exercise
/// both engines (and both block overlays) in one block.
pub const DEMO_PUBLIC_CONTRACT: [u8; 32] = [0x43; 32];

/// Address of the confidential **EVM** demo contract: the same ledger
/// compiled by `confide_lang`'s EVM backend, so wire traffic can target
/// either engine and mixed VM+EVM blocks form on every demo node.
pub const DEMO_EVM_CONTRACT: [u8; 32] = [0x44; 32];

/// Address of the confidential cross-engine forwarder: a CONFIDE-VM
/// contract whose `main` relays its input to [`DEMO_EVM_CONTRACT`]
/// through the SDM's `call_contract` seam — a CCL→EVM call inside one
/// enclave transaction.
pub const DEMO_CROSS_CONTRACT: [u8; 32] = [0x45; 32];

/// The demo CCL contract: a per-account balance ledger (the same shape as
/// the core test contract, so wire-level numbers are comparable with the
/// in-process ones).
pub const DEMO_CCL: &str = r#"
    export fn main() {
        let who: bytes = json_get(input(), b"to");
        let amt: int = json_get_int(input(), b"amount");
        let key: bytes = concat(b"bal:", who);
        let bal: int = atoi(storage_get(key));
        storage_set(key, itoa(bal + amt));
        ret(itoa(bal + amt));
    }
"#;

/// The demo node's deterministic TEE platform for `seed` — split out so a
/// restarted process can rebuild "the same machine" and re-obtain its keys
/// (sealed-blob unseal or wire rejoin) separately from the node bootstrap.
pub fn demo_platform(seed: u64) -> std::sync::Arc<TeePlatform> {
    TeePlatform::new(seed, seed)
}

/// The demo node's deterministic consortium secrets for `seed`.
pub fn demo_keys(seed: u64) -> NodeKeys {
    let mut rng = HmacDrbg::from_u64(seed);
    NodeKeys::generate(&mut rng)
}

/// The deterministic demo bootstrap on an explicit platform + keys: the
/// crash-recovery path re-runs exactly this (same genesis deploys) before
/// replaying its WAL, with keys that came from sealed storage or a wire
/// rejoin instead of [`demo_keys`].
pub fn demo_node_with(
    platform: std::sync::Arc<TeePlatform>,
    keys: NodeKeys,
    seed: u64,
) -> ConfideNode {
    let node = ConfideNode::new(platform, keys, EngineConfig::default(), seed);
    let code = confide_lang::build_vm(DEMO_CCL).expect("demo contract compiles");
    node.deploy(DEMO_CONTRACT, &code, VmKind::ConfideVm, true)
        .expect("demo contract deploys");
    node.deploy(DEMO_PUBLIC_CONTRACT, &code, VmKind::ConfideVm, false)
        .expect("public demo contract deploys");
    let evm_code = confide_lang::build_evm(DEMO_CCL).expect("EVM demo contract compiles");
    node.deploy(DEMO_EVM_CONTRACT, &evm_code, VmKind::Evm, true)
        .expect("EVM demo contract deploys");
    let cross_src = confide_lang::cross_call_source(&DEMO_EVM_CONTRACT);
    let cross_code = confide_lang::build_vm(&cross_src).expect("forwarder compiles");
    node.deploy(DEMO_CROSS_CONTRACT, &cross_code, VmKind::ConfideVm, true)
        .expect("cross-engine forwarder deploys");
    node
}

/// Build a node with deterministic keys (seeded from `seed`) and the demo
/// contract deployed confidentially.
pub fn demo_node(seed: u64) -> ConfideNode {
    demo_node_with(demo_platform(seed), demo_keys(seed), seed)
}

/// Deterministic TEE platform of cluster member `node_id` under
/// consortium seed `cluster_seed`: distinct per node (each member quotes
/// under its own attestation root) yet computable by every member without
/// communication, so the peer root table needs no exchange protocol.
pub fn cluster_platform(cluster_seed: u64, node_id: u32) -> std::sync::Arc<TeePlatform> {
    let mut x = cluster_seed ^ 0x0063_6c75_7374_6572; // "cluster"
    x = x.wrapping_add((node_id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    demo_platform(x)
}

/// The demo consortium node for cluster member `node_id`: **shared**
/// consortium keys and node seed (every member's execution, receipts and
/// WAL bytes are identical — the determinism StateSync's byte cursors
/// rely on), on the member's own per-node platform.
pub fn demo_cluster_node(cluster_seed: u64, node_id: u32) -> ConfideNode {
    demo_node_with(
        cluster_platform(cluster_seed, node_id),
        demo_keys(cluster_seed),
        cluster_seed,
    )
}

/// Demo invocation arguments for logical client `id`, iteration `n`.
pub fn demo_args(id: usize, n: usize) -> Vec<u8> {
    format!(r#"{{"to":"user{id}","amount":{}}}"#, (n % 97) + 1).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_node_builds_and_serves_pk_tx() {
        let node = demo_node(7);
        assert_ne!(node.pk_tx(), [0u8; 32]);
        assert!(node.confidential_engine.has_contract(&DEMO_CONTRACT));
        assert!(node.public_engine.has_contract(&DEMO_PUBLIC_CONTRACT));
        assert!(node.confidential_engine.has_contract(&DEMO_EVM_CONTRACT));
        assert!(node.confidential_engine.has_contract(&DEMO_CROSS_CONTRACT));
    }
}
