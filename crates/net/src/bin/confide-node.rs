//! `confide-node` — put the demo node behind a real TCP socket.
//!
//! ```text
//! confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N]
//!              [--exec-threads N] [--wal PATH] [--crash-after N]
//!              [--svn N] [--min-svn N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (`--port 0`, the default, picks an ephemeral
//! port), prints exactly one `LISTENING <addr>` line to stdout (the
//! smoke test in `scripts/check.sh` captures it) and serves until
//! killed.
//!
//! ## Crash-safe lifecycle (`--wal PATH`)
//!
//! With `--wal` the batcher fsyncs every block's WAL record group to
//! `PATH` before acknowledging it, and the node's consortium keys are
//! kept TEE-sealed at `PATH.keys` (SVN-versioned — `--min-svn` refuses
//! rollback to stale blobs). On restart the process unseals its keys,
//! re-runs the deterministic demo bootstrap, replays `PATH` (discarding
//! any torn tail), verifies the recovered state root against the last
//! durable header, and prints one machine-readable line:
//!
//! ```text
//! RECOVERED blocks=<n> height=<h> torn=<bytes> ms=<elapsed>
//! ```
//!
//! `--crash-after N` kills the process (exit 101) right after block `N`
//! is durable but **before** any client hears about it — the worst-case
//! crash window the chaos tests exercise.

use confide_core::keys::{seal_node_keys, unseal_node_keys};
use confide_net::demo::{demo_keys, demo_node_with, demo_platform};
use confide_net::{NodeServer, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N] \
         [--exec-threads N] [--wal PATH] [--crash-after N] [--svn N] [--min-svn N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("confide-node: bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut port: u16 = 0;
    let mut seed: u64 = 7;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", args.next()),
            "--seed" => seed = parse("--seed", args.next()),
            "--max-batch" => config.max_batch = parse("--max-batch", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--exec-threads" => config.exec_threads = parse("--exec-threads", args.next()),
            "--wal" => config.wal_path = Some(parse::<PathBuf>("--wal", args.next())),
            "--crash-after" => config.crash_after = Some(parse("--crash-after", args.next())),
            "--svn" => config.join_svn = parse("--svn", args.next()),
            "--min-svn" => config.join_min_svn = parse("--min-svn", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("confide-node: unknown flag {other}");
                usage();
            }
        }
    }

    // Rebuild "the same machine": the TEE platform is deterministic in
    // the seed; the consortium keys come from the sealed blob when one
    // survives, else are provisioned fresh and sealed for next time.
    let platform = demo_platform(seed);
    let (svn, min_svn) = (config.join_svn, config.join_min_svn);
    let keys = match config.wal_path.as_ref().map(|p| sealed_keys_path(p)) {
        Some(kp) if kp.exists() => {
            let blob = std::fs::read(&kp).unwrap_or_else(|e| {
                eprintln!(
                    "confide-node: cannot read sealed keys {}: {e}",
                    kp.display()
                );
                std::process::exit(1);
            });
            match unseal_node_keys(&platform, svn, min_svn, &blob) {
                Ok(keys) => {
                    eprintln!("confide-node: unsealed node keys from {}", kp.display());
                    keys
                }
                Err(e) => {
                    eprintln!("confide-node: sealed keys refused ({e}); a live member must re-provision via the wire join");
                    std::process::exit(1);
                }
            }
        }
        maybe_path => {
            let keys = demo_keys(seed);
            if let Some(kp) = maybe_path {
                match seal_node_keys(&platform, svn, &keys, seed ^ 0x7365616c) {
                    Ok(blob) => {
                        if let Err(e) = std::fs::write(&kp, &blob) {
                            eprintln!("confide-node: cannot seal keys to {}: {e}", kp.display());
                            std::process::exit(1);
                        }
                        eprintln!("confide-node: sealed node keys to {}", kp.display());
                    }
                    Err(e) => {
                        eprintln!("confide-node: sealing failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            keys
        }
    };

    let mut node = demo_node_with(platform.clone(), keys, seed);
    // This node trusts its own platform root for wire rejoins (the demo
    // consortium is rooted in one deterministic platform registry).
    config.join_roots = vec![platform.attestation_public_key()];

    if let Some(wal) = config.wal_path.as_ref() {
        if wal.exists() {
            let log = std::fs::read(wal).unwrap_or_else(|e| {
                eprintln!("confide-node: cannot read WAL {}: {e}", wal.display());
                std::process::exit(1);
            });
            if !log.is_empty() {
                let t0 = Instant::now();
                match node.recover_from_wal(&log) {
                    Ok(rep) => {
                        // Machine-readable, like LISTENING: the chaos
                        // harness parses this line.
                        println!(
                            "RECOVERED blocks={} height={} torn={} ms={}",
                            rep.blocks_replayed,
                            rep.height,
                            rep.torn_bytes,
                            t0.elapsed().as_millis()
                        );
                    }
                    Err(e) => {
                        eprintln!("confide-node: WAL recovery failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    let server = match NodeServer::spawn(node, ("127.0.0.1", port), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("confide-node: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The LISTENING line is the machine-readable part of the contract:
    // scripts and tests parse it to learn the ephemeral port.
    println!("LISTENING {}", server.addr());
    eprintln!(
        "confide-node: demo contract {} deployed confidentially; ctrl-c to stop",
        hex_prefix(&confide_net::demo::DEMO_CONTRACT)
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `<wal>.keys` — the sealed-blob sidecar next to the WAL file.
fn sealed_keys_path(wal: &std::path::Path) -> PathBuf {
    let mut os = wal.as_os_str().to_os_string();
    os.push(".keys");
    PathBuf::from(os)
}

fn hex_prefix(b: &[u8; 32]) -> String {
    b[..4].iter().map(|x| format!("{x:02x}")).collect()
}
