//! `confide-node` — put the demo node behind a real TCP socket.
//!
//! ```text
//! confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N]
//!              [--exec-threads N] [--wal PATH] [--crash-after N]
//!              [--svn N] [--min-svn N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (`--port 0`, the default, picks an ephemeral
//! port), prints exactly one `LISTENING <addr>` line to stdout (the
//! smoke test in `scripts/check.sh` captures it) and serves until
//! killed.
//!
//! ## Crash-safe lifecycle (`--wal PATH`)
//!
//! With `--wal` the batcher fsyncs every block's WAL record group to
//! `PATH` before acknowledging it, and the node's consortium keys are
//! kept TEE-sealed at `PATH.keys` (SVN-versioned — `--min-svn` refuses
//! rollback to stale blobs). On restart the process unseals its keys,
//! re-runs the deterministic demo bootstrap, replays `PATH` (discarding
//! any torn tail), verifies the recovered state root against the last
//! durable header, and prints one machine-readable line:
//!
//! ```text
//! RECOVERED blocks=<n> height=<h> torn=<bytes> ms=<elapsed>
//! ```
//!
//! A WAL whose committed *prefix* is corrupt (bit rot, partial sector
//! write) no longer kills the process: the node truncates back to the
//! longest replayable prefix — preferring the last height covered by a
//! verified quorum certificate from the `PATH.certs` sidecar — prints a
//! `REPAIRED height=<h> dropped=<bytes>` line, and rejoins the cluster,
//! which backfills the lost suffix through certificate-verified state
//! sync. Equivocation evidence persists at `PATH.evidence`.
//!
//! `--crash-after N` kills the process (exit 101) right after block `N`
//! is durable but **before** any client hears about it — the worst-case
//! crash window the chaos tests exercise.
//!
//! `--byzantine PRESET` (cluster mode only) runs this member as a
//! scripted attacker: `equivocate`, `conflicting-vote`,
//! `corrupt-proposal` or `silent-leader`. The chaos e2e tests drive an
//! honest majority against one such node.

use confide_core::keys::{seal_node_keys, unseal_node_keys};
use confide_net::cluster::{cert_sidecar_path, ByzantinePreset};
use confide_net::demo::{cluster_platform, demo_keys, demo_node_with, demo_platform};
use confide_net::{ClusterConfig, NodeServer, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N] \
         [--exec-threads N] [--wal PATH] [--crash-after N] [--svn N] [--min-svn N] \
         [--node-id N --peers HOST:PORT,.. [--cluster-keys SEED] [--byzantine PRESET]]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("confide-node: bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut port: u16 = 0;
    let mut seed: u64 = 7;
    let mut node_id: Option<u32> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut cluster_keys: Option<u64> = None;
    let mut byzantine: Option<ByzantinePreset> = None;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", args.next()),
            "--seed" => seed = parse("--seed", args.next()),
            "--max-batch" => config.max_batch = parse("--max-batch", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--exec-threads" => config.exec_threads = parse("--exec-threads", args.next()),
            "--wal" => config.wal_path = Some(parse::<PathBuf>("--wal", args.next())),
            "--crash-after" => config.crash_after = Some(parse("--crash-after", args.next())),
            "--svn" => config.join_svn = parse("--svn", args.next()),
            "--min-svn" => config.join_min_svn = parse("--min-svn", args.next()),
            "--node-id" => node_id = Some(parse("--node-id", args.next())),
            "--peers" => {
                let list: String = parse("--peers", args.next());
                peers = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--cluster-keys" => cluster_keys = Some(parse("--cluster-keys", args.next())),
            "--byzantine" => byzantine = Some(parse("--byzantine", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("confide-node: unknown flag {other}");
                usage();
            }
        }
    }

    // Cluster mode: `--peers` lists every member's advertised address
    // indexed by node id (this node's own entry included). All members
    // share the consortium seed (`--cluster-keys`, defaulting to
    // `--seed`) — same keys, same deterministic execution — while each
    // quotes from its own per-node platform.
    let cluster = match (node_id, peers.is_empty()) {
        (Some(id), false) => {
            if (id as usize) >= peers.len() {
                eprintln!(
                    "confide-node: --node-id {id} out of range for {} peers",
                    peers.len()
                );
                usage();
            }
            let mut c = ClusterConfig::demo(id, peers.clone(), cluster_keys.unwrap_or(seed));
            if let Some(preset) = byzantine {
                eprintln!("confide-node: running node {id} with byzantine preset {preset:?}");
                c.byzantine = Some(preset);
            }
            Some(c)
        }
        (None, false) | (Some(_), true) => {
            eprintln!("confide-node: --node-id and --peers must be given together");
            usage();
        }
        (None, true) => {
            if byzantine.is_some() {
                eprintln!("confide-node: --byzantine requires cluster mode (--node-id/--peers)");
                usage();
            }
            None
        }
    };

    // Rebuild "the same machine": the TEE platform is deterministic in
    // the seed; the consortium keys come from the sealed blob when one
    // survives, else are provisioned fresh and sealed for next time.
    let boot_seed = match &cluster {
        Some(_) => cluster_keys.unwrap_or(seed),
        None => seed,
    };
    let platform = match &cluster {
        Some(c) => cluster_platform(boot_seed, c.node_id),
        None => demo_platform(seed),
    };
    let (svn, min_svn) = (config.join_svn, config.join_min_svn);
    let keys = match config.wal_path.as_ref().map(|p| sealed_keys_path(p)) {
        Some(kp) if kp.exists() => {
            let blob = std::fs::read(&kp).unwrap_or_else(|e| {
                eprintln!(
                    "confide-node: cannot read sealed keys {}: {e}",
                    kp.display()
                );
                std::process::exit(1);
            });
            match unseal_node_keys(&platform, svn, min_svn, &blob) {
                Ok(keys) => {
                    eprintln!("confide-node: unsealed node keys from {}", kp.display());
                    keys
                }
                Err(e) => {
                    eprintln!("confide-node: sealed keys refused ({e}); a live member must re-provision via the wire join");
                    std::process::exit(1);
                }
            }
        }
        maybe_path => {
            let keys = demo_keys(boot_seed);
            if let Some(kp) = maybe_path {
                match seal_node_keys(&platform, svn, &keys, boot_seed ^ 0x7365616c) {
                    Ok(blob) => {
                        if let Err(e) = std::fs::write(&kp, &blob) {
                            eprintln!("confide-node: cannot seal keys to {}: {e}", kp.display());
                            std::process::exit(1);
                        }
                        eprintln!("confide-node: sealed node keys to {}", kp.display());
                    }
                    Err(e) => {
                        eprintln!("confide-node: sealing failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            keys
        }
    };

    let mut node = demo_node_with(platform.clone(), keys.clone(), boot_seed);
    // Wire-join trust: in cluster mode every peer's platform root (the
    // mesh dials in through the same K-Protocol join clients would use);
    // single-node, just this node's own deterministic root.
    config.join_roots = match &cluster {
        Some(c) => c.peer_roots.clone(),
        None => vec![platform.attestation_public_key()],
    };
    config.cluster = cluster;

    if let Some(wal) = config.wal_path.as_ref() {
        if wal.exists() {
            let log = std::fs::read(wal).unwrap_or_else(|e| {
                eprintln!("confide-node: cannot read WAL {}: {e}", wal.display());
                std::process::exit(1);
            });
            let cert_bytes = std::fs::read(cert_sidecar_path(wal)).unwrap_or_default();
            if !log.is_empty() {
                let t0 = Instant::now();
                // Structural scan first: `BlockWal::recover` stops at the
                // first bad CRC, so `consumed` is the longest intact
                // prefix whether the damage is a torn tail or bit rot in
                // the middle of the file.
                let recovery = confide_storage::BlockWal::recover(&log);
                let mut cut = recovery.consumed;
                let rep = loop {
                    match node.recover_from_wal(&log[..cut]) {
                        Ok(rep) => break rep,
                        Err(e) => {
                            // Structurally valid but semantically wrong
                            // (root mismatch, undeployable tx): a failed
                            // replay may have applied part of the prefix,
                            // so retry on a fresh bootstrap with a
                            // shorter cut — preferring the last height a
                            // verified quorum certificate vouches for.
                            eprintln!(
                                "confide-node: replay of {cut}-byte prefix failed ({e}); \
                                 cutting back"
                            );
                            node = demo_node_with(platform.clone(), keys.clone(), boot_seed);
                            cut = certified_cut(&recovery, &cert_bytes, cut, &config)
                                .unwrap_or_else(|| {
                                    recovery
                                        .ends
                                        .iter()
                                        .rev()
                                        .find(|&&end| end < cut)
                                        .copied()
                                        .unwrap_or(0)
                                });
                            if cut == 0 {
                                break confide_core::node::RecoveryReport {
                                    blocks_replayed: 0,
                                    height: 0,
                                    state_root: node.state_root(),
                                    torn_bytes: log.len(),
                                    deploys_replayed: 0,
                                };
                            }
                        }
                    }
                };
                if cut < log.len() {
                    // Self-healing: truncate the durable file to the
                    // replayable prefix so appends and state-sync byte
                    // cursors stay valid, and let the cluster backfill
                    // the lost suffix through cert-verified state sync.
                    if let Err(e) = truncate_file(wal, &log[..cut]) {
                        eprintln!("confide-node: cannot truncate WAL {}: {e}", wal.display());
                        std::process::exit(1);
                    }
                    println!(
                        "REPAIRED height={} dropped={} ms={}",
                        rep.height,
                        log.len() - cut,
                        t0.elapsed().as_millis()
                    );
                }
                // Machine-readable, like LISTENING: the chaos harness
                // parses this line.
                println!(
                    "RECOVERED blocks={} height={} torn={} ms={}",
                    rep.blocks_replayed,
                    rep.height,
                    rep.torn_bytes,
                    t0.elapsed().as_millis()
                );
            }
            if !cert_bytes.is_empty() {
                node.load_cert_sidecar(&cert_bytes);
            }
        }
    }

    // Cluster mode must serve on its own advertised `--peers` entry —
    // that address is what the mesh dials and what clients are
    // redirected to. `--port` (non-zero) overrides for setups that
    // advertise through a proxy.
    let bind: (String, u16) = match &config.cluster {
        Some(c) if port == 0 => {
            let advertised = &c.peers[c.node_id as usize];
            match advertised
                .rsplit_once(':')
                .and_then(|(host, p)| Some((host.to_string(), p.parse::<u16>().ok()?)))
            {
                Some(hp) => hp,
                None => {
                    eprintln!("confide-node: cannot parse own peer address {advertised}");
                    std::process::exit(1);
                }
            }
        }
        _ => (String::from("127.0.0.1"), port),
    };
    let server = match NodeServer::spawn(node, (bind.0.as_str(), bind.1), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("confide-node: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The LISTENING line is the machine-readable part of the contract:
    // scripts and tests parse it to learn the ephemeral port.
    println!("LISTENING {}", server.addr());
    eprintln!(
        "confide-node: demo contract {} deployed confidentially; ctrl-c to stop",
        hex_prefix(&confide_net::demo::DEMO_CONTRACT)
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `<wal>.keys` — the sealed-blob sidecar next to the WAL file.
fn sealed_keys_path(wal: &std::path::Path) -> PathBuf {
    let mut os = wal.as_os_str().to_os_string();
    os.push(".keys");
    PathBuf::from(os)
}

/// The longest prefix end `< cut` whose final block carries a *verified*
/// quorum certificate from the sidecar: 2f+1 consortium members signed
/// that exact (height, state root), so replaying up to there can never
/// accept state the cluster didn't agree on. `None` when no certificate
/// applies (single-node mode, empty sidecar, or all certs at or past the
/// failed cut).
fn certified_cut(
    recovery: &confide_storage::WalRecovery,
    cert_bytes: &[u8],
    cut: usize,
    config: &ServerConfig,
) -> Option<usize> {
    let cluster = config.cluster.as_ref()?;
    let n = cluster.peers.len();
    let keys = &cluster.consensus_keys;
    let mut best: Option<usize> = None;
    for (height, raw) in confide_storage::CertLog::recover(cert_bytes).certs {
        let Ok(cert) = confide_consensus::QuorumCert::decode(&raw) else {
            continue;
        };
        if cert.height != height || cert.verify(n, keys).is_err() {
            continue;
        }
        for (block, &end) in recovery.blocks.iter().zip(&recovery.ends) {
            if end < cut
                && block.header.height == cert.height
                && block.header.state_root == cert.root
                && best.is_none_or(|b| end > b)
            {
                best = Some(end);
            }
        }
    }
    best
}

/// Rewrite `path` to exactly `prefix` (write-to-temp + rename would be
/// stronger, but the server rewrites this file from the in-memory log on
/// spawn anyway; what matters here is that the garbage suffix is gone).
fn truncate_file(path: &std::path::Path, prefix: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, prefix)
}

fn hex_prefix(b: &[u8; 32]) -> String {
    b[..4].iter().map(|x| format!("{x:02x}")).collect()
}
