//! `confide-node` — put the demo node behind a real TCP socket.
//!
//! ```text
//! confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N]
//!              [--exec-threads N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (`--port 0`, the default, picks an ephemeral
//! port), prints exactly one `LISTENING <addr>` line to stdout (the
//! smoke test in `scripts/check.sh` captures it) and serves until
//! killed.

use confide_net::demo::demo_node;
use confide_net::{NodeServer, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: confide-node [--port N] [--seed N] [--max-batch N] [--queue-depth N] \
         [--exec-threads N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("confide-node: bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut port: u16 = 0;
    let mut seed: u64 = 7;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", args.next()),
            "--seed" => seed = parse("--seed", args.next()),
            "--max-batch" => config.max_batch = parse("--max-batch", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--exec-threads" => config.exec_threads = parse("--exec-threads", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("confide-node: unknown flag {other}");
                usage();
            }
        }
    }

    let node = demo_node(seed);
    let server = match NodeServer::spawn(node, ("127.0.0.1", port), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("confide-node: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The LISTENING line is the machine-readable part of the contract:
    // scripts and tests parse it to learn the ephemeral port.
    println!("LISTENING {}", server.addr());
    eprintln!(
        "confide-node: demo contract {} deployed confidentially; ctrl-c to stop",
        hex_prefix(&confide_net::demo::DEMO_CONTRACT)
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn hex_prefix(b: &[u8; 32]) -> String {
    b[..4].iter().map(|x| format!("{x:02x}")).collect()
}
