//! `confide-loadgen` — drive a `confide-node` over loopback and emit
//! `results/BENCH_net.json`.
//!
//! ```text
//! confide-loadgen [--addr HOST:PORT | --endpoint HOST:PORT .. | --self-host]
//!                 [--threads N] [--txs N] [--mode closed|open|both] [--public]
//!                 [--vm confide|evm] [--window N] [--queue-depth N]
//!                 [--exec-threads N] [--out PATH] [--recover-ms N]
//!                 [--recovered-blocks N] [--probe]
//! ```
//!
//! `--vm evm` points the wire workload at the demo node's confidential
//! **EVM** contract instead of the CONFIDE-VM one — the same logical
//! ledger on the other machine, so wire numbers for both engines come
//! from one binary.
//!
//! `--endpoint` may repeat: list every member of a consortium cluster
//! and the workers spread their connections across them, follow typed
//! `NotPrimary` redirects to whoever currently leads, rotate past dead
//! members, and the emitted JSON gains a populated `consensus` section
//! (view changes, state-sync blocks, redirects followed).
//!
//! `--recover-ms` / `--recovered-blocks` attach an externally measured
//! crash-recovery datapoint (the `RECOVERED` line a restarted
//! `confide-node --wal` prints) to the emitted JSON, alongside the
//! client-side retry totals.
//!
//! With `--self-host` (the default when `--addr` is absent) the binary
//! spins an in-process [`NodeServer`] on an ephemeral loopback port, so a
//! single command produces a complete benchmark. Exits non-zero when any
//! accepted transaction's receipt fails to decrypt/verify — a bench run
//! doubles as an end-to-end confidentiality check.
//!
//! With `--probe` the binary skips the load run entirely and prints one
//! machine-readable `STATUS` line per reachable endpoint (node id, view,
//! height, state root, …) — the hook `scripts/check.sh` uses to assert
//! that cluster survivors converged to identical roots.

use confide_net::demo::demo_node;
use confide_net::loadgen::{
    cert_microbench, run, run_evm_bench, run_parallel_scaling, run_pipeline_bench,
    run_static_sched, to_json, ByzantineReport, ConsensusInfo, LoadReport, LoadgenConfig,
    PipelineBenchConfig, PipelineReport, RecoveryInfo,
};
use confide_net::Conn;
use confide_net::{NodeServer, ServerConfig};
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: confide-loadgen [--addr HOST:PORT | --endpoint HOST:PORT .. | --self-host] \
         [--threads N] [--txs N] [--mode closed|open|both] [--public] [--vm confide|evm] \
         [--window N] [--queue-depth N] [--exec-threads N] [--out PATH] [--recover-ms N] \
         [--recovered-blocks N] [--probe] [--pipeline] [--pipeline-idle N] \
         [--pipeline-active N] [--pipeline-txs N] [--byzantine-preset NAME] \
         [--byzantine-evidence N] [--view-change-ms N] [--repair-blocks N] [--repair-ms N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("confide-loadgen: bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut endpoints: Vec<SocketAddr> = Vec::new();
    let mut self_host = false;
    let mut threads: usize = 4;
    let mut txs: usize = 250;
    let mut mode = String::from("closed");
    let mut confidential = true;
    let mut vm = String::from("confide");
    let mut window: usize = 64;
    let mut queue_depth: usize = ServerConfig::default().queue_depth;
    let mut exec_threads: usize = ServerConfig::default().exec_threads;
    let mut out = String::from("results/BENCH_net.json");
    let mut recovery = RecoveryInfo::default();
    let mut byzantine = ByzantineReport::default();
    let mut probe = false;
    let mut pipeline_on = false;
    let mut pipeline_cfg = PipelineBenchConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" | "--endpoint" => endpoints.push(parse(arg.as_str(), args.next())),
            "--self-host" => self_host = true,
            "--threads" => threads = parse("--threads", args.next()),
            "--txs" => txs = parse("--txs", args.next()),
            "--mode" => mode = parse("--mode", args.next()),
            "--public" => confidential = false,
            "--vm" => vm = parse("--vm", args.next()),
            "--window" => window = parse("--window", args.next()),
            "--queue-depth" => queue_depth = parse("--queue-depth", args.next()),
            "--exec-threads" => exec_threads = parse("--exec-threads", args.next()),
            "--out" => out = parse("--out", args.next()),
            "--recover-ms" => recovery.recover_ms = parse("--recover-ms", args.next()),
            "--recovered-blocks" => {
                recovery.recovered_blocks = parse("--recovered-blocks", args.next())
            }
            "--byzantine-preset" => byzantine.preset = parse("--byzantine-preset", args.next()),
            "--byzantine-evidence" => {
                byzantine.evidence = parse("--byzantine-evidence", args.next())
            }
            "--view-change-ms" => byzantine.view_change_ms = parse("--view-change-ms", args.next()),
            "--repair-blocks" => byzantine.repair_blocks = parse("--repair-blocks", args.next()),
            "--repair-ms" => byzantine.repair_ms = parse("--repair-ms", args.next()),
            "--probe" => probe = true,
            "--pipeline" => pipeline_on = true,
            "--pipeline-idle" => {
                pipeline_on = true;
                pipeline_cfg.idle_target = parse("--pipeline-idle", args.next());
            }
            "--pipeline-active" => {
                pipeline_on = true;
                pipeline_cfg.active_target = parse("--pipeline-active", args.next());
            }
            "--pipeline-txs" => {
                pipeline_on = true;
                pipeline_cfg.txs_per_conn = parse("--pipeline-txs", args.next());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("confide-loadgen: unknown flag {other}");
                usage();
            }
        }
    }
    if !matches!(mode.as_str(), "closed" | "open" | "both") {
        eprintln!("confide-loadgen: --mode must be closed, open or both");
        usage();
    }
    if !matches!(vm.as_str(), "confide" | "evm") {
        eprintln!("confide-loadgen: --vm must be confide or evm");
        usage();
    }
    if vm == "evm" && !confidential {
        eprintln!("confide-loadgen: the demo EVM contract is confidential; --vm evm needs sealing");
        usage();
    }
    let contract = if vm == "evm" {
        confide_net::demo::DEMO_EVM_CONTRACT
    } else {
        confide_net::demo::DEMO_CONTRACT
    };
    if !endpoints.is_empty() && self_host {
        eprintln!("confide-loadgen: --addr/--endpoint and --self-host are mutually exclusive");
        usage();
    }
    if probe {
        if endpoints.is_empty() {
            eprintln!("confide-loadgen: --probe needs at least one --endpoint");
            usage();
        }
        let mut reachable = 0usize;
        for addr in &endpoints {
            match Conn::connect_timeout(*addr, std::time::Duration::from_millis(800))
                .and_then(|mut c| c.status())
            {
                Ok(s) => {
                    reachable += 1;
                    let root: String = s.state_root.iter().map(|b| format!("{b:02x}")).collect();
                    println!(
                        "STATUS {addr} node={} view={} leader={} height={} root={root} \
                         view_changes={} sync_blocks={} evidence={}",
                        s.node_id,
                        s.view,
                        s.leader,
                        s.height,
                        s.view_changes,
                        s.sync_blocks,
                        s.evidence
                    );
                }
                Err(e) => eprintln!("confide-loadgen: probe {addr}: {e}"),
            }
        }
        std::process::exit(if reachable > 0 { 0 } else { 1 });
    }

    let server_cfg = ServerConfig {
        queue_depth,
        exec_threads,
        ..ServerConfig::default()
    };
    // Keep the in-process server alive for the whole run.
    let server: Option<NodeServer> = if endpoints.is_empty() {
        let s = NodeServer::spawn(demo_node(7), ("127.0.0.1", 0), server_cfg.clone())
            .unwrap_or_else(|e| {
                eprintln!("confide-loadgen: self-host bind failed: {e}");
                std::process::exit(1);
            });
        eprintln!("confide-loadgen: self-hosted node on {}", s.addr());
        Some(s)
    } else {
        None
    };
    if let Some(s) = &server {
        endpoints.push(s.addr());
    }

    let mut reports: Vec<LoadReport> = Vec::new();
    let modes: Vec<&str> = match mode.as_str() {
        "both" => vec!["closed", "open"],
        "open" => vec!["open"],
        _ => vec!["closed"],
    };
    let mut all_verified = true;
    for m in &modes {
        let cfg = LoadgenConfig {
            endpoints: endpoints.clone(),
            threads,
            txs_per_thread: txs,
            closed: *m == "closed",
            confidential,
            window,
            contract,
            ..LoadgenConfig::default()
        };
        eprintln!(
            "confide-loadgen: {} loop, {} thread(s) x {} tx, {} ({} engine) ...",
            m,
            threads,
            txs,
            if confidential {
                "confidential"
            } else {
                "public"
            },
            vm
        );
        match run(&cfg) {
            Ok(report) => {
                eprintln!(
                    "confide-loadgen: {}: {}/{} verified, {:.1} tx/s, p50 {:.2} ms, p99 {:.2} ms, \
                     busy {}, redirects {}",
                    m,
                    report.receipts_verified,
                    report.accepted,
                    report.throughput_tps,
                    report.latency_ms.p50,
                    report.latency_ms.p99,
                    report.busy,
                    report.redirects
                );
                if report.receipts_verified != report.accepted {
                    all_verified = false;
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("confide-loadgen: {m} run failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // The §6.2 thread-scaling curves run on an in-process node (the real
    // parallel executor, virtual-cycle makespan): deterministic, so they
    // are emitted on every run regardless of --addr.
    let scaling = match run_parallel_scaling(7) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("confide-loadgen: parallel scaling run failed: {e}");
            std::process::exit(1);
        }
    };
    for s in &scaling {
        for p in &s.points {
            eprintln!(
                "confide-loadgen: parallel_exec {}: {} threads -> {:.3} ms makespan, \
                 {:.0} model tx/s, {:.2}x vs 1 thread",
                s.workload, p.threads, p.makespan_ms, p.model_tps, p.speedup_vs_1
            );
        }
    }

    // Static-scheduling datapoint: OCC vs the speculation-free path on
    // the same conflict-free block (in-process, deterministic).
    let static_sched = match run_static_sched(7) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("confide-loadgen: static sched run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "confide-loadgen: static_sched: {} txs, {} spec runs skipped, modeled {:.2}x vs OCC, \
         roots_match {}",
        static_sched.txs,
        static_sched.occ_spec_runs,
        static_sched.modeled_speedup,
        static_sched.roots_match
    );
    if !static_sched.roots_match || !static_sched.static_schedule {
        eprintln!("confide-loadgen: FAIL — static schedule diverged from OCC");
        std::process::exit(1);
    }

    // EVM-parity datapoints (in-process, deterministic): the Figure 10
    // architecture gap, mixed-block scheduling soundness, and the
    // CCL→EVM cross-engine call check.
    let evm = match run_evm_bench(7) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("confide-loadgen: evm bench run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "confide-loadgen: evm: {:.0} model tx/s vs confide-vm {:.0} ({:.2}x), \
         mixed_occ_fallback {}, mixed_roots_match {}, cross_call_ok {}",
        evm.evm_model_tps,
        evm.vm_model_tps,
        evm.vm_vs_evm_speedup,
        evm.mixed_occ_fallback,
        evm.mixed_roots_match,
        evm.cross_call_ok
    );
    if !evm.mixed_occ_fallback || !evm.mixed_roots_match || !evm.cross_call_ok {
        eprintln!("confide-loadgen: FAIL — EVM parity checks failed");
        std::process::exit(1);
    }

    // The pipelined-reactor bench: fully in-process (it spawns its own
    // reactor node), opt-in because the idle fleet alone costs thousands
    // of descriptors.
    let pipeline: Option<PipelineReport> = if pipeline_on {
        match run_pipeline_bench(&pipeline_cfg) {
            Ok(p) => {
                eprintln!(
                    "confide-loadgen: pipeline: {} idle + {} active conns, {}/{} accepted, \
                     wire {:.0} tx/s vs model {:.0} tx/s (ratio {:.2}), \
                     {:.1} blocks/fsync over {} fsyncs",
                    p.idle_conns,
                    p.active_conns,
                    p.accepted,
                    p.txs,
                    p.wire_tps,
                    p.model_tps,
                    p.model_ratio,
                    p.blocks_per_fsync,
                    p.fsyncs
                );
                Some(p)
            }
            Err(e) => {
                eprintln!("confide-loadgen: pipeline bench failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    for r in &reports {
        recovery.retries += r.retries;
    }
    // The consensus section: probe every endpoint's status after the
    // run. Single-node and self-hosted runs report n = 1 with zeroed
    // counters, so the schema is identical across deployment shapes.
    let tps = reports.first().map(|r| r.throughput_tps).unwrap_or(0.0);
    let redirects: u64 = reports.iter().map(|r| r.redirects).sum();
    let consensus = ConsensusInfo::probe(&endpoints, tps, redirects);
    if consensus.n > 1 {
        eprintln!(
            "confide-loadgen: consensus: n {}, {:.1} tx/s, view_changes {}, sync_blocks {}, \
             redirects {}, evidence {}",
            consensus.n,
            consensus.tps,
            consensus.view_changes,
            consensus.sync_blocks,
            consensus.redirects,
            consensus.evidence
        );
    }
    // The cert hot path is measured in-process on every run: it is the
    // marginal per-block cost authenticated consensus adds, independent
    // of whether a chaos drill supplied the other counters.
    let (sign_us, verify_us) = cert_microbench(4, 200);
    byzantine.cert_sign_us = sign_us;
    byzantine.cert_verify_us = verify_us;
    eprintln!(
        "confide-loadgen: cert path: sign {sign_us:.1} us/vote, verify {verify_us:.1} us/cert \
         (n=4, 2f+1=3)"
    );
    let json = to_json(
        &reports,
        &scaling,
        &static_sched,
        &evm,
        &server_cfg,
        &recovery,
        &consensus,
        &byzantine,
        pipeline.as_ref(),
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("confide-loadgen: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("confide-loadgen: wrote {out}");
    if !all_verified {
        eprintln!("confide-loadgen: FAIL — some accepted receipts did not verify");
        std::process::exit(1);
    }
}
