//! The networked node runtime: a nonblocking reactor front end over
//! [`ConfideNode`] feeding a pipelined block producer.
//!
//! Architecture (one process):
//!
//! ```text
//!  reactor thread (reactor.rs)      preverify pool        block pipeline
//!  ───────────────────────────      ──────────────        (pipeline.rs)
//!  nonblocking accept + sweep       validate (§5.2),      ─────────────
//!  frame decode, Ping/pk_tx    ──►  dedup, claim,    ──►  execute ∥
//!  inline, reply sequencing         route to ingest       group fsync ∥
//!  (10k+ connections, 1 thread)     (no node lock)        ordered reply
//! ```
//!
//! Backpressure is explicit at every hop: a full worker queue or ingest
//! ring surfaces as a typed [`Message::Busy`] — transactions are never
//! silently dropped. Cluster mode keeps the same front end but routes
//! validated submissions into the wire-PBFT driver in [`crate::cluster`]
//! instead of the local pipeline.
//!
//! The previous thread-per-connection front end survives behind the
//! `legacy-threaded` cargo feature as
//! `NodeServer::spawn_threaded` — an escape hatch while the reactor
//! soaks, not a supported configuration.

use crate::error::{Error, ErrorKind as ConfErrorKind};
use crate::frame::{Message, DEFAULT_MAX_FRAME};
use crate::pipeline::{self, CommitItem, Ingest, PipelineStats, WorkerCtx};
use crate::reactor::{self, ConnToken, ReactorConfig, ReactorDeps, ReactorHandle, WorkQueue};
use confide_core::engine::Engine;
use confide_core::node::ConfideNode;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use confide_storage::WalFile;
use confide_tee::IngestRing;
use std::collections::HashSet;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "legacy-threaded")]
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. Construct via [`ServerConfig::builder`] (which
/// validates) or struct-literal over [`Default`] (legacy style, kept for
/// in-tree churn and tests).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum transactions per block.
    pub max_batch: usize,
    /// Bound of the ingest ring (single-node) or consensus job queue
    /// (cluster); beyond this, submitters get [`Message::Busy`].
    pub queue_depth: usize,
    /// How long the execute stage waits for more transactions after the
    /// first one arrives before sealing a short block.
    pub batch_linger: Duration,
    /// Mid-frame stall bound: a connection holding a partial frame
    /// longer than this is dropped (idle connections between frames are
    /// free under the reactor and live indefinitely).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (legacy threaded path only;
    /// the reactor bounds writers by `write_buf_limit` instead).
    pub write_timeout: Duration,
    /// Maximum accepted frame length.
    pub max_frame: usize,
    /// How long a `SubmitTxWait` waits for its block before reporting a
    /// timeout to the client (legacy threaded path; the reactor holds no
    /// per-request thread, so waiters are bounded by the client's own
    /// patience).
    pub commit_timeout: Duration,
    /// Worker threads for parallel block execution (§6.2). Blocks commit
    /// with results bit-identical to serial execution regardless of this
    /// value; it only changes wall-clock/makespan. Clamped to ≥ 1.
    pub exec_threads: usize,
    /// Preverify worker threads draining the reactor's work queue.
    pub verify_threads: usize,
    /// Bound of the execute → commit queue: how many executed-but-not-
    /// yet-durable blocks may pile up before the execute stage blocks
    /// (which in turn fills the ingest ring and surfaces `Busy`).
    pub pipeline_depth: usize,
    /// Slow-reader bound: a connection buffering more than this many
    /// unflushed reply bytes is dropped.
    pub write_buf_limit: usize,
    /// Durable-commit file: when set, the commit stage appends each
    /// sealed block's WAL record group here (group-fsync'd) **before**
    /// acknowledging the block to any waiter. A crashed process recovers
    /// by feeding the file through `ConfideNode::recover_from_wal` and
    /// respawning.
    pub wal_path: Option<PathBuf>,
    /// Crash hook for chaos testing: after this many blocks have been
    /// sealed *and flushed*, kill the process without replying — the
    /// worst-case crash point (committed but unacknowledged work), which
    /// recovery plus resubmit-dedup must make invisible to clients.
    pub crash_after: Option<u64>,
    /// Consortium-registered platform attestation roots allowed to rejoin
    /// through [`Message::JoinRequest`]. Empty = wire joins disabled.
    pub join_roots: Vec<VerifyingKey>,
    /// SVN this node's KM enclave runs at for join approvals.
    pub join_svn: u16,
    /// Minimum SVN a joiner's quote must carry.
    pub join_min_svn: u16,
    /// Base seed of the per-join approval RNG (each approval mixes in a
    /// join counter so session keys and nonces never repeat).
    pub join_seed: u64,
    /// Consortium cluster membership. `None` runs the single-node block
    /// pipeline; `Some` replaces it with the wire-PBFT driver in
    /// [`crate::cluster`] — submissions are ordered by consensus,
    /// followers redirect clients with [`Message::NotPrimary`], and
    /// attested peers exchange [`Message::Peer`] traffic over this same
    /// port.
    pub cluster: Option<crate::cluster::ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_batch: 256,
            queue_depth: 1024,
            batch_linger: Duration::from_millis(2),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            commit_timeout: Duration::from_secs(30),
            exec_threads: 4,
            verify_threads: 2,
            pipeline_depth: 4,
            write_buf_limit: 4 * DEFAULT_MAX_FRAME,
            wal_path: None,
            crash_after: None,
            join_roots: Vec::new(),
            join_svn: 1,
            join_min_svn: 1,
            join_seed: 0x6a6f696e, // "join"
            cluster: None,
        }
    }
}

impl ServerConfig {
    /// Start a validated configuration build.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]: setters chain, [`build`] validates the
/// whole configuration at once so a bad combination fails loudly before
/// any socket is bound, with a typed [`ErrorKind::Config`] error.
///
/// [`build`]: ServerConfigBuilder::build
/// [`ErrorKind::Config`]: crate::error::ErrorKind::Config
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Max transactions the execute stage folds into one block (≥ 1).
    pub fn max_batch(mut self, v: usize) -> Self {
        self.config.max_batch = v;
        self
    }
    /// Ingest ring capacity; overflow is answered with `Busy` (≥ 1).
    pub fn queue_depth(mut self, v: usize) -> Self {
        self.config.queue_depth = v;
        self
    }
    /// How long the execute stage lingers for stragglers before sealing
    /// a non-full block.
    pub fn batch_linger(mut self, v: Duration) -> Self {
        self.config.batch_linger = v;
        self
    }
    /// Idle-connection reap timeout on the reactor.
    pub fn read_timeout(mut self, v: Duration) -> Self {
        self.config.read_timeout = v;
        self
    }
    /// Socket write timeout (legacy-threaded runtime only; the reactor
    /// uses bounded write buffers instead).
    pub fn write_timeout(mut self, v: Duration) -> Self {
        self.config.write_timeout = v;
        self
    }
    /// Max accepted frame size in bytes (≥ 64).
    pub fn max_frame(mut self, v: usize) -> Self {
        self.config.max_frame = v;
        self
    }
    /// How long a `SubmitTxWait` caller may wait for its commit
    /// (legacy-threaded runtime only).
    pub fn commit_timeout(mut self, v: Duration) -> Self {
        self.config.commit_timeout = v;
        self
    }
    /// Worker threads for parallel block execution (≥ 1).
    pub fn exec_threads(mut self, v: usize) -> Self {
        self.config.exec_threads = v;
        self
    }
    /// Preverify worker threads fed by the reactor (≥ 1).
    pub fn verify_threads(mut self, v: usize) -> Self {
        self.config.verify_threads = v;
        self
    }
    /// Max executed-but-unsynced blocks queued at the commit stage (≥ 1);
    /// the execute stage blocks when the group-commit fsync falls behind.
    pub fn pipeline_depth(mut self, v: usize) -> Self {
        self.config.pipeline_depth = v;
        self
    }
    /// Per-connection outbound buffer cap in bytes (≥ `max_frame`); a
    /// connection that stops reading past this is closed, not buffered.
    pub fn write_buf_limit(mut self, v: usize) -> Self {
        self.config.write_buf_limit = v;
        self
    }
    /// Durable WAL path; enables crash recovery on restart.
    pub fn wal_path(mut self, v: impl Into<PathBuf>) -> Self {
        self.config.wal_path = Some(v.into());
        self
    }
    /// Fault-injection hook: `exit(101)` after this many blocks are
    /// fsynced (requires a `wal_path`).
    pub fn crash_after(mut self, v: u64) -> Self {
        self.config.crash_after = Some(v);
        self
    }
    /// Attestation roots accepted for K-Protocol MAP join requests.
    pub fn join_roots(mut self, v: Vec<VerifyingKey>) -> Self {
        self.config.join_roots = v;
        self
    }
    /// SVN this node advertises when counter-quoting a join.
    pub fn join_svn(mut self, v: u16) -> Self {
        self.config.join_svn = v;
        self
    }
    /// Minimum SVN accepted from a joiner's quote.
    pub fn join_min_svn(mut self, v: u16) -> Self {
        self.config.join_min_svn = v;
        self
    }
    /// Deterministic seed for the join key-wrap nonce stream.
    pub fn join_seed(mut self, v: u64) -> Self {
        self.config.join_seed = v;
        self
    }
    /// Run as a consortium cluster member (requires peers, peer roots,
    /// and join roots — validated in [`ServerConfigBuilder::build`]).
    pub fn cluster(mut self, v: crate::cluster::ClusterConfig) -> Self {
        self.config.cluster = Some(v);
        self
    }

    /// Validate the accumulated configuration.
    pub fn build(self) -> Result<ServerConfig, Error> {
        let c = &self.config;
        let fail = |m: String| Err(Error::new(ConfErrorKind::Config, m));
        if c.max_batch == 0 {
            return fail("max_batch must be >= 1".into());
        }
        if c.queue_depth == 0 {
            return fail("queue_depth must be >= 1".into());
        }
        if c.exec_threads == 0 || c.verify_threads == 0 {
            return fail("exec_threads and verify_threads must be >= 1".into());
        }
        if c.pipeline_depth == 0 {
            return fail("pipeline_depth must be >= 1".into());
        }
        if c.max_frame < 64 {
            return fail(format!("max_frame {} too small (min 64)", c.max_frame));
        }
        if c.write_buf_limit < c.max_frame {
            return fail(format!(
                "write_buf_limit {} smaller than max_frame {} (one reply could never flush)",
                c.write_buf_limit, c.max_frame
            ));
        }
        if c.crash_after.is_some() && c.wal_path.is_none() {
            return fail(
                "crash_after without wal_path: a crash hook on a non-durable node loses data by construction"
                    .into(),
            );
        }
        if let Some(cluster) = &c.cluster {
            if cluster.peers.is_empty() {
                return fail("cluster.peers must not be empty".into());
            }
            if cluster.node_id as usize >= cluster.peers.len() {
                return fail(format!(
                    "cluster.node_id {} out of range for {} peers",
                    cluster.node_id,
                    cluster.peers.len()
                ));
            }
            if cluster.peer_roots.len() != cluster.peers.len() {
                return fail(format!(
                    "cluster.peer_roots has {} keys for {} peers (one attestation root per member)",
                    cluster.peer_roots.len(),
                    cluster.peers.len()
                ));
            }
            if c.join_roots.is_empty() {
                return fail(
                    "cluster mode requires join_roots: the peer mesh attests over the wire join protocol"
                        .into(),
                );
            }
        }
        Ok(self.config)
    }
}

/// Live counters, shared with the reactor/worker/pipeline threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Transactions enqueued.
    pub accepted: AtomicU64,
    /// Submissions turned away with `Busy` (queue or ring full,
    /// duplicate in flight).
    pub busy: AtomicU64,
    /// Submissions rejected at validation or execution.
    pub rejected: AtomicU64,
    /// Blocks sealed.
    pub blocks: AtomicU64,
    /// Transactions committed into blocks.
    pub committed: AtomicU64,
    /// Connections served.
    pub connections: AtomicU64,
    /// Replies that could not be delivered: the connection died (or was
    /// dropped as a slow reader) while its request was in flight. Not
    /// silent data loss — the transaction's fate is still recorded in
    /// the committed block; only the notification bounced.
    pub reply_drops: AtomicU64,
    /// Resubmissions answered from the committed wire-hash index instead
    /// of re-executing (retry-after-crash idempotence).
    pub deduped: AtomicU64,
    /// Wire rejoin requests processed (each burns one approval seed,
    /// approved or not).
    pub joins: AtomicU64,
}

/// Where a job's commit verdict goes.
pub(crate) enum ReplyTo {
    /// Fire-and-forget (`SubmitTx`): the client already got `Accepted`.
    Fire,
    /// Legacy thread-per-connection rendezvous (`SubmitTxWait` with a
    /// handler thread parked on the channel).
    #[cfg(feature = "legacy-threaded")]
    Channel(SyncSender<Message>),
    /// Reactor connection: the reply is posted as an ordered directive.
    Conn {
        handle: ReactorHandle,
        conn: ConnToken,
        seq: u64,
    },
}

impl ReplyTo {
    /// Deliver the commit verdict. Failures (waiter gone, connection
    /// closed) are counted in [`ServerStats::reply_drops`], never silent.
    pub(crate) fn send(self, msg: Message, stats: &ServerStats) {
        match self {
            ReplyTo::Fire => {}
            #[cfg(feature = "legacy-threaded")]
            ReplyTo::Channel(done) => legacy::reply_waiter(&done, msg, stats),
            ReplyTo::Conn { handle, conn, seq } => {
                let _ = stats; // drop accounting happens reactor-side
                handle.reply(conn, seq, msg);
            }
        }
    }
}

/// One queued transaction plus the route back to whoever awaits its
/// commit verdict.
pub(crate) struct Job {
    pub(crate) tx: WireTx,
    pub(crate) wire_hash: [u8; 32],
    pub(crate) reply: ReplyTo,
}

/// Wire hashes currently queued or executing — a second submission of the
/// same bytes while the first is in flight is turned away with `Busy`
/// instead of executing twice. On the pipelined path a claim is held
/// until **after** the group fsync that makes its block durable.
pub(crate) type InFlight = Arc<Mutex<HashSet<[u8; 32]>>>;

/// A running node server. Dropping it (or calling
/// [`NodeServer::shutdown`]) stops the reactor, drains the pipeline, and
/// joins every thread.
pub struct NodeServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    pipe: Arc<PipelineStats>,
    stop: Arc<AtomicBool>,
    reactor: Option<ReactorHandle>,
    threads: Vec<JoinHandle<()>>,
    node: Arc<RwLock<ConfideNode>>,
    cluster: Option<Arc<crate::cluster::ClusterShared>>,
}

impl NodeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `node` on the reactor + pipeline runtime.
    pub fn spawn(
        node: ConfideNode,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let pipe = Arc::new(PipelineStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        // Shared handle to the confidential engine so the preverify pool
        // validates envelopes without contending on the node RwLock.
        let conf_engine = Arc::clone(&node.confidential_engine);
        // Dedup index seeded from the node's committed history (nonempty
        // after a WAL recovery), then maintained by the commit stage.
        let durable: pipeline::DurableIndex = Arc::new(Mutex::new(
            node.committed_wire_entries()
                .into_iter()
                .map(|(wire, sealed, receipt)| (wire, (sealed, receipt)))
                .collect(),
        ));
        let node = Arc::new(RwLock::new(node));
        let in_flight: InFlight = Arc::new(Mutex::new(HashSet::new()));
        // The work queue holds decoded-but-unvalidated requests; size it
        // past the ingest bound so non-submit traffic (status, receipts)
        // is not starved by a full block queue.
        let work = WorkQueue::new(config.queue_depth + 1024, config.verify_threads.max(1));
        let handle = ReactorHandle::new();
        // Identity answers are immutable per process: cache once, serve
        // from the reactor without the node lock.
        let (pk_tx, report) = {
            let n = node.read().expect("node lock");
            (n.pk_tx(), n.attestation_report())
        };

        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        // Cluster mode swaps the local pipeline for the consensus
        // driver; the backpressure contract (bounded ingest, typed
        // `Busy`) stays identical, the drain side changes.
        let (ingest, peer_tx, shared) = match config.cluster.clone() {
            Some(cluster) => {
                let shared = Arc::new(crate::cluster::ClusterShared::new(&cluster));
                let (peer_tx, peer_rx) = mpsc::channel();
                let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
                let node = Arc::clone(&node);
                let stats = Arc::clone(&stats);
                let config2 = config.clone();
                let in_flight = Arc::clone(&in_flight);
                let stop2 = Arc::clone(&stop);
                let shared2 = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name("confide-cluster".into())
                        .spawn(move || {
                            crate::cluster::cluster_loop(
                                node, job_rx, peer_rx, stats, config2, cluster, shared2, in_flight,
                                stop2,
                            )
                        })?,
                );
                (Ingest::Cluster(job_tx), Some(peer_tx), Some(shared))
            }
            None => {
                let ring: Arc<IngestRing<Job>> = IngestRing::with_capacity(config.queue_depth);
                let (commit_tx, commit_rx) =
                    mpsc::sync_channel::<CommitItem>(config.pipeline_depth);
                // Durable log: rewrite the committed prefix once at
                // startup (a recovered node's in-memory WAL already
                // replays the old file), then group-append per block.
                let wal = match config.wal_path.as_ref() {
                    Some(path) => {
                        let snapshot = node.read().expect("node lock").wal_bytes().to_vec();
                        let mut f = std::fs::File::create(path)?;
                        f.write_all(&snapshot)?;
                        f.sync_all()?;
                        drop(f);
                        Some(WalFile::open(path)?)
                    }
                    None => None,
                };
                {
                    let node = Arc::clone(&node);
                    let ring = Arc::clone(&ring);
                    let stats = Arc::clone(&stats);
                    let pipe = Arc::clone(&pipe);
                    let config = config.clone();
                    let stop = Arc::clone(&stop);
                    threads.push(
                        std::thread::Builder::new()
                            .name("confide-execute".into())
                            .spawn(move || {
                                pipeline::execute_loop(
                                    node, ring, commit_tx, stats, pipe, config, stop,
                                )
                            })?,
                    );
                }
                {
                    let stats = Arc::clone(&stats);
                    let pipe = Arc::clone(&pipe);
                    let in_flight = Arc::clone(&in_flight);
                    let durable = Arc::clone(&durable);
                    let config = config.clone();
                    threads.push(
                        std::thread::Builder::new()
                            .name("confide-commit".into())
                            .spawn(move || {
                                pipeline::commit_loop(
                                    commit_rx, wal, stats, pipe, in_flight, durable, config,
                                )
                            })?,
                    );
                }
                (Ingest::Ring(ring), None, None)
            }
        };

        let ctx = Arc::new(WorkerCtx {
            node: Arc::clone(&node),
            conf_engine,
            durable,
            stats: Arc::clone(&stats),
            pipe: Arc::clone(&pipe),
            in_flight: Arc::clone(&in_flight),
            handle: handle.clone(),
            work: Arc::clone(&work),
            ingest,
            cluster: shared.clone(),
            config: config.clone(),
        });
        for i in 0..config.verify_threads.max(1) {
            let ctx = Arc::clone(&ctx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("confide-verify-{i}"))
                    .spawn(move || pipeline::preverify_worker(ctx, i))?,
            );
        }

        {
            let deps = ReactorDeps {
                stats: Arc::clone(&stats),
                work: Arc::clone(&work),
                peer_tx,
                pk_tx,
                report,
                config: ReactorConfig {
                    max_frame: config.max_frame,
                    read_timeout: config.read_timeout,
                    write_buf_limit: config.write_buf_limit,
                },
            };
            let rhandle = handle.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("confide-reactor".into())
                    .spawn(move || reactor::run(listener, rhandle, deps))?,
            );
        }

        Ok(NodeServer {
            addr: local,
            stats,
            pipe,
            stop,
            reactor: Some(handle),
            threads,
            node,
            cluster: shared,
        })
    }

    /// Live cluster state (`None` in single-node mode).
    pub fn cluster(&self) -> Option<&Arc<crate::cluster::ClusterShared>> {
        self.cluster.as_ref()
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Pipeline stage counters (all zero in cluster mode, where the
    /// consensus driver commits blocks).
    pub fn pipeline_stats(&self) -> &PipelineStats {
        &self.pipe
    }

    /// Read access to the underlying node (tests: state inspection).
    pub fn node(&self) -> &Arc<RwLock<ConfideNode>> {
        &self.node
    }

    /// Stop the reactor, drain the pipeline, and join every thread.
    /// Shutdown cascade: reactor exits → closes every connection and
    /// stops the work queue → preverify workers drain and exit →
    /// dropping the last ingest sender lets the execute stage drain →
    /// dropping the commit sender lets the commit stage drain.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.reactor.take() {
            handle.stop();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Validate a submission *before* it is allowed into the ingest path:
/// confidential envelopes are opened and their inner signature verified
/// (the §5.2 pre-verification pipeline, here running on the preverify
/// worker pool — i.e. in parallel with ordering and with other
/// requests), so a garbage envelope never wastes block space.
/// Takes the confidential engine directly — NOT the node lock — so the
/// envelope crypto runs concurrently with block execution (which holds
/// the node write lock for the whole block; routing preverify through
/// `node.read()` would convoy the worker pool behind it).
pub(crate) fn validate(conf_engine: &Engine, tx: &WireTx) -> Result<(), String> {
    match tx {
        WireTx::Public(signed) => signed.verify().map_err(|_| "bad signature".to_string()),
        WireTx::Confidential(_) => conf_engine
            .preverify(tx)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    }
}

/// Try to enter `wire_hash` into the in-flight set. `false` means the
/// same bytes are already queued or executing.
pub(crate) fn claim(in_flight: &InFlight, wire_hash: [u8; 32]) -> bool {
    in_flight.lock().expect("in-flight lock").insert(wire_hash)
}

pub(crate) fn release(in_flight: &InFlight, wire_hash: &[u8; 32]) {
    in_flight.lock().expect("in-flight lock").remove(wire_hash);
}

/// The pre-reactor thread-per-connection runtime, kept compiling behind
/// a feature gate as a rollback escape hatch. `cargo build --features
/// legacy-threaded` exercises it; nothing in the default build refers to
/// it.
#[cfg(feature = "legacy-threaded")]
mod legacy {
    use super::*;
    use crate::frame::{read_frame, write_frame, FrameError};
    use confide_core::keys::JoinOffer;
    use std::io::ErrorKind;
    use std::net::TcpStream;
    use std::sync::mpsc::{Receiver, RecvTimeoutError, TrySendError};
    use std::time::Instant;

    impl NodeServer {
        /// Bind `addr` and serve with the legacy thread-per-connection
        /// front end and serial batcher (pre-reactor architecture).
        pub fn spawn_threaded(
            node: ConfideNode,
            addr: impl ToSocketAddrs,
            config: ServerConfig,
        ) -> std::io::Result<NodeServer> {
            let listener = TcpListener::bind(addr)?;
            let local = listener.local_addr()?;
            let stats = Arc::new(ServerStats::default());
            let stop = Arc::new(AtomicBool::new(false));
            let node = Arc::new(RwLock::new(node));
            let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            let in_flight: InFlight = Arc::new(Mutex::new(HashSet::new()));
            let mut threads = Vec::new();

            let cluster_ctx = match config.cluster.clone() {
                Some(cluster) => {
                    let shared = Arc::new(crate::cluster::ClusterShared::new(&cluster));
                    let (peer_tx, peer_rx) = mpsc::channel();
                    let ctx = crate::cluster::ClusterCtx {
                        shared: Arc::clone(&shared),
                        peer_tx,
                    };
                    let node = Arc::clone(&node);
                    let stats = Arc::clone(&stats);
                    let config = config.clone();
                    let in_flight = Arc::clone(&in_flight);
                    let stop = Arc::clone(&stop);
                    let shared2 = Arc::clone(&shared);
                    threads.push(
                        std::thread::Builder::new()
                            .name("confide-cluster".into())
                            .spawn(move || {
                                crate::cluster::cluster_loop(
                                    node, job_rx, peer_rx, stats, config, cluster, shared2,
                                    in_flight, stop,
                                )
                            })?,
                    );
                    Some((ctx, shared))
                }
                None => {
                    let node = Arc::clone(&node);
                    let stats = Arc::clone(&stats);
                    let config = config.clone();
                    let in_flight = Arc::clone(&in_flight);
                    threads.push(
                        std::thread::Builder::new()
                            .name("confide-batcher".into())
                            .spawn(move || batcher_loop(node, job_rx, stats, config, in_flight))?,
                    );
                    None
                }
            };
            let (conn_ctx, shared) = match cluster_ctx {
                Some((ctx, shared)) => (Some(ctx), Some(shared)),
                None => (None, None),
            };

            let accept = {
                let node = Arc::clone(&node);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::Builder::new()
                    .name("confide-accept".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                            let node = Arc::clone(&node);
                            let stats = Arc::clone(&stats);
                            let stop = Arc::clone(&stop);
                            let job_tx = job_tx.clone();
                            let config = config.clone();
                            let in_flight = Arc::clone(&in_flight);
                            let cluster_ctx = conn_ctx.clone();
                            let _ = std::thread::Builder::new()
                                .name("confide-conn".into())
                                .spawn(move || {
                                    let _ = handle_connection(
                                        stream,
                                        node,
                                        job_tx,
                                        stats,
                                        stop,
                                        config,
                                        in_flight,
                                        cluster_ctx,
                                    );
                                });
                        }
                    })?
            };
            threads.push(accept);

            Ok(NodeServer {
                addr: local,
                stats,
                pipe: Arc::new(PipelineStats::default()),
                stop,
                reactor: None,
                threads,
                node,
                cluster: shared,
            })
        }
    }

    /// The serial batcher: drain the queue into blocks of at most
    /// `max_batch` transactions, fsyncing each block's WAL suffix before
    /// any waiter hears about it.
    fn batcher_loop(
        node: Arc<RwLock<ConfideNode>>,
        jobs: Receiver<Job>,
        stats: Arc<ServerStats>,
        config: ServerConfig,
        in_flight: InFlight,
    ) {
        let mut wal_file = config.wal_path.as_ref().map(|path| {
            let mut f = std::fs::File::create(path).expect("create wal file");
            let snapshot = node.read().expect("node lock").wal_bytes().to_vec();
            f.write_all(&snapshot).expect("write wal prefix");
            f.sync_all().expect("sync wal prefix");
            (f, snapshot.len())
        });
        loop {
            let first = match jobs.recv() {
                Ok(job) => job,
                Err(_) => return,
            };
            let mut batch = vec![first];
            let deadline = Instant::now() + config.batch_linger;
            while batch.len() < config.max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    match jobs.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                } else {
                    match jobs.recv_timeout(left) {
                        Ok(job) => batch.push(job),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
            let mut fresh = Vec::with_capacity(batch.len());
            {
                let node = node.read().expect("node lock");
                for job in batch {
                    match node.committed_by_wire(&job.wire_hash) {
                        Some((sealed, receipt)) => {
                            stats.deduped.fetch_add(1, Ordering::Relaxed);
                            release(&in_flight, &job.wire_hash);
                            job.reply
                                .send(Message::Committed { sealed, receipt }, &stats);
                        }
                        None => fresh.push(job),
                    }
                }
            }
            let batch = fresh;
            if batch.is_empty() {
                continue;
            }
            let txs: Vec<WireTx> = batch.iter().map(|j| j.tx.clone()).collect();
            let threads = config.exec_threads.max(1);
            let result = {
                let mut node = node.write().expect("node lock");
                let result = node.execute_block_parallel(&txs, threads);
                if result.is_ok() {
                    if let Some((file, flushed)) = wal_file.as_mut() {
                        let bytes = node.wal_bytes();
                        file.write_all(&bytes[*flushed..]).expect("append wal");
                        file.sync_all().expect("sync wal");
                        *flushed = bytes.len();
                    }
                }
                result
            };
            {
                let mut set = in_flight.lock().expect("in-flight lock");
                for job in &batch {
                    set.remove(&job.wire_hash);
                }
            }
            match result {
                Ok(res) => {
                    stats.blocks.fetch_add(1, Ordering::Relaxed);
                    stats
                        .committed
                        .fetch_add(res.accepted() as u64, Ordering::Relaxed);
                    if let Some(limit) = config.crash_after {
                        if stats.blocks.load(Ordering::Relaxed) >= limit {
                            eprintln!("confide-batcher: crash-after hook firing at block {limit}");
                            std::process::exit(101);
                        }
                    }
                    for (job, outcome) in batch.into_iter().zip(&res.outcomes) {
                        let reply = match outcome {
                            Ok((receipt, sealed)) => Message::Committed {
                                sealed: sealed.is_some(),
                                receipt: sealed.clone().unwrap_or_else(|| receipt.encode()),
                            },
                            Err(e) => {
                                stats.rejected.fetch_add(1, Ordering::Relaxed);
                                Message::Rejected(e.to_string())
                            }
                        };
                        job.reply.send(reply, &stats);
                    }
                }
                Err(e) => {
                    let msg = format!("block commit failed: {e}");
                    for job in batch {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        job.reply.send(Message::Rejected(msg.clone()), &stats);
                    }
                }
            }
        }
    }

    /// Deliver a commit reply to a `SubmitTxWait` rendezvous.
    pub(crate) fn reply_waiter(done: &SyncSender<Message>, reply: Message, stats: &ServerStats) {
        if let Err(e) = done.try_send(reply) {
            stats.reply_drops.fetch_add(1, Ordering::Relaxed);
            let cause = match e {
                TrySendError::Full(_) => "channel full (waiter never drained its slot)",
                TrySendError::Disconnected(_) => "waiter gone (commit-wait timeout)",
            };
            eprintln!("confide-batcher: dropped commit reply: {cause}");
        }
    }

    enum ReadOutcome {
        Frame(Box<Message>),
        Idle,
        Closed,
    }

    fn read_one(stream: &mut TcpStream, max_frame: usize) -> Result<ReadOutcome, FrameError> {
        match read_frame(stream, max_frame) {
            Ok(Some(msg)) => Ok(ReadOutcome::Frame(Box::new(msg))),
            Ok(None) => Ok(ReadOutcome::Closed),
            Err(FrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::Idle)
            }
            Err(e) => Err(e),
        }
    }

    fn not_primary(cluster: &Option<crate::cluster::ClusterCtx>) -> Option<String> {
        match cluster {
            Some(ctx) if !ctx.shared.is_leader() => Some(ctx.shared.leader_addr()),
            _ => None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_connection(
        mut stream: TcpStream,
        node: Arc<RwLock<ConfideNode>>,
        job_tx: SyncSender<Job>,
        stats: Arc<ServerStats>,
        stop: Arc<AtomicBool>,
        config: ServerConfig,
        in_flight: InFlight,
        cluster: Option<crate::cluster::ClusterCtx>,
    ) -> Result<(), FrameError> {
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        stream.set_nodelay(true)?;
        let (pk_tx, report, conf_engine) = {
            let node = node.read().expect("node lock");
            (
                node.pk_tx(),
                node.attestation_report(),
                Arc::clone(&node.confidential_engine),
            )
        };
        let mut attested = false;
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let msg = match read_one(&mut stream, config.max_frame)? {
                ReadOutcome::Frame(msg) => *msg,
                ReadOutcome::Idle => continue,
                ReadOutcome::Closed => return Ok(()),
            };
            if let Message::Peer(peer_msg) = msg {
                match &cluster {
                    Some(ctx) if attested => {
                        let _ = ctx.peer_tx.send(peer_msg);
                        continue;
                    }
                    _ => {
                        let _ = write_frame(
                            &mut stream,
                            &Message::Rejected(
                                "peer traffic requires an attested connection".into(),
                            ),
                        );
                        return Err(FrameError::BadKind(crate::frame::K_PEER));
                    }
                }
            }
            let reply = match msg {
                Message::Ping => Message::Pong,
                Message::GetPkTx => Message::PkTxIs(pk_tx),
                Message::GetAttestation => match &report {
                    Some(r) => Message::AttestationIs(r.clone()),
                    None => Message::Rejected("node runs without a TEE".into()),
                },
                Message::GetReceipt(hash) => {
                    let stored = node.read().expect("node lock").stored_receipt(&hash);
                    match stored {
                        Some(bytes) => Message::ReceiptIs(bytes),
                        None => Message::NotFound,
                    }
                }
                Message::SubmitTx(tx) => {
                    let wire_hash = tx.wire_hash();
                    let committed = node
                        .read()
                        .expect("node lock")
                        .committed_by_wire(&wire_hash);
                    if committed.is_some() {
                        stats.deduped.fetch_add(1, Ordering::Relaxed);
                        Message::Accepted(wire_hash)
                    } else if let Some(leader) = not_primary(&cluster) {
                        Message::NotPrimary { leader }
                    } else if !claim(&in_flight, wire_hash) {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        Message::Busy
                    } else {
                        match validate(&conf_engine, &tx) {
                            Err(reason) => {
                                release(&in_flight, &wire_hash);
                                stats.rejected.fetch_add(1, Ordering::Relaxed);
                                Message::Rejected(reason)
                            }
                            Ok(()) => match job_tx.try_send(Job {
                                tx,
                                wire_hash,
                                reply: ReplyTo::Fire,
                            }) {
                                Ok(()) => {
                                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                                    Message::Accepted(wire_hash)
                                }
                                Err(TrySendError::Full(_)) => {
                                    release(&in_flight, &wire_hash);
                                    stats.busy.fetch_add(1, Ordering::Relaxed);
                                    Message::Busy
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    release(&in_flight, &wire_hash);
                                    Message::Rejected("server shutting down".into())
                                }
                            },
                        }
                    }
                }
                Message::SubmitTxWait(tx) => {
                    let wire_hash = tx.wire_hash();
                    let committed = node
                        .read()
                        .expect("node lock")
                        .committed_by_wire(&wire_hash);
                    if let Some((sealed, receipt)) = committed {
                        stats.deduped.fetch_add(1, Ordering::Relaxed);
                        Message::Committed { sealed, receipt }
                    } else if let Some(leader) = not_primary(&cluster) {
                        Message::NotPrimary { leader }
                    } else if !claim(&in_flight, wire_hash) {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        Message::Busy
                    } else {
                        match validate(&conf_engine, &tx) {
                            Err(reason) => {
                                release(&in_flight, &wire_hash);
                                stats.rejected.fetch_add(1, Ordering::Relaxed);
                                Message::Rejected(reason)
                            }
                            Ok(()) => {
                                let (done_tx, done_rx) = mpsc::sync_channel::<Message>(1);
                                match job_tx.try_send(Job {
                                    tx,
                                    wire_hash,
                                    reply: ReplyTo::Channel(done_tx),
                                }) {
                                    Ok(()) => {
                                        stats.accepted.fetch_add(1, Ordering::Relaxed);
                                        match done_rx.recv_timeout(config.commit_timeout) {
                                            Ok(reply) => reply,
                                            Err(_) => {
                                                Message::Rejected("commit wait timed out".into())
                                            }
                                        }
                                    }
                                    Err(TrySendError::Full(_)) => {
                                        release(&in_flight, &wire_hash);
                                        stats.busy.fetch_add(1, Ordering::Relaxed);
                                        Message::Busy
                                    }
                                    Err(TrySendError::Disconnected(_)) => {
                                        release(&in_flight, &wire_hash);
                                        Message::Rejected("server shutting down".into())
                                    }
                                }
                            }
                        }
                    }
                }
                Message::JoinRequest { eph_pk, report } => {
                    if config.join_roots.is_empty() {
                        Message::Rejected("wire joins disabled".into())
                    } else {
                        let offer = JoinOffer { eph_pk, report };
                        let seed = config
                            .join_seed
                            .wrapping_add(stats.joins.fetch_add(1, Ordering::Relaxed));
                        let node = node.read().expect("node lock");
                        let mut approved = None;
                        let mut last_err = String::from("no join roots configured");
                        for root in &config.join_roots {
                            match node.approve_join(
                                root,
                                &offer,
                                config.join_svn,
                                config.join_min_svn,
                                seed,
                            ) {
                                Ok((blob, member_report)) => {
                                    approved = Some(Message::JoinApprove {
                                        blob,
                                        member_report,
                                    });
                                    break;
                                }
                                Err(e) => last_err = e.to_string(),
                            }
                        }
                        if approved.is_some() {
                            attested = true;
                        }
                        approved.unwrap_or_else(|| {
                            Message::Rejected(format!("join refused: {last_err}"))
                        })
                    }
                }
                Message::GetStatus => {
                    let (height, state_root) = {
                        let node = node.read().expect("node lock");
                        (node.blocks.height(), node.state_root())
                    };
                    let status = match &cluster {
                        Some(ctx) => crate::frame::NodeStatus {
                            node_id: ctx.shared.node_id,
                            view: ctx.shared.view.load(Ordering::Relaxed),
                            leader: ctx.shared.leader.load(Ordering::Relaxed),
                            height,
                            state_root,
                            view_changes: ctx.shared.view_changes.load(Ordering::Relaxed),
                            sync_blocks: ctx.shared.sync_blocks.load(Ordering::Relaxed),
                            evidence: ctx.shared.evidence.load(Ordering::Relaxed),
                        },
                        None => crate::frame::NodeStatus {
                            node_id: 0,
                            view: 0,
                            leader: 0,
                            height,
                            state_root,
                            view_changes: 0,
                            sync_blocks: 0,
                            evidence: 0,
                        },
                    };
                    Message::StatusIs(status)
                }
                Message::StateSyncReq {
                    from,
                    max,
                    have_height,
                } => {
                    if attested && cluster.is_some() {
                        crate::cluster::serve_state_sync(&node, from, max, have_height)
                    } else {
                        Message::Rejected("state sync requires an attested connection".into())
                    }
                }
                other => {
                    let _ = write_frame(
                        &mut stream,
                        &Message::Rejected(format!(
                            "unexpected message kind {:#04x}",
                            other.kind()
                        )),
                    );
                    return Err(FrameError::BadKind(other.kind()));
                }
            };
            write_frame(&mut stream, &reply)?;
        }
    }
}
