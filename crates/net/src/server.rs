//! The networked node runtime: a framed-TCP front end over
//! [`ConfideNode`].
//!
//! Architecture (one process):
//!
//! ```text
//!  accept loop ──► handler thread per connection
//!                     │  validate (decode + §5.2 preverify, off the
//!                     │  block path, parallel across connections)
//!                     ▼
//!              bounded mpsc batching queue ──► batcher thread
//!                     │ full ⇒ Busy                │ drains ≤ max_batch
//!                     ▼                            ▼
//!               typed response          node.execute_block_parallel
//!                                       (exec_threads workers, §6.2)
//! ```
//!
//! Backpressure is explicit: when the queue is full the submitter gets a
//! typed [`Message::Busy`] response — transactions are never silently
//! dropped. Per-connection read/write timeouts bound how long a stalled
//! peer can pin a handler thread.

use crate::frame::{read_frame, write_frame, FrameError, Message, DEFAULT_MAX_FRAME};
use confide_core::keys::JoinOffer;
use confide_core::node::ConfideNode;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use std::collections::HashSet;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum transactions per block.
    pub max_batch: usize,
    /// Bound of the batching queue; beyond this, submitters get
    /// [`Message::Busy`].
    pub queue_depth: usize,
    /// How long the batcher waits for more transactions after the first
    /// one arrives before sealing a short block.
    pub batch_linger: Duration,
    /// Per-connection socket read timeout (mid-frame stalls kill the
    /// connection; between frames the handler just keeps listening).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted frame length.
    pub max_frame: usize,
    /// How long a `SubmitTxWait` waits for its block before reporting a
    /// timeout to the client.
    pub commit_timeout: Duration,
    /// Worker threads for parallel block execution (§6.2). Blocks commit
    /// with results bit-identical to serial execution regardless of this
    /// value; it only changes wall-clock/makespan. Clamped to ≥ 1.
    pub exec_threads: usize,
    /// Durable-commit file: when set, the batcher appends each sealed
    /// block's WAL record group here (fsync'd) **before** acknowledging
    /// the block to any waiter. A crashed process recovers by feeding the
    /// file through `ConfideNode::recover_from_wal` and respawning.
    pub wal_path: Option<PathBuf>,
    /// Crash hook for chaos testing: after this many blocks have been
    /// sealed *and flushed*, kill the process without replying — the
    /// worst-case crash point (committed but unacknowledged work), which
    /// recovery plus resubmit-dedup must make invisible to clients.
    pub crash_after: Option<u64>,
    /// Consortium-registered platform attestation roots allowed to rejoin
    /// through [`Message::JoinRequest`]. Empty = wire joins disabled.
    pub join_roots: Vec<VerifyingKey>,
    /// SVN this node's KM enclave runs at for join approvals.
    pub join_svn: u16,
    /// Minimum SVN a joiner's quote must carry.
    pub join_min_svn: u16,
    /// Base seed of the per-join approval RNG (each approval mixes in a
    /// join counter so session keys and nonces never repeat).
    pub join_seed: u64,
    /// Consortium cluster membership. `None` runs the single-node batcher
    /// (exactly the pre-cluster behaviour); `Some` replaces it with the
    /// wire-PBFT driver in [`crate::cluster`] — submissions are ordered by
    /// consensus, followers redirect clients with
    /// [`Message::NotPrimary`], and attested peers exchange
    /// [`Message::Peer`] traffic over this same port.
    pub cluster: Option<crate::cluster::ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_batch: 256,
            queue_depth: 1024,
            batch_linger: Duration::from_millis(2),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            commit_timeout: Duration::from_secs(30),
            exec_threads: 4,
            wal_path: None,
            crash_after: None,
            join_roots: Vec::new(),
            join_svn: 1,
            join_min_svn: 1,
            join_seed: 0x6a6f696e, // "join"
            cluster: None,
        }
    }
}

/// Live counters, shared with the accept/handler/batcher threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Transactions enqueued.
    pub accepted: AtomicU64,
    /// Submissions turned away with `Busy` (queue full).
    pub busy: AtomicU64,
    /// Submissions rejected at validation or execution.
    pub rejected: AtomicU64,
    /// Blocks sealed.
    pub blocks: AtomicU64,
    /// Transactions committed into blocks.
    pub committed: AtomicU64,
    /// Connections served.
    pub connections: AtomicU64,
    /// Commit replies the batcher could not deliver to a waiting
    /// `SubmitTxWait` handler. Each job's rendezvous channel holds one
    /// slot and receives exactly one reply, so `Full` is impossible; a
    /// drop here means the waiter gave up (commit-timeout) and hung up
    /// first. Non-zero values are normal under overload — the tx still
    /// committed (or was rejected) exactly as reported in the block.
    pub reply_drops: AtomicU64,
    /// Resubmissions answered from the committed wire-hash index instead
    /// of re-executing (retry-after-crash idempotence).
    pub deduped: AtomicU64,
    /// Wire rejoin requests processed (each burns one approval seed,
    /// approved or not).
    pub joins: AtomicU64,
}

/// One queued transaction plus the optional rendezvous back to the
/// waiting `SubmitTxWait` handler.
pub(crate) struct Job {
    pub(crate) tx: WireTx,
    pub(crate) wire_hash: [u8; 32],
    pub(crate) done: Option<SyncSender<Message>>,
}

/// Wire hashes currently queued or executing — a second submission of the
/// same bytes while the first is in flight is turned away with `Busy`
/// instead of executing twice.
pub(crate) type InFlight = Arc<Mutex<HashSet<[u8; 32]>>>;

/// A running node server. Dropping it (or calling
/// [`NodeServer::shutdown`]) stops the accept loop and the batcher.
pub struct NodeServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
    node: Arc<RwLock<ConfideNode>>,
    cluster: Option<Arc<crate::cluster::ClusterShared>>,
}

impl NodeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `node`.
    pub fn spawn(
        node: ConfideNode,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let node = Arc::new(RwLock::new(node));
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let in_flight: InFlight = Arc::new(Mutex::new(HashSet::new()));

        // Cluster mode swaps the single-node batcher for the consensus
        // driver; the job queue and its backpressure contract stay the
        // same, the drain side changes.
        let (shared, cluster_ctx, batcher) = match config.cluster.clone() {
            Some(cluster) => {
                let shared = Arc::new(crate::cluster::ClusterShared::new(&cluster));
                let (peer_tx, peer_rx) = mpsc::channel();
                let ctx = crate::cluster::ClusterCtx {
                    shared: Arc::clone(&shared),
                    peer_tx,
                };
                let node = Arc::clone(&node);
                let stats = Arc::clone(&stats);
                let config = config.clone();
                let in_flight = Arc::clone(&in_flight);
                let stop = Arc::clone(&stop);
                let shared2 = Arc::clone(&shared);
                let driver = std::thread::Builder::new()
                    .name("confide-cluster".into())
                    .spawn(move || {
                        crate::cluster::cluster_loop(
                            node, job_rx, peer_rx, stats, config, cluster, shared2, in_flight, stop,
                        )
                    })?;
                (Some(shared), Some(ctx), driver)
            }
            None => {
                let node = Arc::clone(&node);
                let stats = Arc::clone(&stats);
                let config = config.clone();
                let in_flight = Arc::clone(&in_flight);
                let batcher = std::thread::Builder::new()
                    .name("confide-batcher".into())
                    .spawn(move || batcher_loop(node, job_rx, stats, config, in_flight))?;
                (None, None, batcher)
            }
        };

        let accept = {
            let node = Arc::clone(&node);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("confide-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let node = Arc::clone(&node);
                        let stats = Arc::clone(&stats);
                        let stop = Arc::clone(&stop);
                        let job_tx = job_tx.clone();
                        let config = config.clone();
                        let in_flight = Arc::clone(&in_flight);
                        let cluster_ctx = cluster_ctx.clone();
                        let _ = std::thread::Builder::new()
                            .name("confide-conn".into())
                            .spawn(move || {
                                let _ = handle_connection(
                                    stream,
                                    node,
                                    job_tx,
                                    stats,
                                    stop,
                                    config,
                                    in_flight,
                                    cluster_ctx,
                                );
                            });
                    }
                    // job_tx clones die with the handlers; dropping ours here
                    // lets the batcher drain and exit once handlers finish.
                })?
        };

        Ok(NodeServer {
            addr: local,
            stats,
            stop,
            accept_thread: Some(accept),
            batcher_thread: Some(batcher),
            node,
            cluster: shared,
        })
    }

    /// Live cluster state (`None` in single-node mode).
    pub fn cluster(&self) -> Option<&Arc<crate::cluster::ClusterShared>> {
        self.cluster.as_ref()
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Read access to the underlying node (tests: state inspection).
    pub fn node(&self) -> &Arc<RwLock<ConfideNode>> {
        &self.node
    }

    /// Stop accepting connections and wait for the batcher to drain.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher: drain the queue into blocks of at most `max_batch`
/// transactions, lingering briefly for stragglers, and answer the
/// waiters. With `wal_path` set, each block's WAL suffix is flushed and
/// fsync'd **before** any waiter hears about it — the durable-commit
/// point of the whole server.
fn batcher_loop(
    node: Arc<RwLock<ConfideNode>>,
    jobs: Receiver<Job>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    in_flight: InFlight,
) {
    // Durable log: rewrite the committed prefix once at startup (a
    // recovered node's in-memory WAL already replays the old file), then
    // append per block below.
    let mut wal_file = config.wal_path.as_ref().map(|path| {
        let mut f = std::fs::File::create(path).expect("create wal file");
        let snapshot = node.read().expect("node lock").wal_bytes().to_vec();
        f.write_all(&snapshot).expect("write wal prefix");
        f.sync_all().expect("sync wal prefix");
        (f, snapshot.len())
    });
    loop {
        // Block until the first transaction of the next batch.
        let first = match jobs.recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone — server shut down
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + config.batch_linger;
        while batch.len() < config.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Linger expired: top the batch up without waiting.
                match jobs.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            } else {
                match jobs.recv_timeout(left) {
                    Ok(job) => batch.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        // Late dedup: a resubmission can race past the handler's check and
        // sit in the queue behind the block that commits its twin. Answer
        // those from the committed index instead of executing them again.
        let mut fresh = Vec::with_capacity(batch.len());
        {
            let node = node.read().expect("node lock");
            for job in batch {
                match node.committed_by_wire(&job.wire_hash) {
                    Some((sealed, receipt)) => {
                        stats.deduped.fetch_add(1, Ordering::Relaxed);
                        in_flight
                            .lock()
                            .expect("in-flight lock")
                            .remove(&job.wire_hash);
                        if let Some(done) = &job.done {
                            reply_waiter(done, Message::Committed { sealed, receipt }, &stats);
                        }
                    }
                    None => fresh.push(job),
                }
            }
        }
        let batch = fresh;
        if batch.is_empty() {
            continue;
        }
        let txs: Vec<WireTx> = batch.iter().map(|j| j.tx.clone()).collect();
        let threads = config.exec_threads.max(1);
        let result = {
            let mut node = node.write().expect("node lock");
            let result = node.execute_block_parallel(&txs, threads);
            // Flush the new block's WAL suffix while still holding the
            // write lock, so the file never lags a block another thread
            // could already observe.
            if result.is_ok() {
                if let Some((file, flushed)) = wal_file.as_mut() {
                    let bytes = node.wal_bytes();
                    file.write_all(&bytes[*flushed..]).expect("append wal");
                    file.sync_all().expect("sync wal");
                    *flushed = bytes.len();
                }
            }
            result
        };
        {
            let mut set = in_flight.lock().expect("in-flight lock");
            for job in &batch {
                set.remove(&job.wire_hash);
            }
        }
        match result {
            Ok(res) => {
                stats.blocks.fetch_add(1, Ordering::Relaxed);
                stats
                    .committed
                    .fetch_add(res.accepted() as u64, Ordering::Relaxed);
                // Chaos hook: die after the durable-commit point but
                // before any acknowledgement — the worst crash window.
                if let Some(limit) = config.crash_after {
                    if stats.blocks.load(Ordering::Relaxed) >= limit {
                        eprintln!("confide-batcher: crash-after hook firing at block {limit}");
                        std::process::exit(101);
                    }
                }
                for (job, outcome) in batch.iter().zip(&res.outcomes) {
                    let reply = match outcome {
                        Ok((receipt, sealed)) => Message::Committed {
                            sealed: sealed.is_some(),
                            receipt: sealed.clone().unwrap_or_else(|| receipt.encode()),
                        },
                        Err(e) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Message::Rejected(e.to_string())
                        }
                    };
                    if let Some(done) = &job.done {
                        reply_waiter(done, reply, &stats);
                    }
                }
            }
            Err(e) => {
                // Commit-level failure: every waiter learns.
                let msg = format!("block commit failed: {e}");
                for job in &batch {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(done) = &job.done {
                        reply_waiter(done, Message::Rejected(msg.clone()), &stats);
                    }
                }
            }
        }
    }
}

/// Deliver a commit reply to a `SubmitTxWait` rendezvous. The per-job
/// channel is sized 1 and receives exactly one reply, so the only failure
/// mode is `Disconnected` — the waiter timed out and hung up. That is not
/// silent: it is counted in [`ServerStats::reply_drops`] and logged, and
/// the transaction's fate is still recorded in the committed block.
pub(crate) fn reply_waiter(done: &SyncSender<Message>, reply: Message, stats: &ServerStats) {
    if let Err(e) = done.try_send(reply) {
        stats.reply_drops.fetch_add(1, Ordering::Relaxed);
        let cause = match e {
            TrySendError::Full(_) => "channel full (waiter never drained its slot)",
            TrySendError::Disconnected(_) => "waiter gone (commit-wait timeout)",
        };
        eprintln!("confide-batcher: dropped commit reply: {cause}");
    }
}

/// Validate a submission *before* it is allowed into the batching queue:
/// confidential envelopes are opened and their inner signature verified
/// (the §5.2 pre-verification pipeline, here running on the connection
/// handler thread — i.e. in parallel with ordering and with other
/// connections), so a garbage envelope never wastes block space.
fn validate(node: &RwLock<ConfideNode>, tx: &WireTx) -> Result<(), String> {
    match tx {
        WireTx::Public(signed) => signed.verify().map_err(|_| "bad signature".to_string()),
        WireTx::Confidential(_) => {
            let node = node.read().expect("node lock");
            node.confidential_engine
                .preverify(tx)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    }
}

enum ReadOutcome {
    Frame(Box<Message>),
    Idle,
    Closed,
}

/// Read one frame, mapping a timeout *between* frames to `Idle` (keep the
/// connection) and any mid-frame stall or parse failure to an error that
/// drops the connection.
fn read_one(stream: &mut TcpStream, max_frame: usize) -> Result<ReadOutcome, FrameError> {
    match read_frame(stream, max_frame) {
        Ok(Some(msg)) => Ok(ReadOutcome::Frame(Box::new(msg))),
        Ok(None) => Ok(ReadOutcome::Closed),
        Err(FrameError::Io(e))
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
        {
            Ok(ReadOutcome::Idle)
        }
        Err(e) => Err(e),
    }
}

/// In cluster mode, submissions are only accepted on the node that
/// currently leads; everyone else answers with a typed redirect carrying
/// the leader's advertised address. Returns `Some(leader_addr)` when this
/// node should redirect.
fn not_primary(cluster: &Option<crate::cluster::ClusterCtx>) -> Option<String> {
    match cluster {
        Some(ctx) if !ctx.shared.is_leader() => Some(ctx.shared.leader_addr()),
        _ => None,
    }
}

/// Try to enter `wire_hash` into the in-flight set. `false` means the
/// same bytes are already queued or executing.
fn claim(in_flight: &InFlight, wire_hash: [u8; 32]) -> bool {
    in_flight.lock().expect("in-flight lock").insert(wire_hash)
}

fn release(in_flight: &InFlight, wire_hash: &[u8; 32]) {
    in_flight.lock().expect("in-flight lock").remove(wire_hash);
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    node: Arc<RwLock<ConfideNode>>,
    job_tx: SyncSender<Job>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
    in_flight: InFlight,
    cluster: Option<crate::cluster::ClusterCtx>,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    // Cache the identity answers once per connection.
    let (pk_tx, report) = {
        let node = node.read().expect("node lock");
        (node.pk_tx(), node.attestation_report())
    };
    // Did this connection complete a K-Protocol join (i.e. prove it runs
    // an attested consortium enclave)? Gates peer/state-sync traffic.
    let mut attested = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let msg = match read_one(&mut stream, config.max_frame)? {
            ReadOutcome::Frame(msg) => *msg,
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => return Ok(()),
        };
        // Consensus traffic is fire-and-forget: no response frame, so it
        // never interleaves replies into a peer's request pipeline.
        if let Message::Peer(peer_msg) = msg {
            match &cluster {
                Some(ctx) if attested => {
                    let _ = ctx.peer_tx.send(peer_msg);
                    continue;
                }
                _ => {
                    let _ = write_frame(
                        &mut stream,
                        &Message::Rejected("peer traffic requires an attested connection".into()),
                    );
                    return Err(FrameError::BadKind(crate::frame::K_PEER));
                }
            }
        }
        let reply = match msg {
            Message::Ping => Message::Pong,
            Message::GetPkTx => Message::PkTxIs(pk_tx),
            Message::GetAttestation => match &report {
                Some(r) => Message::AttestationIs(r.clone()),
                None => Message::Rejected("node runs without a TEE".into()),
            },
            Message::GetReceipt(hash) => {
                let stored = node.read().expect("node lock").stored_receipt(&hash);
                match stored {
                    Some(bytes) => Message::ReceiptIs(bytes),
                    None => Message::NotFound,
                }
            }
            Message::SubmitTx(tx) => {
                let wire_hash = tx.wire_hash();
                let committed = node
                    .read()
                    .expect("node lock")
                    .committed_by_wire(&wire_hash);
                if committed.is_some() {
                    // Retry of an already-committed tx (e.g. after a
                    // crash between flush and reply): idempotent accept.
                    // Served on followers too — committed state is
                    // replicated, so a retry after a leader kill lands.
                    stats.deduped.fetch_add(1, Ordering::Relaxed);
                    Message::Accepted(wire_hash)
                } else if let Some(leader) = not_primary(&cluster) {
                    Message::NotPrimary { leader }
                } else if !claim(&in_flight, wire_hash) {
                    stats.busy.fetch_add(1, Ordering::Relaxed);
                    Message::Busy
                } else {
                    match validate(&node, &tx) {
                        Err(reason) => {
                            release(&in_flight, &wire_hash);
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Message::Rejected(reason)
                        }
                        Ok(()) => match job_tx.try_send(Job {
                            tx,
                            wire_hash,
                            done: None,
                        }) {
                            Ok(()) => {
                                stats.accepted.fetch_add(1, Ordering::Relaxed);
                                Message::Accepted(wire_hash)
                            }
                            Err(TrySendError::Full(_)) => {
                                release(&in_flight, &wire_hash);
                                stats.busy.fetch_add(1, Ordering::Relaxed);
                                Message::Busy
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                release(&in_flight, &wire_hash);
                                Message::Rejected("server shutting down".into())
                            }
                        },
                    }
                }
            }
            Message::SubmitTxWait(tx) => {
                let wire_hash = tx.wire_hash();
                let committed = node
                    .read()
                    .expect("node lock")
                    .committed_by_wire(&wire_hash);
                if let Some((sealed, receipt)) = committed {
                    // Retry of an already-committed tx: return the stored
                    // receipt instead of executing twice.
                    stats.deduped.fetch_add(1, Ordering::Relaxed);
                    Message::Committed { sealed, receipt }
                } else if let Some(leader) = not_primary(&cluster) {
                    Message::NotPrimary { leader }
                } else if !claim(&in_flight, wire_hash) {
                    stats.busy.fetch_add(1, Ordering::Relaxed);
                    Message::Busy
                } else {
                    match validate(&node, &tx) {
                        Err(reason) => {
                            release(&in_flight, &wire_hash);
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Message::Rejected(reason)
                        }
                        Ok(()) => {
                            let (done_tx, done_rx) = mpsc::sync_channel::<Message>(1);
                            match job_tx.try_send(Job {
                                tx,
                                wire_hash,
                                done: Some(done_tx),
                            }) {
                                Ok(()) => {
                                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                                    match done_rx.recv_timeout(config.commit_timeout) {
                                        Ok(reply) => reply,
                                        Err(_) => Message::Rejected("commit wait timed out".into()),
                                    }
                                }
                                Err(TrySendError::Full(_)) => {
                                    release(&in_flight, &wire_hash);
                                    stats.busy.fetch_add(1, Ordering::Relaxed);
                                    Message::Busy
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    release(&in_flight, &wire_hash);
                                    Message::Rejected("server shutting down".into())
                                }
                            }
                        }
                    }
                }
            }
            Message::JoinRequest { eph_pk, report } => {
                if config.join_roots.is_empty() {
                    Message::Rejected("wire joins disabled".into())
                } else {
                    let offer = JoinOffer { eph_pk, report };
                    // Each approval burns a unique seed: wrap_keys derives
                    // its ephemeral secret and GCM nonce from it.
                    let seed = config
                        .join_seed
                        .wrapping_add(stats.joins.fetch_add(1, Ordering::Relaxed));
                    let node = node.read().expect("node lock");
                    let mut approved = None;
                    let mut last_err = String::from("no join roots configured");
                    for root in &config.join_roots {
                        match node.approve_join(
                            root,
                            &offer,
                            config.join_svn,
                            config.join_min_svn,
                            seed,
                        ) {
                            Ok((blob, member_report)) => {
                                approved = Some(Message::JoinApprove {
                                    blob,
                                    member_report,
                                });
                                break;
                            }
                            Err(e) => last_err = e.to_string(),
                        }
                    }
                    if approved.is_some() {
                        // The joiner's quote verified against a consortium
                        // root: this socket now speaks for an attested
                        // member enclave.
                        attested = true;
                    }
                    approved
                        .unwrap_or_else(|| Message::Rejected(format!("join refused: {last_err}")))
                }
            }
            Message::GetStatus => {
                let (height, state_root) = {
                    let node = node.read().expect("node lock");
                    (node.blocks.height(), node.state_root())
                };
                let status = match &cluster {
                    Some(ctx) => crate::frame::NodeStatus {
                        node_id: ctx.shared.node_id,
                        view: ctx.shared.view.load(Ordering::Relaxed),
                        leader: ctx.shared.leader.load(Ordering::Relaxed),
                        height,
                        state_root,
                        view_changes: ctx.shared.view_changes.load(Ordering::Relaxed),
                        sync_blocks: ctx.shared.sync_blocks.load(Ordering::Relaxed),
                    },
                    None => crate::frame::NodeStatus {
                        node_id: 0,
                        view: 0,
                        leader: 0,
                        height,
                        state_root,
                        view_changes: 0,
                        sync_blocks: 0,
                    },
                };
                Message::StatusIs(status)
            }
            Message::StateSyncReq { from, max } => {
                // The WAL contains only sealed envelopes and sealed
                // receipts, but serving it is still gated to attested
                // members: topology and traffic volume are consortium
                // business.
                if attested && cluster.is_some() {
                    crate::cluster::serve_state_sync(&node, from, max)
                } else {
                    Message::Rejected("state sync requires an attested connection".into())
                }
            }
            // A response kind arriving at the server is a protocol abuse:
            // answer once, then drop the connection.
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Message::Rejected(format!("unexpected message kind {:#04x}", other.kind())),
                );
                return Err(FrameError::BadKind(other.kind()));
            }
        };
        write_frame(&mut stream, &reply)?;
    }
}
