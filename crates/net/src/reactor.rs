//! The nonblocking reactor: one thread multiplexing every client
//! connection.
//!
//! The thread-per-connection front end topped out at a few hundred
//! sockets (one OS thread + two stacks each); the paper's node holds
//! thousands of open client channels while the enclave pipeline stays
//! busy. This reactor is the zero-dep, `forbid(unsafe_code)`-compatible
//! equivalent of an epoll loop: every socket is nonblocking, the reactor
//! sweeps them with level-triggered `read()` polls, and an **adaptive
//! idle backoff** (exponentially spaced polls for quiet connections)
//! keeps the sweep cost proportional to the *active* set — 10k idle
//! connections cost ~10k/256 syscalls per sweep, not 10k.
//!
//! Division of labour (the reactor thread never touches the node lock —
//! the execute stage holds it for milliseconds at a time):
//!
//! ```text
//!  reactor thread           preverify workers         block pipeline
//!  ───────────────          ─────────────────         ──────────────
//!  accept / read            validate, dedup,          execute ∥ fsync
//!  frame decode      ──►    claim, enqueue      ──►   (pipeline.rs)
//!  Ping/pk_tx inline        (node read lock)
//!  reply sequencing  ◄──    directives          ◄──   commit replies
//!  write buffering
//! ```
//!
//! **Reply ordering.** Clients pipeline requests and read replies in
//! request order. The reactor assigns every request a per-connection
//! sequence number; replies (produced out of order by the worker pool
//! and the commit stage) park in a per-connection reorder map and are
//! flushed strictly in sequence.
//!
//! **Backpressure.** Every queue a request crosses is bounded: a full
//! worker queue or ingest ring surfaces as a typed [`Message::Busy`],
//! never a silent drop; a reader that stops draining replies grows its
//! write buffer to `write_buf_limit` and is then disconnected (counted
//! in `reply_drops`).

use crate::frame::Message;
use crate::server::ServerStats;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Identifies one live connection slot; the generation guards against a
/// directive outliving its connection and landing on a reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConnToken {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

/// One offloaded request: everything a preverify worker needs to act
/// without consulting the reactor.
pub(crate) struct Work {
    pub(crate) conn: ConnToken,
    pub(crate) seq: u64,
    pub(crate) msg: Message,
    /// Whether the connection had completed a K-Protocol join when this
    /// frame was parsed. Requests on a connection are parsed in order
    /// and a well-behaved joiner waits for `JoinApprove` before sending
    /// gated traffic, so the snapshot is exact for honest peers and
    /// fail-closed for racing ones.
    pub(crate) attested: bool,
}

struct WorkShard {
    inner: Mutex<VecDeque<Work>>,
    ready: Condvar,
}

/// Bounded handoff from the reactor to the preverify pool. Overflow is
/// the caller's problem (typed `Busy`), never a block on the reactor
/// thread.
///
/// The queue is **sharded by connection**: every request from one
/// connection lands on the same shard, and each shard is drained by
/// exactly one worker. That preserves the protocol's per-connection
/// FIFO — pipelined submissions from one client are claimed, validated,
/// and enqueued to the execute stage in the order they were sent, which
/// the strictly-increasing per-sender nonce rule depends on. A pool
/// draining one shared queue would reorder adjacent requests and turn
/// in-order nonce streams into spurious replay rejects.
pub(crate) struct WorkQueue {
    shards: Vec<WorkShard>,
    stopped: AtomicBool,
    shard_cap: usize,
}

impl WorkQueue {
    /// `cap` is the total budget, split evenly across `shards` (one per
    /// preverify worker).
    pub(crate) fn new(cap: usize, shards: usize) -> Arc<WorkQueue> {
        let shards = shards.max(1);
        Arc::new(WorkQueue {
            shards: (0..shards)
                .map(|_| WorkShard {
                    inner: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            stopped: AtomicBool::new(false),
            shard_cap: (cap / shards).max(16),
        })
    }

    // The large Err is the point: a rejected `Work` is handed back to
    // the caller intact so it can answer `Busy` without a re-decode.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, work: Work) -> Result<(), Work> {
        if self.stopped.load(Ordering::SeqCst) {
            return Err(work);
        }
        let shard = &self.shards[work.conn.idx as usize % self.shards.len()];
        let mut queue = shard.inner.lock().expect("work queue lock");
        if queue.len() >= self.shard_cap {
            return Err(work);
        }
        queue.push_back(work);
        drop(queue);
        shard.ready.notify_one();
        Ok(())
    }

    /// Blocking pop for worker `shard`; `None` means the queue stopped
    /// and drained — time to exit.
    pub(crate) fn pop(&self, shard: usize) -> Option<Work> {
        let shard = &self.shards[shard % self.shards.len()];
        let mut queue = shard.inner.lock().expect("work queue lock");
        loop {
            if let Some(w) = queue.pop_front() {
                return Some(w);
            }
            if self.stopped.load(Ordering::SeqCst) {
                return None;
            }
            queue = shard.ready.wait(queue).expect("work queue lock");
        }
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.ready.notify_all();
        }
    }
}

/// A reply (or connection-state change) posted back to the reactor from
/// a worker or the commit stage.
struct Directive {
    conn: ConnToken,
    seq: u64,
    msg: Message,
    /// Mark the connection attested (successful K-Protocol join).
    attest: bool,
    /// Close the connection once this reply is flushed.
    close: bool,
}

struct ReactorShared {
    directives: Mutex<Vec<Directive>>,
    /// The reactor thread to unpark on new directives / stop.
    thread: Mutex<Option<Thread>>,
    stop: AtomicBool,
}

/// Cheap-clone handle for posting replies into the reactor from any
/// thread.
#[derive(Clone)]
pub(crate) struct ReactorHandle {
    shared: Arc<ReactorShared>,
}

impl ReactorHandle {
    pub(crate) fn new() -> ReactorHandle {
        ReactorHandle {
            shared: Arc::new(ReactorShared {
                directives: Mutex::new(Vec::new()),
                thread: Mutex::new(None),
                stop: AtomicBool::new(false),
            }),
        }
    }

    /// Post an ordered reply for `(conn, seq)`.
    pub(crate) fn reply(&self, conn: ConnToken, seq: u64, msg: Message) {
        self.post(Directive {
            conn,
            seq,
            msg,
            attest: false,
            close: false,
        });
    }

    /// Reply and mark the connection attested (join approved).
    pub(crate) fn reply_attest(&self, conn: ConnToken, seq: u64, msg: Message) {
        self.post(Directive {
            conn,
            seq,
            msg,
            attest: true,
            close: false,
        });
    }

    /// Reply, then close the connection once the reply is flushed.
    pub(crate) fn reply_close(&self, conn: ConnToken, seq: u64, msg: Message) {
        self.post(Directive {
            conn,
            seq,
            msg,
            attest: false,
            close: true,
        });
    }

    fn post(&self, d: Directive) {
        self.shared
            .directives
            .lock()
            .expect("directive lock")
            .push(d);
        self.wake();
    }

    /// Ask the reactor to shut down and wake it.
    pub(crate) fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.wake();
    }

    fn wake(&self) {
        if let Some(t) = self.shared.thread.lock().expect("thread slot").as_ref() {
            t.unpark();
        }
    }
}

/// Reactor tuning, distilled from `ServerConfig` at spawn.
pub(crate) struct ReactorConfig {
    pub(crate) max_frame: usize,
    /// Mid-frame stall bound (a partial frame older than this drops the
    /// connection, exactly like the threaded path's socket timeout).
    pub(crate) read_timeout: Duration,
    /// Slow-reader bound: unflushed reply bytes beyond this drop the
    /// connection.
    pub(crate) write_buf_limit: usize,
}

/// Everything the reactor needs besides the listener.
pub(crate) struct ReactorDeps {
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) work: Arc<WorkQueue>,
    /// Cluster peer ingress (attested connections only).
    pub(crate) peer_tx: Option<mpsc::Sender<confide_consensus::SignedPeerMsg>>,
    /// Cached identity answers, served inline without the node lock.
    pub(crate) pk_tx: [u8; 32],
    pub(crate) report: Option<confide_tee::attestation::Report>,
    pub(crate) config: ReactorConfig,
}

struct ConnState {
    stream: TcpStream,
    gen: u32,
    /// Raw unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Encoded outbound bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next request sequence to assign.
    next_seq: u64,
    /// Next reply sequence to flush.
    next_reply: u64,
    /// Out-of-order replies parked until their turn; bool = close after.
    pending: BTreeMap<u64, (Message, bool)>,
    attested: bool,
    /// When the current partial frame started stalling.
    partial_since: Option<Instant>,
    /// Adaptive idle backoff: poll this connection again after
    /// `idle_skip` sweeps; the skip doubles (capped) per empty poll.
    idle_skip: u32,
    idle_level: u32,
    /// Close once `wbuf` and in-order `pending` are flushed.
    closing: bool,
}

const MAX_IDLE_LEVEL: u32 = 8; // 2^8 = 256-sweep spacing for idle conns
const READ_CHUNK: usize = 64 * 1024;
const MAX_READ_PER_SWEEP: usize = 256 * 1024; // per-conn fairness bound
const ACCEPT_BATCH: usize = 1024;
const PARK_IDLE: Duration = Duration::from_micros(500);

/// Run the reactor until [`ReactorHandle::stop`]. Consumes the listener.
pub(crate) fn run(listener: TcpListener, handle: ReactorHandle, deps: ReactorDeps) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    *handle.shared.thread.lock().expect("thread slot") = Some(std::thread::current());
    let mut r = Reactor {
        shared: Arc::clone(&handle.shared),
        deps,
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        live: 0,
        scratch: vec![0u8; READ_CHUNK],
    };
    loop {
        if r.shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut did_work = false;
        did_work |= r.apply_directives();
        did_work |= r.accept_new(&listener);
        did_work |= r.sweep();
        if !did_work {
            std::thread::park_timeout(PARK_IDLE);
        }
    }
    // Shutdown: drop every connection, then stop the worker pool.
    r.conns.clear();
    r.deps.work.stop();
}

struct Reactor {
    shared: Arc<ReactorShared>,
    deps: ReactorDeps,
    conns: Vec<Option<ConnState>>,
    /// Per-slot generation counters; bumped when a slot's occupant
    /// closes, so a stale [`ConnToken`] can never address the slot's
    /// next tenant.
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    scratch: Vec<u8>,
}

impl Reactor {
    fn apply_directives(&mut self) -> bool {
        let drained: Vec<Directive> = {
            let mut q = self.shared.directives.lock().expect("directive lock");
            std::mem::take(&mut *q)
        };
        if drained.is_empty() {
            return false;
        }
        let mut touched: Vec<u32> = Vec::with_capacity(drained.len());
        for d in drained {
            let Some(conn) = self
                .conns
                .get_mut(d.conn.idx as usize)
                .and_then(Option::as_mut)
                .filter(|c| c.gen == d.conn.gen)
            else {
                // The connection died while its request was in flight.
                self.deps.stats.reply_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            if d.attest {
                conn.attested = true;
            }
            conn.pending.insert(d.seq, (d.msg, d.close));
            touched.push(d.conn.idx);
        }
        for idx in touched {
            self.pump_out(idx);
        }
        true
    }

    fn accept_new(&mut self, listener: &TcpListener) -> bool {
        let mut any = false;
        for _ in 0..ACCEPT_BATCH {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.deps.stats.connections.fetch_add(1, Ordering::Relaxed);
                    self.insert_conn(stream);
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failure (EMFILE under fd pressure):
                // drop out of the batch; the sweep parks briefly and we
                // retry next iteration.
                Err(_) => break,
            }
        }
        any
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        let state = |gen| ConnState {
            stream,
            gen,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            next_reply: 0,
            pending: BTreeMap::new(),
            attested: false,
            partial_since: None,
            idle_skip: 0,
            idle_level: 0,
            closing: false,
        };
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.conns[idx as usize].is_none());
                self.conns[idx as usize] = Some(state(self.gens[idx as usize]));
            }
            None => {
                self.gens.push(1);
                self.conns.push(Some(state(1)));
            }
        }
    }

    fn sweep(&mut self) -> bool {
        let mut any = false;
        let cfg_read_timeout = self.deps.config.read_timeout;
        for idx in 0..self.conns.len() as u32 {
            let Some(conn) = self.conns.get_mut(idx as usize).and_then(Option::as_mut) else {
                continue;
            };
            // Adaptive idle backoff: skip quiet connections this sweep.
            if conn.idle_skip > 0 && conn.wbuf.len() == conn.wpos && conn.pending.is_empty() {
                conn.idle_skip -= 1;
                continue;
            }
            // Mid-frame stall bound.
            if let Some(t0) = conn.partial_since {
                if t0.elapsed() > cfg_read_timeout {
                    self.close_conn(idx, "mid-frame stall");
                    continue;
                }
            }
            match self.read_conn(idx) {
                ReadResult::Progress => {
                    any = true;
                }
                ReadResult::Quiet => {
                    if let Some(conn) = self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                        conn.idle_level = (conn.idle_level + 1).min(MAX_IDLE_LEVEL);
                        conn.idle_skip = 1 << conn.idle_level;
                    }
                }
                ReadResult::Gone => {
                    any = true;
                    continue;
                }
            }
            if self
                .conns
                .get(idx as usize)
                .and_then(Option::as_ref)
                .map(|c| c.wbuf.len() > c.wpos || !c.pending.is_empty())
                .unwrap_or(false)
            {
                any |= self.pump_out(idx);
            }
        }
        any
    }

    /// Drain the socket into `rbuf` and parse complete frames.
    fn read_conn(&mut self, idx: u32) -> ReadResult {
        let max_frame = self.deps.config.max_frame;
        let mut total = 0usize;
        let mut got_any = false;
        loop {
            let conn = match self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                Some(c) => c,
                None => return ReadResult::Gone,
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.close_conn(idx, "eof");
                    return ReadResult::Gone;
                }
                Ok(n) => {
                    got_any = true;
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    conn.idle_level = 0;
                    conn.idle_skip = 0;
                    total += n;
                    if !self.parse_frames(idx, max_frame) {
                        return ReadResult::Gone;
                    }
                    if total >= MAX_READ_PER_SWEEP {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx, "read error");
                    return ReadResult::Gone;
                }
            }
        }
        if got_any {
            ReadResult::Progress
        } else {
            ReadResult::Quiet
        }
    }

    /// Parse every complete frame in `rbuf`; returns `false` when the
    /// connection was closed (protocol violation).
    fn parse_frames(&mut self, idx: u32, max_frame: usize) -> bool {
        let mut consumed = 0usize;
        loop {
            enum Parsed {
                // Boxed: a parsed Message dwarfs the other variants.
                Msg(Box<Message>),
                NeedMore,
                Bad(&'static str),
            }
            let parsed = {
                let conn = match self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                    Some(c) => c,
                    None => return false,
                };
                let buf = &conn.rbuf[consumed..];
                if buf.len() < 4 {
                    Parsed::NeedMore
                } else {
                    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
                    if len < 2 {
                        Parsed::Bad("undersized frame")
                    } else if len > max_frame {
                        Parsed::Bad("oversized frame")
                    } else if buf.len() < 4 + len {
                        Parsed::NeedMore
                    } else {
                        match Message::from_payload(&buf[4..4 + len]) {
                            Ok(msg) => {
                                consumed += 4 + len;
                                Parsed::Msg(Box::new(msg))
                            }
                            Err(_) => Parsed::Bad("bad payload"),
                        }
                    }
                }
            };
            match parsed {
                Parsed::Msg(msg) => {
                    if !self.dispatch(idx, *msg) {
                        return false;
                    }
                }
                Parsed::NeedMore => break,
                Parsed::Bad(why) => {
                    self.close_conn(idx, why);
                    return false;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
            if consumed > 0 {
                conn.rbuf.drain(..consumed);
            }
            // Track mid-frame stalls; release the buffer when fully
            // parsed so an idle connection holds no payload memory.
            if conn.rbuf.is_empty() {
                conn.partial_since = None;
                if conn.rbuf.capacity() > READ_CHUNK {
                    conn.rbuf.shrink_to_fit();
                }
            } else if conn.partial_since.is_none() {
                conn.partial_since = Some(Instant::now());
            }
        }
        true
    }

    /// Route one parsed request. Returns `false` when the connection was
    /// closed.
    fn dispatch(&mut self, idx: u32, msg: Message) -> bool {
        let token;
        let seq;
        let attested;
        {
            let conn = match self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                Some(c) => c,
                None => return false,
            };
            token = ConnToken { idx, gen: conn.gen };
            attested = conn.attested;
            // Peer frames are fire-and-forget: no reply slot.
            if let Message::Peer(peer_msg) = msg {
                return match (&self.deps.peer_tx, attested) {
                    (Some(tx), true) => {
                        let _ = tx.send(peer_msg);
                        true
                    }
                    _ => {
                        let s = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pending.insert(
                            s,
                            (
                                Message::Rejected(
                                    "peer traffic requires an attested connection".into(),
                                ),
                                true,
                            ),
                        );
                        self.pump_out(idx);
                        true
                    }
                };
            }
            seq = conn.next_seq;
            conn.next_seq += 1;
        }
        let ready = match msg {
            Message::Ping => Some((Message::Pong, false)),
            Message::GetPkTx => Some((Message::PkTxIs(self.deps.pk_tx), false)),
            Message::GetAttestation => Some((
                match &self.deps.report {
                    Some(r) => Message::AttestationIs(r.clone()),
                    None => Message::Rejected("node runs without a TEE".into()),
                },
                false,
            )),
            m @ (Message::SubmitTx(_)
            | Message::SubmitTxWait(_)
            | Message::GetReceipt(_)
            | Message::GetStatus
            | Message::JoinRequest { .. }
            | Message::StateSyncReq { .. }) => {
                let is_submit = matches!(m, Message::SubmitTx(_) | Message::SubmitTxWait(_));
                match self.deps.work.try_push(Work {
                    conn: token,
                    seq,
                    msg: m,
                    attested,
                }) {
                    Ok(()) => None,
                    Err(_) => {
                        if is_submit {
                            self.deps.stats.busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Some((Message::Busy, false))
                    }
                }
            }
            // A response kind arriving at the server is protocol abuse:
            // answer once, then close (same verdict as the threaded
            // path).
            other => Some((
                Message::Rejected(format!("unexpected message kind {:#04x}", other.kind())),
                true,
            )),
        };
        if let Some((reply, close)) = ready {
            if let Some(conn) = self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                conn.pending.insert(seq, (reply, close));
            }
        }
        true
    }

    /// Move in-order replies into the write buffer and flush what the
    /// socket will take. Returns true when bytes moved.
    fn pump_out(&mut self, idx: u32) -> bool {
        let write_buf_limit = self.deps.config.write_buf_limit;
        let mut progressed = false;
        let close_now = {
            let conn = match self.conns.get_mut(idx as usize).and_then(Option::as_mut) {
                Some(c) => c,
                None => return false,
            };
            // Sequence replies strictly in request order.
            while let Some((msg, close)) = conn.pending.remove(&conn.next_reply) {
                conn.wbuf.extend_from_slice(&msg.to_frame());
                conn.next_reply += 1;
                progressed = true;
                if close {
                    conn.closing = true;
                    break;
                }
            }
            // Nonblocking flush.
            let mut dead = false;
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() && !conn.wbuf.is_empty() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
            if dead {
                Some("write error")
            } else if conn.wbuf.len() - conn.wpos > write_buf_limit {
                // Slow reader: it stopped draining replies. Cut it loose
                // rather than buffering without bound.
                Some("slow reader (write buffer over limit)")
            } else if conn.closing && conn.wpos == conn.wbuf.len() {
                Some("close after reply")
            } else {
                None
            }
        };
        if let Some(why) = close_now {
            self.close_conn(idx, why);
        }
        progressed
    }

    fn close_conn(&mut self, idx: u32, _why: &str) {
        if let Some(slot) = self.conns.get_mut(idx as usize) {
            if let Some(conn) = slot.take() {
                // Undeliverable parked replies are accounted, not silent.
                let lost = conn.pending.len() as u64;
                if lost > 0 {
                    self.deps
                        .stats
                        .reply_drops
                        .fetch_add(lost, Ordering::Relaxed);
                }
                self.live -= 1;
                // Invalidate every outstanding token for this slot.
                self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
                self.free.push(idx);
                drop(conn);
            }
        }
    }
}

enum ReadResult {
    Progress,
    Quiet,
    Gone,
}
