//! Length-prefixed frame codec and the T-Protocol wire message set.
//!
//! Wire layout of one frame:
//!
//! ```text
//! ┌────────────┬───────────┬────────┬───────────────┐
//! │ len: u32le │ ver: u8   │ kind:u8│ body…         │
//! └────────────┴───────────┴────────┴───────────────┘
//!               └────────── len bytes ──────────────┘
//! ```
//!
//! `len` counts the version byte, the kind byte and the body. A frame
//! longer than the configured maximum is rejected *before* any allocation
//! proportional to the claimed length — a malicious peer cannot make the
//! node allocate gigabytes off a 4-byte header.
//!
//! Everything inside a frame is attacker-visible: confidentiality rests
//! entirely on the T-Protocol envelope and receipt sealing carried in the
//! bodies, **not** on the transport (no TLS — the server itself is
//! untrusted in CONFIDE's threat model, §3.3).

use confide_consensus::SignedPeerMsg;
use confide_core::tx::WireTx;
use confide_tee::attestation::Report;
use std::io::{Read, Write};

/// Wire protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Default maximum frame length (version + kind + body), 1 MiB.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Frame-level failures. Every arm is typed; no parser panics.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Peer closed the connection mid-frame.
    Truncated,
    /// The length prefix exceeds the configured maximum.
    Oversized {
        /// Claimed frame length.
        claimed: usize,
        /// Configured maximum.
        max: usize,
    },
    /// Frame shorter than the version + kind header.
    Undersized,
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown message kind byte.
    BadKind(u8),
    /// Body failed to parse for the claimed kind.
    BadPayload,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Truncated => f.write_str("connection closed mid-frame"),
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds maximum {max}")
            }
            FrameError::Undersized => f.write_str("frame shorter than header"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            FrameError::BadPayload => f.write_str("malformed message body"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A T-Protocol wire message. Requests have kinds < 0x80, responses
/// ≥ 0x80, so a peer can always tell which side of the conversation a
/// frame belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    // ── requests ────────────────────────────────────────────────────────
    /// Submit a transaction; the server replies [`Message::Accepted`] as
    /// soon as the transaction is enqueued (or [`Message::Busy`] /
    /// [`Message::Rejected`]).
    SubmitTx(WireTx),
    /// Submit a transaction and hold the response until the block that
    /// contains it commits; the reply is [`Message::Committed`].
    SubmitTxWait(WireTx),
    /// Fetch the stored (sealed, for confidential transactions) receipt
    /// for a transaction hash.
    GetReceipt([u8; 32]),
    /// Fetch the consortium envelope key `pk_tx`.
    GetPkTx,
    /// Fetch the attestation report binding `pk_tx` to the CS enclave.
    GetAttestation,
    /// Liveness probe.
    Ping,
    /// K-Protocol rejoin, step 1 over the wire: the joiner's quoted
    /// ephemeral key ([`confide_core::keys::JoinOffer`]). The member
    /// verifies it against the joiner platform's *consortium-registered*
    /// attestation root — nothing in this frame is trusted by itself.
    JoinRequest {
        /// The joiner KM enclave's ephemeral X25519 public key.
        eph_pk: [u8; 32],
        /// Remote-attestation quote binding `eph_pk` and the expected
        /// `pk_tx` fingerprint.
        report: Report,
    },
    /// A PBFT consensus message between consortium members, wrapped in the
    /// sender's transferable signature (verified by the replica before
    /// processing). Fire-and-forget (no response frame), and only honoured
    /// on connections that completed the K-Protocol attestation handshake.
    Peer(SignedPeerMsg),
    /// Request a chunk of the peer's block WAL starting at byte `from`
    /// (peers only, attested connections only). Drives crash/partition
    /// catch-up: the WAL is deterministic and byte-identical across
    /// replicas, so a byte-offset cursor is a consistent chain cursor.
    StateSyncReq {
        /// Byte offset into the serving replica's WAL.
        from: u64,
        /// Maximum chunk size the requester will accept.
        max: u32,
        /// The requester's current chain height; the server ships quorum
        /// certificates for heights above this alongside the chunk.
        have_height: u64,
    },
    /// Fetch the node's consensus status (view, leader, height, root).
    GetStatus,

    // ── responses ───────────────────────────────────────────────────────
    /// Transaction enqueued for the next block; identified by wire hash.
    Accepted([u8; 32]),
    /// Transaction committed; carries the receipt bytes (sealed under
    /// `k_tx` for confidential transactions, plain encoding for public).
    Committed {
        /// Whether the receipt bytes are sealed.
        sealed: bool,
        /// The receipt bytes.
        receipt: Vec<u8>,
    },
    /// The batching queue is full — explicit backpressure, retry later.
    /// Never a silent drop.
    Busy,
    /// Transaction failed validation or execution.
    Rejected(String),
    /// Stored receipt bytes for a [`Message::GetReceipt`].
    ReceiptIs(Vec<u8>),
    /// No receipt stored under the requested hash (yet).
    NotFound,
    /// The consortium envelope key.
    PkTxIs([u8; 32]),
    /// Attestation report over the CS enclave.
    AttestationIs(Report),
    /// Liveness answer.
    Pong,
    /// K-Protocol rejoin, step 2: the member's wrapped consortium secrets
    /// plus its counter-quote (mutual attestation). The joiner verifies
    /// the counter-quote against the member's registered attestation root
    /// before unwrapping.
    JoinApprove {
        /// The session-wrapped consortium secrets.
        blob: Vec<u8>,
        /// The member KM enclave's counter-quote.
        member_report: Report,
    },
    /// This node is not the current PBFT primary; resubmit to `leader`.
    NotPrimary {
        /// Advertised `host:port` of the current primary.
        leader: String,
    },
    /// One WAL chunk answering a [`Message::StateSyncReq`].
    StateSyncResp {
        /// The serving replica's chain height.
        height: u64,
        /// Total WAL length in bytes at the serving replica.
        total: u64,
        /// Byte offset this chunk starts at.
        offset: u64,
        /// The chunk (empty when `offset >= total`).
        bytes: Vec<u8>,
        /// Encoded quorum certificates (`QuorumCert::encode`) for heights
        /// the requester is missing, byte-budgeted per response. The
        /// joiner verifies these against the consortium key table before
        /// applying the corresponding blocks — it never has to trust the
        /// serving peer.
        certs: Vec<Vec<u8>>,
    },
    /// Consensus status answering a [`Message::GetStatus`].
    StatusIs(NodeStatus),
}

/// A node's consensus-level status snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node's consortium id.
    pub node_id: u32,
    /// Current PBFT view (0 and leader 0 for single-node deployments).
    pub view: u64,
    /// Primary of the current view.
    pub leader: u32,
    /// Chain height (last executed sequence).
    pub height: u64,
    /// Current state root.
    pub state_root: [u8; 32],
    /// View installations survived since process start.
    pub view_changes: u64,
    /// Blocks applied via state sync since process start.
    pub sync_blocks: u64,
    /// Equivocation evidence records persisted since process start.
    pub evidence: u64,
}

// Message kind bytes.
const K_SUBMIT: u8 = 0x01;
const K_SUBMIT_WAIT: u8 = 0x02;
const K_GET_RECEIPT: u8 = 0x03;
const K_GET_PK_TX: u8 = 0x04;
const K_GET_ATTESTATION: u8 = 0x05;
const K_PING: u8 = 0x06;
const K_JOIN_REQUEST: u8 = 0x07;
pub(crate) const K_PEER: u8 = 0x10;
const K_STATE_SYNC_REQ: u8 = 0x11;
const K_GET_STATUS: u8 = 0x12;
const K_ACCEPTED: u8 = 0x81;
const K_COMMITTED: u8 = 0x82;
const K_BUSY: u8 = 0x83;
const K_REJECTED: u8 = 0x84;
const K_RECEIPT_IS: u8 = 0x85;
const K_NOT_FOUND: u8 = 0x86;
const K_PK_TX_IS: u8 = 0x87;
const K_ATTESTATION_IS: u8 = 0x88;
const K_PONG: u8 = 0x89;
const K_JOIN_APPROVE: u8 = 0x8A;
const K_NOT_PRIMARY: u8 = 0x8B;
const K_STATE_SYNC_RESP: u8 = 0x8C;
const K_STATUS_IS: u8 = 0x8D;

/// Serialize an attestation report (fixed-width fields, 202 bytes).
fn encode_report(r: &Report) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 32 + 2 + 64 + 8 + 64);
    out.extend_from_slice(&r.mrenclave);
    out.extend_from_slice(&r.mrsigner);
    out.extend_from_slice(&r.isv_svn.to_le_bytes());
    out.extend_from_slice(&r.report_data);
    out.extend_from_slice(&r.platform_id.to_le_bytes());
    out.extend_from_slice(&r.signature.0);
    out
}

/// Parse an attestation report.
fn decode_report(bytes: &[u8]) -> Result<Report, FrameError> {
    if bytes.len() != 202 {
        return Err(FrameError::BadPayload);
    }
    let mut mrenclave = [0u8; 32];
    mrenclave.copy_from_slice(&bytes[..32]);
    let mut mrsigner = [0u8; 32];
    mrsigner.copy_from_slice(&bytes[32..64]);
    let isv_svn = u16::from_le_bytes([bytes[64], bytes[65]]);
    let mut report_data = [0u8; 64];
    report_data.copy_from_slice(&bytes[66..130]);
    let platform_id = u64::from_le_bytes(bytes[130..138].try_into().expect("8 bytes"));
    let mut sig = [0u8; 64];
    sig.copy_from_slice(&bytes[138..202]);
    Ok(Report {
        mrenclave,
        mrsigner,
        isv_svn,
        report_data,
        platform_id,
        signature: confide_crypto::ed25519::Signature(sig),
    })
}

impl Message {
    /// The kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            Message::SubmitTx(_) => K_SUBMIT,
            Message::SubmitTxWait(_) => K_SUBMIT_WAIT,
            Message::GetReceipt(_) => K_GET_RECEIPT,
            Message::GetPkTx => K_GET_PK_TX,
            Message::GetAttestation => K_GET_ATTESTATION,
            Message::Ping => K_PING,
            Message::JoinRequest { .. } => K_JOIN_REQUEST,
            Message::Peer(_) => K_PEER,
            Message::StateSyncReq { .. } => K_STATE_SYNC_REQ,
            Message::GetStatus => K_GET_STATUS,
            Message::Accepted(_) => K_ACCEPTED,
            Message::Committed { .. } => K_COMMITTED,
            Message::Busy => K_BUSY,
            Message::Rejected(_) => K_REJECTED,
            Message::ReceiptIs(_) => K_RECEIPT_IS,
            Message::NotFound => K_NOT_FOUND,
            Message::PkTxIs(_) => K_PK_TX_IS,
            Message::AttestationIs(_) => K_ATTESTATION_IS,
            Message::Pong => K_PONG,
            Message::JoinApprove { .. } => K_JOIN_APPROVE,
            Message::NotPrimary { .. } => K_NOT_PRIMARY,
            Message::StateSyncResp { .. } => K_STATE_SYNC_RESP,
            Message::StatusIs(_) => K_STATUS_IS,
        }
    }

    /// Serialize the message body (everything after the kind byte).
    fn encode_body(&self) -> Vec<u8> {
        match self {
            Message::SubmitTx(tx) | Message::SubmitTxWait(tx) => tx.encode(),
            Message::GetReceipt(h) | Message::Accepted(h) | Message::PkTxIs(h) => h.to_vec(),
            Message::Committed { sealed, receipt } => {
                let mut out = Vec::with_capacity(1 + receipt.len());
                out.push(*sealed as u8);
                out.extend_from_slice(receipt);
                out
            }
            Message::Rejected(reason) => reason.as_bytes().to_vec(),
            Message::ReceiptIs(bytes) => bytes.clone(),
            Message::AttestationIs(report) => encode_report(report),
            Message::JoinRequest { eph_pk, report } => {
                let mut out = Vec::with_capacity(32 + 202);
                out.extend_from_slice(eph_pk);
                out.extend_from_slice(&encode_report(report));
                out
            }
            Message::JoinApprove {
                blob,
                member_report,
            } => {
                let mut out = Vec::with_capacity(4 + blob.len() + 202);
                out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                out.extend_from_slice(blob);
                out.extend_from_slice(&encode_report(member_report));
                out
            }
            Message::Peer(msg) => msg.encode(),
            Message::StateSyncReq {
                from,
                max,
                have_height,
            } => {
                let mut out = Vec::with_capacity(20);
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
                out.extend_from_slice(&have_height.to_le_bytes());
                out
            }
            Message::NotPrimary { leader } => leader.as_bytes().to_vec(),
            Message::StateSyncResp {
                height,
                total,
                offset,
                bytes,
                certs,
            } => {
                let cert_bytes: usize = certs.iter().map(|c| 4 + c.len()).sum();
                let mut out = Vec::with_capacity(24 + 4 + bytes.len() + 4 + cert_bytes);
                out.extend_from_slice(&height.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
                out.extend_from_slice(&(certs.len() as u32).to_le_bytes());
                for cert in certs {
                    out.extend_from_slice(&(cert.len() as u32).to_le_bytes());
                    out.extend_from_slice(cert);
                }
                out
            }
            Message::StatusIs(s) => {
                let mut out = Vec::with_capacity(4 + 8 + 4 + 8 + 32 + 8 + 8 + 8);
                out.extend_from_slice(&s.node_id.to_le_bytes());
                out.extend_from_slice(&s.view.to_le_bytes());
                out.extend_from_slice(&s.leader.to_le_bytes());
                out.extend_from_slice(&s.height.to_le_bytes());
                out.extend_from_slice(&s.state_root);
                out.extend_from_slice(&s.view_changes.to_le_bytes());
                out.extend_from_slice(&s.sync_blocks.to_le_bytes());
                out.extend_from_slice(&s.evidence.to_le_bytes());
                out
            }
            Message::GetPkTx
            | Message::GetAttestation
            | Message::Ping
            | Message::GetStatus
            | Message::Busy
            | Message::NotFound
            | Message::Pong => Vec::new(),
        }
    }

    /// Parse a message from its kind byte and body.
    fn decode(kind: u8, body: &[u8]) -> Result<Message, FrameError> {
        let take32 = |b: &[u8]| -> Result<[u8; 32], FrameError> {
            if b.len() != 32 {
                return Err(FrameError::BadPayload);
            }
            let mut out = [0u8; 32];
            out.copy_from_slice(b);
            Ok(out)
        };
        let empty = |b: &[u8], m: Message| -> Result<Message, FrameError> {
            if b.is_empty() {
                Ok(m)
            } else {
                Err(FrameError::BadPayload)
            }
        };
        match kind {
            K_SUBMIT => Ok(Message::SubmitTx(
                WireTx::decode(body).map_err(|_| FrameError::BadPayload)?,
            )),
            K_SUBMIT_WAIT => Ok(Message::SubmitTxWait(
                WireTx::decode(body).map_err(|_| FrameError::BadPayload)?,
            )),
            K_GET_RECEIPT => Ok(Message::GetReceipt(take32(body)?)),
            K_GET_PK_TX => empty(body, Message::GetPkTx),
            K_GET_ATTESTATION => empty(body, Message::GetAttestation),
            K_PING => empty(body, Message::Ping),
            K_ACCEPTED => Ok(Message::Accepted(take32(body)?)),
            K_COMMITTED => {
                let (&sealed, receipt) = body.split_first().ok_or(FrameError::BadPayload)?;
                if sealed > 1 {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::Committed {
                    sealed: sealed == 1,
                    receipt: receipt.to_vec(),
                })
            }
            K_BUSY => empty(body, Message::Busy),
            K_REJECTED => Ok(Message::Rejected(
                String::from_utf8(body.to_vec()).map_err(|_| FrameError::BadPayload)?,
            )),
            K_RECEIPT_IS => Ok(Message::ReceiptIs(body.to_vec())),
            K_NOT_FOUND => empty(body, Message::NotFound),
            K_PK_TX_IS => Ok(Message::PkTxIs(take32(body)?)),
            K_ATTESTATION_IS => Ok(Message::AttestationIs(decode_report(body)?)),
            K_PONG => empty(body, Message::Pong),
            K_JOIN_REQUEST => {
                if body.len() != 32 + 202 {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::JoinRequest {
                    eph_pk: take32(&body[..32])?,
                    report: decode_report(&body[32..])?,
                })
            }
            K_JOIN_APPROVE => {
                if body.len() < 4 {
                    return Err(FrameError::BadPayload);
                }
                let blob_len = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
                if body.len() != 4 + blob_len + 202 {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::JoinApprove {
                    blob: body[4..4 + blob_len].to_vec(),
                    member_report: decode_report(&body[4 + blob_len..])?,
                })
            }
            K_PEER => Ok(Message::Peer(
                SignedPeerMsg::decode(body).map_err(|_| FrameError::BadPayload)?,
            )),
            K_STATE_SYNC_REQ => {
                if body.len() != 20 {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::StateSyncReq {
                    from: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                    max: u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")),
                    have_height: u64::from_le_bytes(body[12..].try_into().expect("8 bytes")),
                })
            }
            K_GET_STATUS => empty(body, Message::GetStatus),
            K_NOT_PRIMARY => Ok(Message::NotPrimary {
                leader: String::from_utf8(body.to_vec()).map_err(|_| FrameError::BadPayload)?,
            }),
            K_STATE_SYNC_RESP => {
                if body.len() < 28 {
                    return Err(FrameError::BadPayload);
                }
                let chunk_len =
                    u32::from_le_bytes(body[24..28].try_into().expect("4 bytes")) as usize;
                let mut pos = 28usize;
                if body.len() < pos + chunk_len + 4 {
                    return Err(FrameError::BadPayload);
                }
                let bytes = body[pos..pos + chunk_len].to_vec();
                pos += chunk_len;
                let cert_count =
                    u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                pos += 4;
                // An absurd count can't allocate more than the body holds:
                // each cert costs at least its 4-byte length prefix.
                if cert_count > body.len().saturating_sub(pos) / 4 + 1 {
                    return Err(FrameError::BadPayload);
                }
                let mut certs = Vec::with_capacity(cert_count);
                for _ in 0..cert_count {
                    if body.len() < pos + 4 {
                        return Err(FrameError::BadPayload);
                    }
                    let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"))
                        as usize;
                    pos += 4;
                    if body.len() < pos + len {
                        return Err(FrameError::BadPayload);
                    }
                    certs.push(body[pos..pos + len].to_vec());
                    pos += len;
                }
                if pos != body.len() {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::StateSyncResp {
                    height: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                    total: u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")),
                    offset: u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")),
                    bytes,
                    certs,
                })
            }
            K_STATUS_IS => {
                if body.len() != 4 + 8 + 4 + 8 + 32 + 8 + 8 + 8 {
                    return Err(FrameError::BadPayload);
                }
                Ok(Message::StatusIs(NodeStatus {
                    node_id: u32::from_le_bytes(body[..4].try_into().expect("4 bytes")),
                    view: u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")),
                    leader: u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")),
                    height: u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")),
                    state_root: take32(&body[24..56])?,
                    view_changes: u64::from_le_bytes(body[56..64].try_into().expect("8 bytes")),
                    sync_blocks: u64::from_le_bytes(body[64..72].try_into().expect("8 bytes")),
                    evidence: u64::from_le_bytes(body[72..80].try_into().expect("8 bytes")),
                }))
            }
            other => Err(FrameError::BadKind(other)),
        }
    }

    /// Serialize the full frame (length prefix included).
    pub fn to_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let len = (2 + body.len()) as u32;
        let mut out = Vec::with_capacity(4 + 2 + body.len());
        out.extend_from_slice(&len.to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&body);
        out
    }

    /// Parse one message out of a complete frame payload (the `len`
    /// bytes after the length prefix).
    pub fn from_payload(payload: &[u8]) -> Result<Message, FrameError> {
        if payload.len() < 2 {
            return Err(FrameError::Undersized);
        }
        if payload[0] != WIRE_VERSION {
            return Err(FrameError::BadVersion(payload[0]));
        }
        Message::decode(payload[1], &payload[2..])
    }
}

/// Write one frame to `w` (single `write_all`, so concurrent writers on
/// one socket never interleave partial frames).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), FrameError> {
    w.write_all(&msg.to_frame())?;
    Ok(())
}

/// Read exactly one frame from `r`, enforcing `max_frame`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary; EOF mid-frame is
/// [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Message>, FrameError> {
    let mut len4 = [0u8; 4];
    // First header byte decides clean-EOF vs truncation.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len4[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len > max_frame {
        return Err(FrameError::Oversized {
            claimed: len,
            max: max_frame,
        });
    }
    if len < 2 {
        return Err(FrameError::Undersized);
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Message::from_payload(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_consensus::{Keyring, PeerMsg};
    use confide_core::tx::{RawTx, SignedTx};
    use confide_crypto::ed25519::SigningKey;
    use confide_crypto::HmacDrbg;

    fn sample_tx() -> WireTx {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let raw = RawTx {
            sender: key.verifying_key().0,
            contract: [7u8; 32],
            method: "m".into(),
            args: b"args".to_vec(),
            nonce: 1,
        };
        WireTx::Public(SignedTx::sign(raw, &key))
    }

    fn sample_messages() -> Vec<Message> {
        let mut rng = HmacDrbg::from_u64(5);
        let kp = confide_crypto::envelope::EnvelopeKeyPair::generate(&mut rng);
        let env = confide_crypto::envelope::Envelope::seal(
            &kp.public(),
            &rng.gen32(),
            b"",
            b"x",
            &mut rng,
        )
        .unwrap();
        let fake_report = Report {
            mrenclave: [0xAA; 32],
            mrsigner: [0xBB; 32],
            isv_svn: 3,
            report_data: [0xCC; 64],
            platform_id: 99,
            signature: confide_crypto::ed25519::Signature([0xDD; 64]),
        };
        vec![
            Message::SubmitTx(sample_tx()),
            Message::SubmitTxWait(WireTx::Confidential(env)),
            Message::JoinRequest {
                eph_pk: [0x11; 32],
                report: fake_report.clone(),
            },
            Message::JoinApprove {
                blob: b"wrapped-secrets".to_vec(),
                member_report: fake_report,
            },
            Message::GetReceipt([9u8; 32]),
            Message::GetPkTx,
            Message::GetAttestation,
            Message::Ping,
            Message::Accepted([1u8; 32]),
            Message::Committed {
                sealed: true,
                receipt: b"cipher".to_vec(),
            },
            Message::Busy,
            Message::Rejected("replay".into()),
            Message::ReceiptIs(b"bytes".to_vec()),
            Message::NotFound,
            Message::PkTxIs([3u8; 32]),
            Message::Pong,
            Message::Peer(SignedPeerMsg::sign(
                0,
                &Keyring::deterministic(7, 0, 4).signer,
                PeerMsg::PrePrepare {
                    view: 0,
                    seq: 4,
                    txs: vec![sample_tx().encode(), vec![]],
                },
            )),
            Message::Peer(SignedPeerMsg::sign(
                2,
                &Keyring::deterministic(7, 2, 4).signer,
                PeerMsg::Prepare {
                    view: 1,
                    seq: 4,
                    digest: [0xEE; 32],
                    from: 2,
                },
            )),
            Message::Peer(SignedPeerMsg::sign(
                1,
                &Keyring::deterministic(7, 1, 4).signer,
                PeerMsg::Heartbeat {
                    view: 1,
                    from: 1,
                    last_exec: 4,
                },
            )),
            Message::StateSyncReq {
                from: 4096,
                max: 65536,
                have_height: 3,
            },
            Message::GetStatus,
            Message::NotPrimary {
                leader: "127.0.0.1:7001".into(),
            },
            Message::StateSyncResp {
                height: 9,
                total: 120_000,
                offset: 4096,
                bytes: vec![0xAB; 200],
                certs: vec![vec![0x01; 44], vec![0x02; 112]],
            },
            Message::StateSyncResp {
                height: 0,
                total: 0,
                offset: 0,
                bytes: Vec::new(),
                certs: Vec::new(),
            },
            Message::StatusIs(NodeStatus {
                node_id: 2,
                view: 1,
                leader: 1,
                height: 9,
                state_root: [0x55; 32],
                view_changes: 1,
                sync_blocks: 3,
                evidence: 2,
            }),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = msg.to_frame();
            let parsed = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap();
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn attestation_report_round_trips() {
        let platform = confide_tee::platform::TeePlatform::new(1, 1);
        let enclave = confide_tee::enclave::Enclave::create(
            &platform,
            confide_tee::enclave::EnclaveConfig::new(b"code".to_vec(), [2u8; 32], 3, 4096),
        )
        .unwrap();
        let report = Report::generate(&enclave, [7u8; 64]);
        let msg = Message::AttestationIs(report.clone());
        let frame = msg.to_frame();
        let parsed = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        let Message::AttestationIs(r) = parsed else {
            panic!("wrong kind");
        };
        assert_eq!(r, report);
        // And the parsed report still verifies.
        r.verify(&platform.attestation_public_key(), &enclave.mrenclave(), 3)
            .unwrap();
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[WIRE_VERSION, K_PING]);
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(FrameError::Oversized {
                claimed: 4294967295,
                max: 1024
            })
        ));
    }

    #[test]
    fn clean_eof_is_none_and_midframe_eof_is_truncated() {
        assert!(matches!(read_frame(&mut (&[][..]), 1024), Ok(None)));
        let frame = Message::Ping.to_frame();
        for cut in 1..frame.len() {
            assert!(
                matches!(
                    read_frame(&mut (&frame[..cut]), 1024),
                    Err(FrameError::Truncated)
                ),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_version_and_kind_rejected() {
        let mut frame = Message::Ping.to_frame();
        frame[4] = 42; // version byte
        assert!(matches!(
            read_frame(&mut frame.as_slice(), 1024),
            Err(FrameError::BadVersion(42))
        ));
        let mut frame = Message::Ping.to_frame();
        frame[5] = 0x7f; // unknown kind
        assert!(matches!(
            read_frame(&mut frame.as_slice(), 1024),
            Err(FrameError::BadKind(0x7f))
        ));
    }

    #[test]
    fn trailing_or_missing_body_bytes_rejected() {
        // Ping with a body.
        let mut frame = Message::Ping.to_frame();
        frame[0] = 3; // len 3: ver+kind+1 junk byte
        frame.push(0xcc);
        assert!(matches!(
            read_frame(&mut frame.as_slice(), 1024),
            Err(FrameError::BadPayload)
        ));
        // GetReceipt with a short hash.
        let msg = Message::GetReceipt([1u8; 32]);
        let mut frame = msg.to_frame();
        frame.truncate(frame.len() - 1);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            read_frame(&mut frame.as_slice(), 1024),
            Err(FrameError::BadPayload)
        ));
    }

    #[test]
    fn sync_resp_cert_framing_rejects_truncation_and_absurd_counts() {
        let msg = Message::StateSyncResp {
            height: 5,
            total: 100,
            offset: 0,
            bytes: vec![0xAB; 50],
            certs: vec![vec![0x01; 44]],
        };
        let frame = msg.to_frame();
        // Any truncation of the body must be rejected, never panic.
        for cut in 6..frame.len() {
            let mut short = frame[..cut].to_vec();
            let len = (short.len() - 4) as u32;
            short[..4].copy_from_slice(&len.to_le_bytes());
            assert!(
                matches!(
                    read_frame(&mut short.as_slice(), DEFAULT_MAX_FRAME),
                    Err(FrameError::BadPayload)
                ),
                "cut={cut}"
            );
        }
        // An absurd cert count must fail before allocating.
        let mut evil = frame.clone();
        let chunk_len = 50usize;
        let count_at = 4 + 2 + 28 + chunk_len;
        evil[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut evil.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadPayload)
        ));
    }
}
