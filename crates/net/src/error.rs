//! The consolidated error taxonomy of the `confide` workspace.
//!
//! Before this module, callers navigated ad-hoc `From` chains —
//! [`crate::client::NetError`] wrapping [`crate::frame::FrameError`]
//! wrapping `io::Error`, with `confide_core::node::NodeError` off to the
//! side — and matched on stringly nested variants to classify a failure.
//! [`Error`] is the one type the public client surface returns: a typed
//! [`ErrorKind`] for programmatic dispatch (`e.kind() == ErrorKind::Busy`),
//! a human message, and the full `source()` chain preserved for logging.

use crate::client::NetError;
use crate::frame::FrameError;
use std::error::Error as StdError;
use std::fmt;

/// Coarse, stable classification of a failure — what a caller should
/// *do* about it, not where it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Socket-level I/O failure (dial, read, write, timeout).
    Io,
    /// The peer violated the wire protocol (bad frame, unexpected kind,
    /// unexpected disconnect).
    Protocol,
    /// The server issued a terminal rejection; retrying the same bytes
    /// will not help.
    Rejected,
    /// Typed backpressure (queue or ring full, duplicate in flight) —
    /// transient, retry with backoff.
    Busy,
    /// The node is a cluster follower; resubmit at the leader carried in
    /// [`Error::leader`].
    NotPrimary,
    /// Attestation verification failed — the peer's key material must
    /// not be trusted.
    Attestation,
    /// Local cryptography failed (sealing, receipt decryption).
    Crypto,
    /// The client-side connection pool stayed exhausted for the whole
    /// wait window.
    Pool,
    /// A retry loop ran out of attempts; `source()` holds the final
    /// attempt's failure.
    Retries,
    /// Invalid configuration rejected before any I/O (builder
    /// validation).
    Config,
    /// A node-side execution/commit failure surfaced locally (in-process
    /// benches and embedded servers).
    Node,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Io => "io",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Rejected => "rejected",
            ErrorKind::Busy => "busy",
            ErrorKind::NotPrimary => "not-primary",
            ErrorKind::Attestation => "attestation",
            ErrorKind::Crypto => "crypto",
            ErrorKind::Pool => "pool",
            ErrorKind::Retries => "retries",
            ErrorKind::Config => "config",
            ErrorKind::Node => "node",
        };
        f.write_str(s)
    }
}

/// The top-level error of the `confide` facade (re-exported as
/// `confide::Error`).
#[derive(Debug)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    leader: Option<String>,
    source: Option<Box<dyn StdError + Send + Sync + 'static>>,
}

impl Error {
    /// Build an error with no source chain.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Error {
        Error {
            kind,
            message: message.into(),
            leader: None,
            source: None,
        }
    }

    /// Attach a source error (preserved through `source()`).
    pub fn with_source(
        mut self,
        source: impl Into<Box<dyn StdError + Send + Sync + 'static>>,
    ) -> Error {
        self.source = Some(source.into());
        self
    }

    /// The typed classification — the match target for callers.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// For [`ErrorKind::NotPrimary`]: the advertised leader address.
    pub fn leader(&self) -> Option<&str> {
        self.leader.as_deref()
    }

    /// Transient failures are worth retrying with backoff; terminal
    /// verdicts are not. (The [`crate::RetryPolicy`] loops use this.)
    pub fn is_transient(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::Busy | ErrorKind::Io | ErrorKind::Protocol | ErrorKind::Pool
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        self.source
            .as_ref()
            .map(|s| s.as_ref() as &(dyn StdError + 'static))
    }
}

impl From<NetError> for Error {
    fn from(e: NetError) -> Error {
        match e {
            NetError::Busy => Error::new(ErrorKind::Busy, "server busy"),
            NetError::Rejected(r) => Error::new(ErrorKind::Rejected, format!("rejected: {r}")),
            NetError::NotPrimary(leader) => {
                let mut err = Error::new(
                    ErrorKind::NotPrimary,
                    format!("not primary; leader is {leader}"),
                );
                err.leader = Some(leader);
                err
            }
            NetError::Crypto => Error::new(ErrorKind::Crypto, "cryptographic failure"),
            NetError::Attestation(m) => {
                Error::new(ErrorKind::Attestation, format!("attestation: {m}"))
            }
            NetError::PoolExhausted => {
                Error::new(ErrorKind::Pool, "connection pool exhausted").with_source(e)
            }
            NetError::Frame(FrameError::Io(_)) => {
                Error::new(ErrorKind::Io, "transport i/o failed").with_source(e)
            }
            NetError::Frame(_) | NetError::Disconnected | NetError::UnexpectedReply(_) => {
                Error::new(ErrorKind::Protocol, e.to_string()).with_source(e)
            }
            NetError::RetriesExhausted { attempts, .. } => Error::new(
                ErrorKind::Retries,
                format!("retries exhausted after {attempts} attempts"),
            )
            .with_source(e),
        }
    }
}

impl From<FrameError> for Error {
    fn from(e: FrameError) -> Error {
        Error::from(NetError::Frame(e))
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(ErrorKind::Io, "i/o failed").with_source(e)
    }
}

impl From<confide_core::node::NodeError> for Error {
    fn from(e: confide_core::node::NodeError) -> Error {
        Error::new(ErrorKind::Node, e.to_string()).with_source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn kinds_classify_and_sources_chain() {
        let io_err = io::Error::new(io::ErrorKind::ConnectionRefused, "refused");
        let net = NetError::Frame(FrameError::Io(io_err));
        let err = Error::from(net);
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(err.is_transient());
        // Walk the chain: Error -> NetError -> FrameError -> io::Error.
        let mut depth = 0;
        let mut cur: &dyn StdError = &err;
        while let Some(next) = cur.source() {
            depth += 1;
            cur = next;
        }
        assert!(depth >= 2, "source chain lost (depth {depth})");
        assert!(cur.to_string().contains("refused"));
    }

    #[test]
    fn not_primary_exposes_leader() {
        let err = Error::from(NetError::NotPrimary("10.0.0.7:9000".into()));
        assert_eq!(err.kind(), ErrorKind::NotPrimary);
        assert_eq!(err.leader(), Some("10.0.0.7:9000"));
        assert!(!err.is_transient());
    }

    #[test]
    fn terminal_verdicts_are_not_transient() {
        for e in [
            NetError::Rejected("bad signature".into()),
            NetError::Crypto,
            NetError::Attestation("svn too old".into()),
        ] {
            assert!(!Error::from(e).is_transient());
        }
        assert!(Error::from(NetError::Busy).is_transient());
    }

    #[test]
    fn retries_exhausted_keeps_the_last_failure_as_source() {
        let err = Error::from(NetError::RetriesExhausted {
            attempts: 6,
            last: Box::new(NetError::Busy),
        });
        assert_eq!(err.kind(), ErrorKind::Retries);
        let src = err.source().expect("source preserved");
        assert!(src.to_string().contains("6 attempts"));
    }
}
