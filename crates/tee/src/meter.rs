//! Virtual cycle accounting and the calibrated cost model.
//!
//! The simulator does real computation (real AES, real interpretation) but
//! wall-clock figures in the paper-reproduction harnesses come from a
//! *virtual* clock: components charge cycles into a shared [`CycleMeter`]
//! and the harness converts cycles to time at the paper's 3.7 GHz.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Calibration constants. Sources are given per field; see DESIGN.md §5.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// CPU frequency in Hz (paper testbed: Xeon E3-1240 v6 @ 3.7 GHz).
    pub cpu_hz: u64,
    /// Enclave transition, warm path (HotCalls: 8,314 cycles).
    pub transition_warm_cycles: u64,
    /// Enclave transition, cache-miss path (HotCalls: 14,160 cycles).
    pub transition_cold_cycles: u64,
    /// Marshalling cost per byte for copy-and-check ecall/ocall buffers.
    pub copy_check_cycles_per_byte: u64,
    /// Fixed pointer-validation cost when `user_check` skips the copy.
    pub user_check_cycles: u64,
    /// AES-GCM cycles per byte (hardware-class, Intel white paper ~1.3).
    pub aes_gcm_cycles_per_byte: u64,
    /// Fixed AEAD setup cost per seal/open (key schedule + J0 + tag).
    pub aes_gcm_fixed_cycles: u64,
    /// SHA-256 cycles per byte.
    pub sha256_cycles_per_byte: u64,
    /// X25519 + HKDF envelope-open cost (asymmetric path ≈ 0.1 ms, Table 1).
    pub envelope_open_cycles: u64,
    /// Ed25519 signature verification (≈ 0.22 ms per Table 1).
    pub sig_verify_cycles: u64,
    /// EPC page swap: encrypt-evict or decrypt-load one 4 KiB page.
    pub epc_swap_cycles_per_page: u64,
    /// Untrusted-side KV store point read (LSM lookup + block cache probe,
    /// ~14 µs — the DB work behind each GetStorage ocall).
    pub kv_read_cycles: u64,
    /// Untrusted-side KV store write (WAL append + memtable insert).
    pub kv_write_cycles: u64,
    /// Interpreter dispatch cost per CONFIDE-VM instruction.
    pub vm_cycles_per_instr: u64,
    /// Interpreter dispatch cost per EVM instruction (256-bit words, wide
    /// dispatch table — measured ~8–12× the Wasm-style VM per op).
    pub evm_cycles_per_instr: u64,
    /// In-enclave execution overhead for CONFIDE-VM, in permille: the MEE
    /// (Memory Encryption Engine) taxes cache-miss traffic and the EPC
    /// working set (§5.3 "hardware overhead with memory security and
    /// integrity check"). The compact i64 interpreter has a small working
    /// set, so the tax is light.
    pub tee_exec_overhead_vm_permille: u64,
    /// In-enclave execution overhead for the EVM, in permille: 256-bit
    /// stacks, word-granular memory and a wide dispatch table give the EVM
    /// interpreter several times the memory traffic per logical operation,
    /// so MEE/EPC pressure hits it much harder — the reason Figure 10's
    /// confidentiality slowdown is visibly larger for the EVM.
    pub tee_exec_overhead_evm_permille: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_hz: 3_700_000_000,
            transition_warm_cycles: 8_314,
            transition_cold_cycles: 14_160,
            copy_check_cycles_per_byte: 1,
            user_check_cycles: 120,
            aes_gcm_cycles_per_byte: 2,
            aes_gcm_fixed_cycles: 2_200,
            sha256_cycles_per_byte: 8,
            envelope_open_cycles: 370_000,
            sig_verify_cycles: 814_000,
            epc_swap_cycles_per_page: 40_000,
            kv_read_cycles: 50_000,
            kv_write_cycles: 100_000,
            vm_cycles_per_instr: 28,
            evm_cycles_per_instr: 260,
            tee_exec_overhead_vm_permille: 45,
            tee_exec_overhead_evm_permille: 320,
        }
    }
}

impl CostModel {
    /// Convert a cycle count to nanoseconds at this model's frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        // ns = cycles * 1e9 / hz; use u128 to avoid overflow.
        ((cycles as u128 * 1_000_000_000u128) / self.cpu_hz as u128) as u64
    }

    /// Convert cycles to milliseconds as f64 (for report printing).
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cpu_hz as f64 * 1e3
    }
}

/// A shared, thread-safe virtual cycle counter.
#[derive(Clone, Default)]
pub struct CycleMeter {
    cycles: Arc<AtomicU64>,
}

impl CycleMeter {
    /// New meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` cycles.
    pub fn charge(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Total cycles charged so far.
    pub fn total(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiment runs).
    pub fn reset(&self) {
        self.cycles.store(0, Ordering::Relaxed);
    }

    /// Run `f` and return `(result, cycles_charged_during_f)`.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let before = self.total();
        let out = f();
        (out, self.total() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates() {
        let m = CycleMeter::new();
        m.charge(100);
        m.charge(50);
        assert_eq!(m.total(), 150);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn meter_is_shared_between_clones() {
        let m = CycleMeter::new();
        let m2 = m.clone();
        m.charge(7);
        m2.charge(3);
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn measure_captures_delta() {
        let m = CycleMeter::new();
        m.charge(5);
        let (v, d) = m.measure(|| {
            m.charge(42);
            "ok"
        });
        assert_eq!(v, "ok");
        assert_eq!(d, 42);
    }

    #[test]
    fn cycles_to_time_at_paper_frequency() {
        let model = CostModel::default();
        // 3.7e9 cycles = 1 second.
        assert_eq!(model.cycles_to_ns(3_700_000_000), 1_000_000_000);
        // An ocall (warm) ≈ 2.25 µs, in the paper's "3–4 µs" ballpark for cold.
        let ocall_ns = model.cycles_to_ns(model.transition_cold_cycles);
        assert!((3_000..5_000).contains(&ocall_ns), "{ocall_ns}");
    }

    #[test]
    fn table1_costs_in_range() {
        let model = CostModel::default();
        // Decryption ≈ 0.10 ms, verification ≈ 0.22 ms (Table 1).
        let dec_ms = model.cycles_to_ms(model.envelope_open_cycles);
        let ver_ms = model.cycles_to_ms(model.sig_verify_cycles);
        assert!((0.05..0.2).contains(&dec_ms), "{dec_ms}");
        assert!((0.15..0.3).contains(&ver_ms), "{ver_ms}");
    }
}
