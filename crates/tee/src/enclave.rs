//! Enclave lifecycle and boundary crossings.
//!
//! An [`Enclave`] is created from code bytes (measured into MRENCLAVE, as
//! real SGX measures pages at build), allocates its heap from the shared
//! EPC, and exposes cost-accounted [`Enclave::ecall`] / [`Enclave::ocall`]
//! crossings. The marshalling mode per crossing mirrors the paper's EDL
//! discussion (§5.3 *Optimized data structure*): `[in]/[out]` buffers are
//! copied and checked byte-by-byte, while `user_check` skips the copy for a
//! fixed validation cost — the optimization CONFIDE applies to its large,
//! flattened data structures.

use crate::epc::{EpcAlloc, EpcError};
use crate::meter::{CostModel, CycleMeter};
use crate::platform::TeePlatform;
use confide_crypto::sha256;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies an enclave instance on its platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnclaveId(pub u64);

/// How a buffer crosses the enclave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingMode {
    /// EDL `[in]`/`[out]`: proxy functions copy and bounds-check the buffer.
    CopyAndCheck,
    /// EDL `user_check`: pointer passed through; fixed validation cost,
    /// programmer owns memory safety.
    UserCheck,
}

/// Errors from enclave operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The enclave was destroyed (the paper destroys KM Enclave early).
    Destroyed,
    /// EPC allocation failure.
    Epc(EpcError),
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::Destroyed => f.write_str("enclave has been destroyed"),
            EnclaveError::Epc(e) => write!(f, "EPC error: {e}"),
        }
    }
}

impl std::error::Error for EnclaveError {}

impl From<EpcError> for EnclaveError {
    fn from(e: EpcError) -> Self {
        EnclaveError::Epc(e)
    }
}

/// Static configuration measured into the enclave identity.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// The enclave "binary" — any bytes; hashed into MRENCLAVE.
    pub code: Vec<u8>,
    /// Signer identity (MRSIGNER analogue).
    pub signer: [u8; 32],
    /// Security version number; D-Protocol binds state AAD to it.
    pub isv_svn: u16,
    /// Heap size reserved from the EPC at creation.
    pub heap_bytes: usize,
}

impl EnclaveConfig {
    /// Convenience constructor.
    pub fn new(
        code: impl Into<Vec<u8>>,
        signer: [u8; 32],
        isv_svn: u16,
        heap_bytes: usize,
    ) -> Self {
        EnclaveConfig {
            code: code.into(),
            signer,
            isv_svn,
            heap_bytes,
        }
    }
}

/// Per-enclave transition counters (feeds the monitor system and the
/// ocall-batching experiments).
#[derive(Debug, Default, Clone, Copy)]
pub struct TransitionStats {
    /// Number of ecalls performed.
    pub ecalls: u64,
    /// Number of ocalls performed.
    pub ocalls: u64,
    /// Bytes marshalled with copy-and-check.
    pub copied_bytes: u64,
}

/// A live (or destroyed) enclave instance.
pub struct Enclave {
    id: EnclaveId,
    platform: Arc<TeePlatform>,
    mrenclave: [u8; 32],
    signer: [u8; 32],
    isv_svn: u16,
    heap: EpcAlloc,
    heap_bytes: usize,
    destroyed: AtomicBool,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    copied_bytes: AtomicU64,
    /// Warm-transition modelling: the first crossing after a while is cold.
    warm: AtomicBool,
}

static NEXT_ENCLAVE_ID: AtomicU64 = AtomicU64::new(1);

impl Enclave {
    /// Create and initialize an enclave on `platform`: measures the code,
    /// reserves heap from the EPC.
    pub fn create(
        platform: &Arc<TeePlatform>,
        config: EnclaveConfig,
    ) -> Result<Enclave, EnclaveError> {
        let mrenclave = measure(&config.code, config.isv_svn);
        let heap = platform.epc().alloc(config.heap_bytes.max(1))?;
        Ok(Enclave {
            id: EnclaveId(NEXT_ENCLAVE_ID.fetch_add(1, Ordering::Relaxed)),
            platform: Arc::clone(platform),
            mrenclave,
            signer: config.signer,
            isv_svn: config.isv_svn,
            heap,
            heap_bytes: config.heap_bytes,
            destroyed: AtomicBool::new(false),
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            copied_bytes: AtomicU64::new(0),
            warm: AtomicBool::new(false),
        })
    }

    /// This enclave's measurement (MRENCLAVE analogue).
    pub fn mrenclave(&self) -> [u8; 32] {
        self.mrenclave
    }

    /// Signer identity (MRSIGNER analogue).
    pub fn signer(&self) -> [u8; 32] {
        self.signer
    }

    /// Security version.
    pub fn isv_svn(&self) -> u16 {
        self.isv_svn
    }

    /// Instance id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The platform hosting this enclave.
    pub fn platform(&self) -> &Arc<TeePlatform> {
        &self.platform
    }

    /// Heap bytes reserved at creation.
    pub fn heap_bytes(&self) -> usize {
        self.heap_bytes
    }

    /// Simulate the enclave touching `len` bytes of its heap at `offset`
    /// (drives EPC paging).
    pub fn touch_heap(&self, offset: usize, len: usize) -> Result<(), EnclaveError> {
        self.check_alive()?;
        self.platform.epc().touch(self.heap, offset, len)?;
        Ok(())
    }

    /// Enter the enclave: charges a transition plus marshalling for
    /// `in_bytes`, runs `body` "inside", charges marshalling for the
    /// returned byte count on the way out.
    pub fn ecall<T>(
        &self,
        mode: CrossingMode,
        in_bytes: usize,
        body: impl FnOnce() -> (T, usize),
    ) -> Result<T, EnclaveError> {
        self.check_alive()?;
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.charge_transition();
        self.charge_marshalling(mode, in_bytes);
        let (out, out_bytes) = body();
        self.charge_marshalling(mode, out_bytes);
        Ok(out)
    }

    /// Exit the enclave (ocall): same cost structure, opposite direction.
    pub fn ocall<T>(
        &self,
        mode: CrossingMode,
        out_bytes: usize,
        body: impl FnOnce() -> (T, usize),
    ) -> Result<T, EnclaveError> {
        self.check_alive()?;
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.charge_transition();
        self.charge_marshalling(mode, out_bytes);
        let (ret, in_bytes) = body();
        self.charge_marshalling(mode, in_bytes);
        Ok(ret)
    }

    /// Destroy the enclave, releasing its EPC pages. Mirrors the paper's
    /// "KM Enclave … will be destroyed as soon as possible to release EPC
    /// memory" (§5.3).
    pub fn destroy(&self) -> Result<(), EnclaveError> {
        if self.destroyed.swap(true, Ordering::SeqCst) {
            return Err(EnclaveError::Destroyed);
        }
        self.platform.epc().free(self.heap)?;
        Ok(())
    }

    /// Whether destroy() has been called.
    pub fn is_destroyed(&self) -> bool {
        self.destroyed.load(Ordering::SeqCst)
    }

    /// Transition counters.
    pub fn stats(&self) -> TransitionStats {
        TransitionStats {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            copied_bytes: self.copied_bytes.load(Ordering::Relaxed),
        }
    }

    fn check_alive(&self) -> Result<(), EnclaveError> {
        if self.is_destroyed() {
            Err(EnclaveError::Destroyed)
        } else {
            Ok(())
        }
    }

    fn charge_transition(&self) {
        let model = self.platform.model();
        let cycles = if self.warm.swap(true, Ordering::Relaxed) {
            model.transition_warm_cycles
        } else {
            model.transition_cold_cycles
        };
        self.platform.meter().charge(cycles);
    }

    fn charge_marshalling(&self, mode: CrossingMode, bytes: usize) {
        let model: CostModel = self.platform.model();
        let meter: &CycleMeter = self.platform.meter();
        match mode {
            CrossingMode::CopyAndCheck => {
                self.copied_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                meter.charge(model.copy_check_cycles_per_byte * bytes as u64);
            }
            CrossingMode::UserCheck => {
                meter.charge(model.user_check_cycles);
            }
        }
    }
}

impl Drop for Enclave {
    fn drop(&mut self) {
        if !self.is_destroyed() {
            let _ = self.destroy();
        }
    }
}

/// Measure enclave code the way SGX builds MRENCLAVE: a digest over the
/// code pages and security-relevant metadata.
pub fn measure(code: &[u8], isv_svn: u16) -> [u8; 32] {
    let mut buf = Vec::with_capacity(code.len() + 10);
    buf.extend_from_slice(b"MRENCLAVE");
    buf.extend_from_slice(&isv_svn.to_le_bytes());
    buf.extend_from_slice(code);
    sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Arc<TeePlatform> {
        TeePlatform::new(1, 7)
    }

    fn config() -> EnclaveConfig {
        EnclaveConfig::new(
            b"contract service enclave v1".to_vec(),
            [1u8; 32],
            3,
            1 << 20,
        )
    }

    #[test]
    fn measurement_is_deterministic_and_code_sensitive() {
        let p = platform();
        let e1 = Enclave::create(&p, config()).unwrap();
        let e2 = Enclave::create(&p, config()).unwrap();
        assert_eq!(e1.mrenclave(), e2.mrenclave());
        let mut other = config();
        other.code.push(0);
        let e3 = Enclave::create(&p, other).unwrap();
        assert_ne!(e1.mrenclave(), e3.mrenclave());
        // SVN changes the measurement too.
        let mut bumped = config();
        bumped.isv_svn = 4;
        let e4 = Enclave::create(&p, bumped).unwrap();
        assert_ne!(e1.mrenclave(), e4.mrenclave());
    }

    #[test]
    fn ecall_charges_transition_and_copy() {
        let p = platform();
        let e = Enclave::create(&p, config()).unwrap();
        let before = p.meter().total();
        let out = e
            .ecall(CrossingMode::CopyAndCheck, 1000, || (42, 500))
            .unwrap();
        assert_eq!(out, 42);
        let charged = p.meter().total() - before;
        let model = p.model();
        // Cold transition + 1500 copied bytes.
        assert_eq!(
            charged,
            model.transition_cold_cycles + 1500 * model.copy_check_cycles_per_byte
        );
        assert_eq!(e.stats().ecalls, 1);
        assert_eq!(e.stats().copied_bytes, 1500);
    }

    #[test]
    fn user_check_is_cheaper_for_large_buffers() {
        let p = platform();
        let e = Enclave::create(&p, config()).unwrap();
        // Warm up so both measurements hit the warm path.
        e.ecall(CrossingMode::UserCheck, 0, || ((), 0)).unwrap();
        let (_, copy_cost) = p.meter().measure(|| {
            e.ecall(CrossingMode::CopyAndCheck, 1 << 20, || ((), 0))
                .unwrap();
        });
        let (_, uc_cost) = p.meter().measure(|| {
            e.ecall(CrossingMode::UserCheck, 1 << 20, || ((), 0))
                .unwrap();
        });
        assert!(
            uc_cost < copy_cost / 10,
            "user_check {uc_cost} should be ≪ copy {copy_cost}"
        );
    }

    #[test]
    fn destroyed_enclave_rejects_calls_and_frees_epc() {
        let p = platform();
        let resident_before = p.epc().stats().resident_pages;
        let e = Enclave::create(&p, config()).unwrap();
        assert!(p.epc().stats().resident_pages > resident_before);
        e.destroy().unwrap();
        assert_eq!(p.epc().stats().resident_pages, resident_before);
        assert_eq!(
            e.ecall(CrossingMode::UserCheck, 0, || ((), 0)).unwrap_err(),
            EnclaveError::Destroyed
        );
        assert_eq!(e.destroy().unwrap_err(), EnclaveError::Destroyed);
    }

    #[test]
    fn first_transition_is_cold_then_warm() {
        let p = platform();
        let e = Enclave::create(&p, config()).unwrap();
        let model = p.model();
        let (_, c1) = p
            .meter()
            .measure(|| e.ecall(CrossingMode::UserCheck, 0, || ((), 0)).unwrap());
        let (_, c2) = p
            .meter()
            .measure(|| e.ecall(CrossingMode::UserCheck, 0, || ((), 0)).unwrap());
        // Marshalling is charged on entry and exit (two user_check fees).
        assert_eq!(
            c1,
            model.transition_cold_cycles + 2 * model.user_check_cycles
        );
        assert_eq!(
            c2,
            model.transition_warm_cycles + 2 * model.user_check_cycles
        );
    }

    #[test]
    fn heap_touch_paging_on_small_epc() {
        // 8-page EPC, two enclaves with 8-page heaps → paging.
        let p = TeePlatform::with_epc(9, 1, 8 * crate::epc::PAGE_SIZE);
        let mut cfg = config();
        cfg.heap_bytes = 8 * crate::epc::PAGE_SIZE;
        let a = Enclave::create(&p, cfg.clone()).unwrap();
        let _b = Enclave::create(&p, cfg).unwrap();
        a.touch_heap(0, 8 * crate::epc::PAGE_SIZE).unwrap();
        assert!(p.epc().stats().faults > 0);
    }
}
