//! A simulated CPU package: the trust anchor every enclave on one machine
//! shares.

use crate::epc::{EpcManager, DEFAULT_EPC_BYTES};
use crate::meter::{CostModel, CycleMeter};
use confide_crypto::ed25519::SigningKey;
use confide_crypto::hkdf;
use std::sync::Arc;

/// One simulated SGX-capable machine.
///
/// Holds the fused root-of-trust: an Ed25519 attestation key standing in
/// for Intel's EPID/DCAP provisioning chain, and a symmetric fuse secret
/// from which per-enclave sealing keys and local-attestation MAC keys are
/// derived. Both are generated per-platform from the platform seed, so two
/// simulated machines cannot forge each other's reports.
pub struct TeePlatform {
    /// Platform identity (stable, public).
    pub platform_id: u64,
    attestation_key: SigningKey,
    fuse_secret: [u8; 32],
    epc: EpcManager,
    meter: CycleMeter,
    model: CostModel,
}

impl TeePlatform {
    /// Create a platform from a seed with the default 93.5 MB EPC.
    pub fn new(platform_id: u64, seed: u64) -> Arc<TeePlatform> {
        Self::with_epc(platform_id, seed, DEFAULT_EPC_BYTES)
    }

    /// Create a platform with an explicit EPC size (tests shrink it to
    /// force paging).
    pub fn with_epc(platform_id: u64, seed: u64, epc_bytes: usize) -> Arc<TeePlatform> {
        let model = CostModel::default();
        let meter = CycleMeter::new();
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        seed_bytes[8..16].copy_from_slice(&platform_id.to_le_bytes());
        let attestation_seed = hkdf::derive_key32(b"tee-platform", &seed_bytes, b"attestation-key");
        let fuse_secret = hkdf::derive_key32(b"tee-platform", &seed_bytes, b"fuse-secret");
        Arc::new(TeePlatform {
            platform_id,
            attestation_key: SigningKey::from_seed(&attestation_seed),
            fuse_secret,
            epc: EpcManager::new(epc_bytes, meter.clone(), model),
            meter,
            model,
        })
    }

    /// The hardware attestation signing key (used by [`crate::attestation`]).
    pub(crate) fn attestation_key(&self) -> &SigningKey {
        &self.attestation_key
    }

    /// The public attestation verification key: what a verifier learns out
    /// of band (the analogue of Intel's attestation service roots).
    pub fn attestation_public_key(&self) -> confide_crypto::ed25519::VerifyingKey {
        self.attestation_key.verifying_key()
    }

    /// Derive a platform-local secret bound to `label` (sealing keys,
    /// local-attestation MAC keys). Never leaves the simulated package.
    pub(crate) fn derive_fuse_key(&self, label: &[u8]) -> [u8; 32] {
        hkdf::derive_key32(label, &self.fuse_secret, b"fuse-derive")
    }

    /// The consensus signing identity of this member: an Ed25519 key
    /// derived from the fused platform secret, so it exists only inside
    /// the sanctioned enclave build. Peers that know a member's platform
    /// provisioning (the consortium roster) derive the matching verifying
    /// key via [`TeePlatform::consensus_public_key`] on an equally-seeded
    /// platform, which is how the demo cluster builds its key table.
    pub fn consensus_signing_key(&self) -> SigningKey {
        SigningKey::from_seed(&self.derive_fuse_key(b"consensus-vote"))
    }

    /// The public half of [`TeePlatform::consensus_signing_key`].
    pub fn consensus_public_key(&self) -> confide_crypto::ed25519::VerifyingKey {
        self.consensus_signing_key().verifying_key()
    }

    /// Shared EPC pool of this package.
    pub fn epc(&self) -> &EpcManager {
        &self.epc
    }

    /// The shared cycle meter.
    pub fn meter(&self) -> &CycleMeter {
        &self.meter
    }

    /// The calibrated cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_platform_keys() {
        let a = TeePlatform::new(1, 99);
        let b = TeePlatform::new(1, 99);
        assert_eq!(a.attestation_public_key(), b.attestation_public_key());
        assert_eq!(a.derive_fuse_key(b"x"), b.derive_fuse_key(b"x"));
    }

    #[test]
    fn different_platforms_have_different_roots() {
        let a = TeePlatform::new(1, 99);
        let b = TeePlatform::new(2, 99);
        assert_ne!(a.attestation_public_key(), b.attestation_public_key());
        assert_ne!(a.derive_fuse_key(b"x"), b.derive_fuse_key(b"x"));
    }

    #[test]
    fn consensus_keys_track_the_platform() {
        let a = TeePlatform::new(1, 99);
        let b = TeePlatform::new(1, 99);
        let c = TeePlatform::new(2, 99);
        assert_eq!(a.consensus_public_key(), b.consensus_public_key());
        assert_ne!(a.consensus_public_key(), c.consensus_public_key());
        // Distinct from the attestation identity.
        assert_ne!(a.consensus_public_key(), a.attestation_public_key());
    }

    #[test]
    fn fuse_keys_are_label_separated() {
        let p = TeePlatform::new(1, 1);
        assert_ne!(p.derive_fuse_key(b"a"), p.derive_fuse_key(b"b"));
    }
}
