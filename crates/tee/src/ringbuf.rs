//! The exit-less monitoring channel (§5.3, *Improved enclave's monitor
//! system*).
//!
//! Status information inside an enclave cannot be observed by the OS, and
//! streaming it out with ocalls would pay a transition per message. CONFIDE
//! instead writes one-way status records into a **lock-free ring buffer in
//! untrusted memory** (the `user_check` region) and a polling thread outside
//! drains it asynchronously — an Eleos-style exit-less call.
//!
//! This is a real SPSC lock-free ring buffer (atomics only, no locks); the
//! "exit-less" property is modelled by charging *zero* transition cycles on
//! the producer side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-capacity single-producer single-consumer ring buffer of messages.
///
/// `head` is contended: the consumer advances it on `pop`, and the
/// producer advances it when the buffer is full (overwrite-oldest).
/// Both sides therefore claim positions with a compare-exchange, and
/// each slot carries the sequence number it was written for — a reader
/// that finds a later sequence in its claimed slot knows the producer
/// lapped it and skips, so delivery stays unique and in order.
pub struct RingBuffer<T> {
    slots: Vec<confide_sync::Mutex<Option<(u64, T)>>>,
    head: AtomicU64, // next slot to read
    tail: AtomicU64, // next slot to write
    capacity: u64,
    dropped: AtomicU64,
}

impl<T> RingBuffer<T> {
    /// Create a buffer with `capacity` slots (rounded up to at least 2).
    pub fn with_capacity(capacity: usize) -> Arc<RingBuffer<T>> {
        let capacity = capacity.max(2);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(confide_sync::Mutex::new(None));
        }
        Arc::new(RingBuffer {
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            capacity: capacity as u64,
            dropped: AtomicU64::new(0),
        })
    }

    /// Messages dropped because the consumer lagged.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// True when no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into producer (in-enclave side) and consumer (polling thread).
    pub fn split(self: &Arc<Self>) -> (MonitorProducer<T>, MonitorConsumer<T>) {
        (
            MonitorProducer {
                buf: Arc::clone(self),
            },
            MonitorConsumer {
                buf: Arc::clone(self),
            },
        )
    }
}

/// In-enclave writing handle. Pushing never blocks and never transitions;
/// if the buffer is full the oldest message is dropped (monitoring is
/// best-effort, per the paper the records carry only error/status text,
/// never application data).
pub struct MonitorProducer<T> {
    buf: Arc<RingBuffer<T>>,
}

impl<T> MonitorProducer<T> {
    /// Push a status record.
    pub fn push(&self, value: T) {
        let buf = &self.buf;
        let tail = buf.tail.load(Ordering::Relaxed);
        loop {
            let head = buf.head.load(Ordering::Acquire);
            if tail - head < buf.capacity {
                break;
            }
            // Overwrite-oldest: claim the head slot away from the
            // consumer. A failed exchange means the consumer popped it
            // first — re-check, there may be room now.
            if buf
                .head
                .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                buf.dropped.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        let idx = (tail % buf.capacity) as usize;
        *buf.slots[idx].lock() = Some((tail, value));
        buf.tail.store(tail + 1, Ordering::Release);
    }
}

/// Untrusted-side polling handle.
pub struct MonitorConsumer<T> {
    buf: Arc<RingBuffer<T>>,
}

impl<T> MonitorConsumer<T> {
    /// Pop the oldest pending record, if any.
    pub fn pop(&self) -> Option<T> {
        let buf = &self.buf;
        loop {
            let head = buf.head.load(Ordering::Acquire);
            let tail = buf.tail.load(Ordering::Acquire);
            if head >= tail {
                return None;
            }
            // Claim position `head`; losing the race means the producer
            // dropped that record (buffer full), so try the next one.
            if buf
                .head
                .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let idx = (head % buf.capacity) as usize;
            let mut slot = buf.slots[idx].lock();
            match &*slot {
                // Only deliver the record written for this position: a
                // later sequence means the producer lapped us after we
                // claimed — that record will be read at its own turn.
                Some((seq, _)) if *seq == head => {
                    let (_, value) = slot.take().expect("slot checked above");
                    return Some(value);
                }
                _ => {
                    buf.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }

    /// Drain everything currently pending.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

/// The exit-less **request** channel: a bounded multi-producer
/// single-consumer ring feeding transactions *into* the enclave-side
/// executor without an ecall per request (§5.3 applied to the ingest
/// direction, the way the monitor ring applies it to egress).
///
/// Unlike [`RingBuffer`], requests must never be silently dropped, so the
/// producer side is **no-overwrite**: when the ring is full,
/// [`IngestRing::try_push`] hands the value back and the caller surfaces
/// typed backpressure (`Busy` on the wire). Producers claim tail slots
/// with a compare-exchange (any number of pushing threads); the single
/// consumer advances `head` with plain release stores.
///
/// Like the monitor ring, a push charges zero transition cycles — the
/// ring lives in untrusted memory and the enclave side polls it.
pub struct IngestRing<T> {
    slots: Vec<confide_sync::Mutex<Option<(u64, T)>>>,
    head: AtomicU64, // next slot to read (single consumer)
    tail: AtomicU64, // next slot to write (CAS-claimed by producers)
    capacity: u64,
    pushed: AtomicU64,
    full_rejects: AtomicU64,
}

impl<T> IngestRing<T> {
    /// Create a ring with `capacity` slots (rounded up to at least 2).
    pub fn with_capacity(capacity: usize) -> Arc<IngestRing<T>> {
        let capacity = capacity.max(2);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(confide_sync::Mutex::new(None));
        }
        Arc::new(IngestRing {
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            capacity: capacity as u64,
            pushed: AtomicU64::new(0),
            full_rejects: AtomicU64::new(0),
        })
    }

    /// Number of requests currently claimed in the ring (some may still
    /// be mid-publish by their producer).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total requests accepted so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Pushes refused because the ring was full (each one became a typed
    /// `Busy` upstream — never a silent drop).
    pub fn full_rejects(&self) -> u64 {
        self.full_rejects.load(Ordering::Relaxed)
    }

    /// Enqueue a request from any producer thread. Never blocks and never
    /// overwrites: a full ring returns the value to the caller.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            let head = self.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) >= self.capacity {
                self.full_rejects.fetch_add(1, Ordering::Relaxed);
                return Err(value);
            }
            // Claim slot `tail`. The capacity check above guarantees the
            // slot's previous occupant (sequence `tail - capacity`) was
            // already consumed, so the claim cannot clobber a request.
            if self
                .tail
                .compare_exchange_weak(tail, tail + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let idx = (tail % self.capacity) as usize;
                *self.slots[idx].lock() = Some((tail, value));
                self.pushed.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    /// Dequeue the oldest published request (single consumer).
    ///
    /// May transiently return `None` while `len() > 0`: a producer that
    /// claimed the head slot's sequence but has not finished publishing
    /// yet. The consumer polls, so the request is delivered on a later
    /// call — never lost, never reordered.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        if head >= tail {
            return None;
        }
        let idx = (head % self.capacity) as usize;
        let mut slot = self.slots[idx].lock();
        match &*slot {
            Some((seq, _)) if *seq == head => {
                let (_, value) = slot.take().expect("slot checked above");
                drop(slot);
                self.head.store(head + 1, Ordering::Release);
                Some(value)
            }
            // Claimed but not yet published — come back on the next poll.
            _ => None,
        }
    }

    /// Drain everything currently published, stopping at the first
    /// still-publishing slot.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_fifo_order() {
        let rb = RingBuffer::with_capacity(8);
        let (px, cx) = rb.split();
        for i in 0..5 {
            px.push(i);
        }
        assert_eq!(cx.drain(), vec![0, 1, 2, 3, 4]);
        assert!(rb.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let rb = RingBuffer::with_capacity(4);
        let (px, cx) = rb.split();
        for i in 0..10 {
            px.push(i);
        }
        assert_eq!(rb.dropped(), 6);
        let got = cx.drain();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_producer_consumer() {
        let rb = RingBuffer::with_capacity(1024);
        let (px, cx) = rb.split();
        let n = 10_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                px.push(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < n as usize {
            if let Some(v) = cx.pop() {
                got.push(v);
            } else if producer.is_finished() && rb.is_empty() {
                break;
            }
        }
        producer.join().unwrap();
        got.extend(cx.drain());
        // The producer may outpace the consumer — overwrite-oldest drops are
        // allowed — but whatever is received must be unique and in order.
        assert!(!got.is_empty());
        assert!(got.len() <= n as usize);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "out-of-order delivery");
    }

    #[test]
    fn ingest_fifo_and_full_rejects() {
        let ring = IngestRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        // Full: the value comes back, nothing is overwritten.
        assert_eq!(ring.try_push(99), Err(99));
        assert_eq!(ring.full_rejects(), 1);
        assert_eq!(ring.drain(), vec![0, 1, 2, 3]);
        assert!(ring.is_empty());
        // Freed capacity is reusable across the wraparound.
        assert!(ring.try_push(42).is_ok());
        assert_eq!(ring.pop(), Some(42));
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn ingest_multi_producer_unique_complete_delivery() {
        let ring = IngestRing::with_capacity(64);
        let producers = 4u64;
        let per = 2_500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let ring = Arc::clone(&ring);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let mut v = p * per + i;
                    // Spin on backpressure: no request may be dropped.
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut got = Vec::new();
        while got.len() < (producers * per) as usize {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ring.is_empty());
        // Every request delivered exactly once — no loss, no duplication.
        got.sort_unstable();
        let want: Vec<u64> = (0..producers * per).collect();
        assert_eq!(got, want);
        assert_eq!(ring.pushed(), producers * per);
    }

    #[test]
    fn strings_as_status_records() {
        let rb = RingBuffer::with_capacity(4);
        let (px, cx) = rb.split();
        px.push("E001: state decrypt failed".to_string());
        px.push("E002: ocall timeout".to_string());
        let msgs = cx.drain();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("E001"));
    }
}
