//! Remote and local attestation.
//!
//! Remote attestation (§2.3, §3.2.2): an enclave's measurement and a caller
//! chosen `report_data` (CONFIDE locks the fingerprint of `pk_tx` in here to
//! defeat man-in-the-middle, §3.2.2) are signed by the platform's fused
//! attestation key. A verifier holding the platform's public attestation
//! root checks the signature and compares MRENCLAVE against the expected
//! build.
//!
//! Local attestation (§5.1): two enclaves on the *same* platform prove
//! identity to each other with a MAC under a platform-fused symmetric key —
//! cheap, no signature — which is how the CS Enclave authenticates to the
//! KM Enclave before key provisioning.

use crate::enclave::Enclave;
use confide_crypto::ed25519::{Signature, VerifyingKey};
use confide_crypto::hmac::hmac_sha256;
use confide_crypto::CryptoError;

/// A remote attestation report (EPID/DCAP quote analogue).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the quoted enclave.
    pub mrenclave: [u8; 32],
    /// Signer identity.
    pub mrsigner: [u8; 32],
    /// Security version of the enclave.
    pub isv_svn: u16,
    /// 64 bytes chosen by the enclave — CONFIDE puts the SHA-256
    /// fingerprint of `pk_tx` (and a session nonce) here.
    pub report_data: [u8; 64],
    /// Platform id that produced the quote.
    pub platform_id: u64,
    /// Signature by the platform attestation key.
    pub signature: Signature,
}

impl Report {
    /// Serialize the signed portion.
    fn signed_bytes(
        mrenclave: &[u8; 32],
        mrsigner: &[u8; 32],
        isv_svn: u16,
        report_data: &[u8; 64],
        platform_id: u64,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + 32 + 2 + 64 + 8 + 16);
        buf.extend_from_slice(b"SGX-SIM-QUOTE-V1");
        buf.extend_from_slice(mrenclave);
        buf.extend_from_slice(mrsigner);
        buf.extend_from_slice(&isv_svn.to_le_bytes());
        buf.extend_from_slice(report_data);
        buf.extend_from_slice(&platform_id.to_le_bytes());
        buf
    }

    /// Produce a signed report for `enclave` with caller data.
    pub fn generate(enclave: &Enclave, report_data: [u8; 64]) -> Report {
        let platform = enclave.platform();
        let msg = Self::signed_bytes(
            &enclave.mrenclave(),
            &enclave.signer(),
            enclave.isv_svn(),
            &report_data,
            platform.platform_id,
        );
        let signature = platform.attestation_key().sign(&msg);
        Report {
            mrenclave: enclave.mrenclave(),
            mrsigner: enclave.signer(),
            isv_svn: enclave.isv_svn(),
            report_data,
            platform_id: platform.platform_id,
            signature,
        }
    }

    /// Verify the platform signature with the attestation root and check
    /// the measurement and minimum security version.
    pub fn verify(
        &self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_isv_svn: u16,
    ) -> Result<(), AttestationError> {
        let msg = Self::signed_bytes(
            &self.mrenclave,
            &self.mrsigner,
            self.isv_svn,
            &self.report_data,
            self.platform_id,
        );
        attestation_root
            .verify(&msg, &self.signature)
            .map_err(AttestationError::BadSignature)?;
        if &self.mrenclave != expected_mrenclave {
            return Err(AttestationError::MeasurementMismatch);
        }
        if self.isv_svn < min_isv_svn {
            return Err(AttestationError::StaleSecurityVersion {
                got: self.isv_svn,
                min: min_isv_svn,
            });
        }
        Ok(())
    }
}

/// A local attestation report between two enclaves on one platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalReport {
    /// Measurement of the reporting enclave.
    pub mrenclave: [u8; 32],
    /// Caller data bound into the MAC.
    pub report_data: [u8; 64],
    /// MAC under a key only enclaves on the same platform can derive.
    pub mac: [u8; 32],
}

impl LocalReport {
    /// Generate a report from `source` targeted at any enclave on the same
    /// platform.
    pub fn generate(source: &Enclave, report_data: [u8; 64]) -> LocalReport {
        let key = source.platform().derive_fuse_key(b"local-attestation");
        let mut msg = Vec::with_capacity(32 + 64);
        msg.extend_from_slice(&source.mrenclave());
        msg.extend_from_slice(&report_data);
        LocalReport {
            mrenclave: source.mrenclave(),
            report_data,
            mac: hmac_sha256(&key, &msg),
        }
    }

    /// Verify from `verifier` (must be on the same platform as the source).
    pub fn verify(&self, verifier: &Enclave) -> Result<(), AttestationError> {
        let key = verifier.platform().derive_fuse_key(b"local-attestation");
        let mut msg = Vec::with_capacity(32 + 64);
        msg.extend_from_slice(&self.mrenclave);
        msg.extend_from_slice(&self.report_data);
        let expect = hmac_sha256(&key, &msg);
        if confide_crypto::ct_eq(&expect, &self.mac) {
            Ok(())
        } else {
            Err(AttestationError::BadMac)
        }
    }
}

/// Attestation failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// Quote signature invalid (wrong platform or forged).
    BadSignature(CryptoError),
    /// MRENCLAVE does not match the expected build.
    MeasurementMismatch,
    /// Enclave runs an out-of-date security version.
    StaleSecurityVersion {
        /// Reported SVN.
        got: u16,
        /// Minimum acceptable SVN.
        min: u16,
    },
    /// Local attestation MAC check failed (different platform?).
    BadMac,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::BadSignature(e) => write!(f, "bad quote signature: {e}"),
            AttestationError::MeasurementMismatch => f.write_str("MRENCLAVE mismatch"),
            AttestationError::StaleSecurityVersion { got, min } => {
                write!(f, "stale ISV SVN {got} < required {min}")
            }
            AttestationError::BadMac => f.write_str("local attestation MAC invalid"),
        }
    }
}

impl std::error::Error for AttestationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveConfig;
    use crate::platform::TeePlatform;

    fn make(platform_seed: u64, code: &[u8], svn: u16) -> (std::sync::Arc<TeePlatform>, Enclave) {
        let p = TeePlatform::new(platform_seed, platform_seed);
        let e =
            Enclave::create(&p, EnclaveConfig::new(code.to_vec(), [9u8; 32], svn, 4096)).unwrap();
        (p, e)
    }

    #[test]
    fn remote_attestation_round_trip() {
        let (p, e) = make(1, b"km enclave", 2);
        let mut data = [0u8; 64];
        data[..5].copy_from_slice(b"pk_tx");
        let report = Report::generate(&e, data);
        report
            .verify(&p.attestation_public_key(), &e.mrenclave(), 2)
            .unwrap();
    }

    #[test]
    fn report_from_wrong_platform_rejected() {
        let (_p1, e1) = make(1, b"enclave", 1);
        let (p2, _e2) = make(2, b"enclave", 1);
        let report = Report::generate(&e1, [0u8; 64]);
        assert!(matches!(
            report.verify(&p2.attestation_public_key(), &e1.mrenclave(), 1),
            Err(AttestationError::BadSignature(_))
        ));
    }

    #[test]
    fn measurement_mismatch_rejected() {
        let (p, e) = make(1, b"genuine code", 1);
        let report = Report::generate(&e, [0u8; 64]);
        let wrong = crate::enclave::measure(b"malicious code", 1);
        assert_eq!(
            report.verify(&p.attestation_public_key(), &wrong, 1),
            Err(AttestationError::MeasurementMismatch)
        );
    }

    #[test]
    fn stale_svn_rejected() {
        let (p, e) = make(1, b"old build", 1);
        let report = Report::generate(&e, [0u8; 64]);
        assert_eq!(
            report.verify(&p.attestation_public_key(), &e.mrenclave(), 2),
            Err(AttestationError::StaleSecurityVersion { got: 1, min: 2 })
        );
    }

    #[test]
    fn tampered_report_data_rejected() {
        let (p, e) = make(1, b"code", 1);
        let mut report = Report::generate(&e, [1u8; 64]);
        report.report_data[0] ^= 1;
        assert!(matches!(
            report.verify(&p.attestation_public_key(), &e.mrenclave(), 1),
            Err(AttestationError::BadSignature(_))
        ));
    }

    #[test]
    fn local_attestation_same_platform_ok() {
        let p = TeePlatform::new(5, 5);
        let km =
            Enclave::create(&p, EnclaveConfig::new(b"km".to_vec(), [0u8; 32], 1, 4096)).unwrap();
        let cs =
            Enclave::create(&p, EnclaveConfig::new(b"cs".to_vec(), [0u8; 32], 1, 4096)).unwrap();
        let report = LocalReport::generate(&cs, [7u8; 64]);
        report.verify(&km).unwrap();
    }

    #[test]
    fn local_attestation_cross_platform_fails() {
        let (_pa, a) = make(1, b"x", 1);
        let (_pb, b) = make(2, b"x", 1);
        let report = LocalReport::generate(&a, [0u8; 64]);
        assert_eq!(report.verify(&b), Err(AttestationError::BadMac));
    }
}
