//! The Enclave Page Cache: SGX v1's scarce physical memory.
//!
//! SGX v1 exposes 128 MB of protected memory of which ~93.5 MB is usable by
//! enclaves (§5.3, citing SCONE/SPEICHER/Eleos). When enclaves allocate
//! beyond that, the driver transparently evicts pages — encrypting their
//! contents out to untrusted memory — and faults them back on demand. Both
//! directions cost on the order of tens of thousands of cycles per page and
//! are the reason the paper insists on minimizing in-enclave TCB, memory
//! pools, and destroying the KM enclave early.
//!
//! This module models the EPC at page granularity with an LRU eviction
//! policy and charges [`CostModel::epc_swap_cycles_per_page`] per crossing.

use crate::meter::{CostModel, CycleMeter};
use confide_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Page size, 4 KiB as on real hardware.
pub const PAGE_SIZE: usize = 4096;

/// Usable EPC bytes on SGX v1 (93.5 MB).
pub const DEFAULT_EPC_BYTES: usize = 93 * 1024 * 1024 + 512 * 1024;

/// Errors from EPC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpcError {
    /// The allocation alone exceeds the entire EPC plus swap is disabled.
    OutOfMemory,
    /// Unknown allocation handle.
    BadHandle,
}

impl std::fmt::Display for EpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpcError::OutOfMemory => f.write_str("EPC exhausted and swapping disabled"),
            EpcError::BadHandle => f.write_str("unknown EPC allocation handle"),
        }
    }
}

impl std::error::Error for EpcError {}

/// Counters exposed for the paging experiments and monitor system.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EpcStats {
    /// Pages currently resident in protected memory.
    pub resident_pages: usize,
    /// Pages evicted (encrypted out) since startup.
    pub evictions: u64,
    /// Page faults that loaded content back in.
    pub faults: u64,
    /// Total pages ever allocated.
    pub allocated_pages: u64,
}

/// Handle to a contiguous EPC allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpcAlloc(u64);

struct AllocState {
    pages: usize,
    /// Residency flag per page of the allocation.
    resident: Vec<bool>,
}

struct EpcInner {
    capacity_pages: usize,
    resident_pages: usize,
    allocs: HashMap<u64, AllocState>,
    /// LRU order of (alloc, page) pairs currently resident.
    lru: Vec<(u64, usize)>,
    next_handle: u64,
    stats: EpcStats,
    swap_enabled: bool,
}

/// A shared EPC pool for one simulated CPU package.
#[derive(Clone)]
pub struct EpcManager {
    inner: Arc<Mutex<EpcInner>>,
    meter: CycleMeter,
    model: CostModel,
}

impl EpcManager {
    /// Create a pool of `capacity_bytes`, charging into `meter`.
    pub fn new(capacity_bytes: usize, meter: CycleMeter, model: CostModel) -> Self {
        EpcManager {
            inner: Arc::new(Mutex::new(EpcInner {
                capacity_pages: capacity_bytes.div_ceil(PAGE_SIZE),
                resident_pages: 0,
                allocs: HashMap::new(),
                lru: Vec::new(),
                next_handle: 1,
                stats: EpcStats::default(),
                swap_enabled: true,
            })),
            meter,
            model,
        }
    }

    /// Disable page swapping: allocations beyond capacity then fail, the
    /// behaviour of early SGX SDKs with `HeapMaxSize` fixed.
    pub fn set_swap_enabled(&self, enabled: bool) {
        self.inner.lock().swap_enabled = enabled;
    }

    /// Allocate `bytes` of enclave memory. Pages start resident, possibly
    /// evicting other pages (charging swap cycles).
    pub fn alloc(&self, bytes: usize) -> Result<EpcAlloc, EpcError> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let mut g = self.inner.lock();
        if pages > g.capacity_pages && !g.swap_enabled {
            return Err(EpcError::OutOfMemory);
        }
        let handle = g.next_handle;
        g.next_handle += 1;
        let resident_count = pages.min(g.capacity_pages);
        // Make room.
        let needed = resident_count;
        let mut evict_cycles = 0u64;
        while g.resident_pages + needed > g.capacity_pages {
            if !g.swap_enabled {
                return Err(EpcError::OutOfMemory);
            }
            let (victim_handle, victim_page) = g.lru.remove(0);
            if let Some(a) = g.allocs.get_mut(&victim_handle) {
                a.resident[victim_page] = false;
            }
            g.resident_pages -= 1;
            g.stats.evictions += 1;
            evict_cycles += self.model.epc_swap_cycles_per_page;
        }
        let mut resident = vec![false; pages];
        for (i, r) in resident.iter_mut().enumerate().take(resident_count) {
            *r = true;
            g.lru.push((handle, i));
        }
        g.resident_pages += resident_count;
        g.stats.resident_pages = g.resident_pages;
        g.stats.allocated_pages += pages as u64;
        g.allocs.insert(handle, AllocState { pages, resident });
        drop(g);
        self.meter.charge(evict_cycles);
        Ok(EpcAlloc(handle))
    }

    /// Touch a byte range of an allocation: faults non-resident pages back
    /// in (charging swap cycles both for the fault and any eviction).
    pub fn touch(&self, alloc: EpcAlloc, offset: usize, len: usize) -> Result<(), EpcError> {
        let mut g = self.inner.lock();
        let capacity = g.capacity_pages;
        let swap = g.swap_enabled;
        let state = g.allocs.get(&alloc.0).ok_or(EpcError::BadHandle)?;
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        let last = last.min(state.pages.saturating_sub(1));
        let mut charge = 0u64;
        for page in first..=last {
            let is_resident = g.allocs[&alloc.0].resident[page];
            if is_resident {
                // Refresh LRU position.
                if let Some(pos) = g.lru.iter().position(|&(h, p)| h == alloc.0 && p == page) {
                    let entry = g.lru.remove(pos);
                    g.lru.push(entry);
                }
                continue;
            }
            if !swap {
                return Err(EpcError::OutOfMemory);
            }
            // Evict to make room if full.
            if g.resident_pages >= capacity {
                let (victim_handle, victim_page) = g.lru.remove(0);
                if let Some(a) = g.allocs.get_mut(&victim_handle) {
                    a.resident[victim_page] = false;
                }
                g.resident_pages -= 1;
                g.stats.evictions += 1;
                charge += self.model.epc_swap_cycles_per_page;
            }
            let a = g.allocs.get_mut(&alloc.0).expect("checked above");
            a.resident[page] = true;
            g.resident_pages += 1;
            g.stats.faults += 1;
            g.lru.push((alloc.0, page));
            charge += self.model.epc_swap_cycles_per_page;
        }
        g.stats.resident_pages = g.resident_pages;
        drop(g);
        self.meter.charge(charge);
        Ok(())
    }

    /// Free an allocation, releasing its resident pages.
    pub fn free(&self, alloc: EpcAlloc) -> Result<(), EpcError> {
        let mut g = self.inner.lock();
        let state = g.allocs.remove(&alloc.0).ok_or(EpcError::BadHandle)?;
        let resident = state.resident.iter().filter(|&&r| r).count();
        g.resident_pages -= resident;
        g.lru.retain(|&(h, _)| h != alloc.0);
        g.stats.resident_pages = g.resident_pages;
        Ok(())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> EpcStats {
        self.inner.lock().stats
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.inner.lock().capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(bytes: usize) -> EpcManager {
        EpcManager::new(bytes, CycleMeter::new(), CostModel::default())
    }

    #[test]
    fn alloc_within_capacity_is_free_of_swaps() {
        let m = mgr(16 * PAGE_SIZE);
        let a = m.alloc(4 * PAGE_SIZE).unwrap();
        m.touch(a, 0, 4 * PAGE_SIZE).unwrap();
        let s = m.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.faults, 0);
        assert_eq!(s.resident_pages, 4);
    }

    #[test]
    fn over_capacity_triggers_eviction_and_faults() {
        let m = mgr(4 * PAGE_SIZE);
        let a = m.alloc(3 * PAGE_SIZE).unwrap();
        let b = m.alloc(3 * PAGE_SIZE).unwrap(); // evicts 2 pages of `a`
        assert!(m.stats().evictions >= 2);
        // Touching `a` again faults pages back in.
        m.touch(a, 0, 3 * PAGE_SIZE).unwrap();
        assert!(m.stats().faults >= 2);
        m.free(a).unwrap();
        m.free(b).unwrap();
        assert_eq!(m.stats().resident_pages, 0);
    }

    #[test]
    fn faults_charge_cycles() {
        let meter = CycleMeter::new();
        let model = CostModel::default();
        let m = EpcManager::new(2 * PAGE_SIZE, meter.clone(), model);
        let a = m.alloc(2 * PAGE_SIZE).unwrap();
        let _b = m.alloc(2 * PAGE_SIZE).unwrap();
        let before = meter.total();
        m.touch(a, 0, 2 * PAGE_SIZE).unwrap();
        assert!(meter.total() > before);
    }

    #[test]
    fn swap_disabled_fails_hard() {
        let m = mgr(2 * PAGE_SIZE);
        m.set_swap_enabled(false);
        m.alloc(2 * PAGE_SIZE).unwrap();
        assert_eq!(m.alloc(PAGE_SIZE).unwrap_err(), EpcError::OutOfMemory);
    }

    #[test]
    fn free_unknown_handle_is_error() {
        let m = mgr(PAGE_SIZE);
        let a = m.alloc(PAGE_SIZE).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a).unwrap_err(), EpcError::BadHandle);
    }

    #[test]
    fn touch_beyond_len_clamps_to_allocation() {
        let m = mgr(8 * PAGE_SIZE);
        let a = m.alloc(2 * PAGE_SIZE).unwrap();
        // Should not panic even if the range overshoots.
        m.touch(a, PAGE_SIZE, 10 * PAGE_SIZE).unwrap();
    }

    #[test]
    fn lru_evicts_coldest_page() {
        let m = mgr(3 * PAGE_SIZE);
        let a = m.alloc(PAGE_SIZE).unwrap();
        let b = m.alloc(PAGE_SIZE).unwrap();
        let c = m.alloc(PAGE_SIZE).unwrap();
        // Touch a and c so b is coldest.
        m.touch(a, 0, 1).unwrap();
        m.touch(c, 0, 1).unwrap();
        let _d = m.alloc(PAGE_SIZE).unwrap(); // must evict b's page
                                              // Touching b faults; touching a should not.
        let f0 = m.stats().faults;
        m.touch(b, 0, 1).unwrap();
        assert_eq!(m.stats().faults, f0 + 1);
    }
}
