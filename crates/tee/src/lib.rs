//! # confide-tee
//!
//! A software simulator of an Intel-SGX-class Trusted Execution Environment,
//! faithful to the *performance and security seams* that the CONFIDE paper's
//! engineering sections (§2.3, §5.1, §5.3) build on:
//!
//! * [`platform`] — a simulated CPU package with a fused root-of-trust key,
//!   a shared EPC (Enclave Page Cache) pool, and a cycle meter.
//! * [`enclave`] — enclave lifecycle: code measurement (MRENCLAVE), init,
//!   ecall/ocall boundary crossings with HotCalls-calibrated transition
//!   costs, `user_check` vs copy-and-check marshalling modes, destruction
//!   (the paper destroys the KM enclave early to release EPC, §5.3).
//! * [`epc`] — the 93.5 MB usable EPC budget with page-granular allocation
//!   and encrypt-on-evict swapping, the dominant hardware overhead SGX v1
//!   imposes on large working sets.
//! * [`attestation`] — remote attestation reports (Ed25519-signed by the
//!   simulated hardware key) and same-platform local attestation, the basis
//!   of K-Protocol's Mutual Authenticated Protocol.
//! * [`sealing`] — sealed storage bound to MRENCLAVE or signer, used to
//!   persist enclave secrets across restarts.
//! * [`ringbuf`] — the exit-less channels of §5.3: a lock-free SPSC ring
//!   that streams status messages out of the enclave, and a bounded
//!   no-overwrite MPSC ring ([`ringbuf::IngestRing`]) that feeds requests
//!   in — neither direction pays enclave transitions.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! Real SGX hardware is unavailable here; this simulator charges the same
//! costs at the same program points (transitions, paging, marshalling) into
//! a virtual [`meter::CycleMeter`], so the optimizations the paper evaluates
//! (OPT1–OPT4, pre-verification, exit-less calls) trade off exactly as they
//! do on hardware. All security checks (measurement, report verification,
//! AAD-bound sealing) are real cryptographic operations from
//! [`confide_crypto`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod enclave;
pub mod epc;
pub mod meter;
pub mod platform;
pub mod ringbuf;
pub mod sealing;

pub use attestation::{LocalReport, Report};
pub use enclave::{CrossingMode, Enclave, EnclaveConfig, EnclaveError, EnclaveId};
pub use epc::{EpcError, EpcStats};
pub use meter::{CostModel, CycleMeter};
pub use platform::TeePlatform;
pub use ringbuf::{IngestRing, MonitorConsumer, MonitorProducer, RingBuffer};
