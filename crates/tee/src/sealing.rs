//! Sealed storage: persist enclave secrets to untrusted disk.
//!
//! Sealing keys are derived from the platform fuse secret plus either the
//! enclave measurement (`MRENCLAVE` policy: only the exact same build can
//! unseal) or the signer (`MRSIGNER` policy: any enclave from the same
//! vendor, enabling upgrades — CONFIDE's enclave-decoupled design, §5.1,
//! relies on this for "service upgrading in production").

use crate::enclave::Enclave;
use confide_crypto::gcm::AesGcm;
use confide_crypto::CryptoError;

/// Which identity the sealing key binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Bind to the exact enclave measurement.
    MrEnclave,
    /// Bind to the signer, allowing upgraded builds to unseal.
    MrSigner,
}

fn sealing_key(enclave: &Enclave, policy: SealPolicy) -> [u8; 32] {
    let mut label = Vec::with_capacity(10 + 32);
    match policy {
        SealPolicy::MrEnclave => {
            label.extend_from_slice(b"seal-mre:");
            label.extend_from_slice(&enclave.mrenclave());
        }
        SealPolicy::MrSigner => {
            label.extend_from_slice(b"seal-mrs:");
            label.extend_from_slice(&enclave.signer());
        }
    }
    enclave.platform().derive_fuse_key(&label)
}

/// Seal `plaintext` for later recovery under `policy`. The nonce must be
/// unique per sealing (callers use a DRBG); `aad` typically carries a blob
/// label/version.
pub fn seal(
    enclave: &Enclave,
    policy: SealPolicy,
    nonce: &[u8; 12],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let key = sealing_key(enclave, policy);
    let gcm = AesGcm::new(&key)?;
    Ok(gcm.seal(nonce, aad, plaintext))
}

/// Unseal a blob produced by [`seal`].
pub fn unseal(
    enclave: &Enclave,
    policy: SealPolicy,
    nonce: &[u8; 12],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let key = sealing_key(enclave, policy);
    let gcm = AesGcm::new(&key)?;
    gcm.open(nonce, aad, sealed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveConfig;
    use crate::platform::TeePlatform;
    use std::sync::Arc;

    fn enclave(p: &Arc<TeePlatform>, code: &[u8], signer: [u8; 32]) -> Enclave {
        Enclave::create(p, EnclaveConfig::new(code.to_vec(), signer, 1, 4096)).unwrap()
    }

    #[test]
    fn seal_unseal_round_trip() {
        let p = TeePlatform::new(1, 1);
        let e = enclave(&p, b"cs", [1u8; 32]);
        let sealed = seal(
            &e,
            SealPolicy::MrEnclave,
            &[1u8; 12],
            b"k_states",
            b"secret key",
        )
        .unwrap();
        let pt = unseal(&e, SealPolicy::MrEnclave, &[1u8; 12], b"k_states", &sealed).unwrap();
        assert_eq!(pt, b"secret key");
    }

    #[test]
    fn mrenclave_policy_blocks_different_build() {
        let p = TeePlatform::new(1, 1);
        let v1 = enclave(&p, b"build-v1", [1u8; 32]);
        let v2 = enclave(&p, b"build-v2", [1u8; 32]);
        let sealed = seal(&v1, SealPolicy::MrEnclave, &[0u8; 12], b"", b"s").unwrap();
        assert!(unseal(&v2, SealPolicy::MrEnclave, &[0u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn mrsigner_policy_allows_upgraded_build() {
        let p = TeePlatform::new(1, 1);
        let v1 = enclave(&p, b"build-v1", [1u8; 32]);
        let v2 = enclave(&p, b"build-v2", [1u8; 32]);
        let sealed = seal(&v1, SealPolicy::MrSigner, &[0u8; 12], b"", b"migrate me").unwrap();
        let pt = unseal(&v2, SealPolicy::MrSigner, &[0u8; 12], b"", &sealed).unwrap();
        assert_eq!(pt, b"migrate me");
    }

    #[test]
    fn mrsigner_policy_blocks_other_vendor() {
        let p = TeePlatform::new(1, 1);
        let ours = enclave(&p, b"code", [1u8; 32]);
        let theirs = enclave(&p, b"code", [2u8; 32]);
        let sealed = seal(&ours, SealPolicy::MrSigner, &[0u8; 12], b"", b"s").unwrap();
        assert!(unseal(&theirs, SealPolicy::MrSigner, &[0u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn sealed_blob_unusable_on_other_platform() {
        let p1 = TeePlatform::new(1, 1);
        let p2 = TeePlatform::new(2, 2);
        let e1 = enclave(&p1, b"same code", [1u8; 32]);
        let e2 = enclave(&p2, b"same code", [1u8; 32]);
        assert_eq!(e1.mrenclave(), e2.mrenclave()); // identical build…
        let sealed = seal(&e1, SealPolicy::MrEnclave, &[0u8; 12], b"", b"s").unwrap();
        // …but the fuse key differs per package.
        assert!(unseal(&e2, SealPolicy::MrEnclave, &[0u8; 12], b"", &sealed).is_err());
    }
}
