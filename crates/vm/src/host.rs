//! The host interface the VM calls out through.
//!
//! In production (`confide-core`) the implementation is the Secure Data
//! Module: storage reads/writes become ocalls + D-Protocol crypto, and the
//! cost of every crossing is charged to the enclave. For unit tests and
//! public (non-confidential) execution a plain [`MockHost`] suffices.

use std::collections::HashMap;

/// Host-side failures surfaced to the VM as traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Storage backend failed.
    Storage(String),
    /// Cross-contract call failed (unknown address, callee trapped…).
    Call(String),
    /// The host denied the operation (access control).
    Denied(String),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Storage(m) => write!(f, "storage: {m}"),
            HostError::Call(m) => write!(f, "call: {m}"),
            HostError::Denied(m) => write!(f, "denied: {m}"),
        }
    }
}

impl std::error::Error for HostError {}

/// Everything a contract can ask of its environment.
pub trait HostApi {
    /// The call input (method arguments, already decrypted for
    /// confidential transactions).
    fn input(&self) -> &[u8];
    /// Set the return data.
    fn set_return(&mut self, data: Vec<u8>);
    /// Take the return data out after execution.
    fn take_return(&mut self) -> Vec<u8>;
    /// Read a contract state key.
    fn get_storage(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, HostError>;
    /// Write a contract state key.
    fn set_storage(&mut self, key: &[u8], val: &[u8]) -> Result<(), HostError>;
    /// Synchronous cross-contract call.
    fn call_contract(&mut self, addr: &[u8; 32], input: &[u8]) -> Result<Vec<u8>, HostError>;
    /// 32-byte sender identity.
    fn sender(&self) -> [u8; 32];
    /// Log a message (feeds the monitor ring buffer in-enclave).
    fn log(&mut self, msg: &[u8]);
    /// SHA-256 (hosts may charge crypto cycles).
    fn sha256(&mut self, data: &[u8]) -> [u8; 32] {
        confide_crypto::sha256(data)
    }
    /// Keccak-256.
    fn keccak256(&mut self, data: &[u8]) -> [u8; 32] {
        confide_crypto::keccak256(data)
    }
}

/// An in-memory host for tests and examples.
#[derive(Default)]
pub struct MockHost {
    /// Call input.
    pub input: Vec<u8>,
    /// Captured return data.
    pub return_data: Vec<u8>,
    /// Backing storage.
    pub storage: HashMap<Vec<u8>, Vec<u8>>,
    /// Captured log lines.
    pub logs: Vec<Vec<u8>>,
    /// Sender identity.
    pub sender: [u8; 32],
}

impl HostApi for MockHost {
    fn input(&self) -> &[u8] {
        &self.input
    }

    fn set_return(&mut self, data: Vec<u8>) {
        self.return_data = data;
    }

    fn take_return(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.return_data)
    }

    fn get_storage(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, HostError> {
        Ok(self.storage.get(key).cloned())
    }

    fn set_storage(&mut self, key: &[u8], val: &[u8]) -> Result<(), HostError> {
        self.storage.insert(key.to_vec(), val.to_vec());
        Ok(())
    }

    fn call_contract(&mut self, _addr: &[u8; 32], _input: &[u8]) -> Result<Vec<u8>, HostError> {
        Err(HostError::Call("MockHost has no other contracts".into()))
    }

    fn sender(&self) -> [u8; 32] {
        self.sender
    }

    fn log(&mut self, msg: &[u8]) {
        self.logs.push(msg.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_host_storage_round_trip() {
        let mut h = MockHost::default();
        h.set_storage(b"k", b"v").unwrap();
        assert_eq!(h.get_storage(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(h.get_storage(b"absent").unwrap(), None);
    }

    #[test]
    fn mock_host_return_take_semantics() {
        let mut h = MockHost::default();
        h.set_return(b"out".to_vec());
        assert_eq!(h.take_return(), b"out");
        assert!(h.take_return().is_empty());
    }

    #[test]
    fn default_hashes_are_real() {
        let mut h = MockHost::default();
        assert_eq!(
            confide_crypto::hex(&h.sha256(b"abc"))[..8].to_string(),
            "ba7816bf"
        );
        assert_eq!(
            confide_crypto::hex(&h.keccak256(b"abc"))[..8].to_string(),
            "4e03657a"
        );
    }
}
