//! Deploy-time static access-set analysis over CONFIDE-VM bytecode.
//!
//! An abstract interpreter that tracks constant- and prefix-shaped storage
//! keys through the operand stack, locals and the heap-handle packing
//! idioms of the CCL code generator, and emits a per-exported-method
//! [`AccessSummary`]: which storage keys the method may read or write,
//! whether it performs cross-contract calls, and an explicit `Top` when
//! precision is lost. The scheduler (`confide-core`) uses precise
//! summaries to build conflict groups *before* execution, skipping the
//! speculation run of the OCC path entirely (DESIGN.md §13).
//!
//! # Soundness contract
//!
//! For every execution of a summarized method, the dynamic read set is
//! covered by `reads ∪ writes` and the dynamic write set by `writes`,
//! where a key expression with `open_suffix` covers every concrete key
//! that starts with its instantiated prefix and a `top` summary covers
//! everything. The analysis *never* under-approximates: any construct it
//! cannot model (raw stores into linear memory, unbounded host writes,
//! recursion, budget exhaustion) degrades the summary toward `Top`
//! rather than dropping accesses. A debug-mode runtime oracle in
//! `confide-core` re-checks the contract on every executed transaction.
//!
//! The analyzer recognizes the compiled CCL standard library by body
//! equality (the stdlib is prepended to every program, so its functions
//! compile to byte-identical bodies at fixed indices) and applies exact
//! transfer functions instead of inlining; everything else is inlined
//! and interpreted abstractly.

use crate::module::{Function, Module};
use crate::opcode::{HostFn, Instr};
use crate::verify::verify_module;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Handle layout constants — must match the CCL code generator.
const LEN_MASK: i64 = 0xffff_ffff;
const PTR_MASK: i64 = !LEN_MASK;

/// Distinguished "unknown object" id.
const UNK: usize = 0;
/// Maximum call-inlining depth before the analysis gives up.
const MAX_INLINE_DEPTH: usize = 12;
/// Abstract instruction budget per fixpoint pass.
const STEP_BUDGET: u64 = 60_000;
/// Maximum widening restarts per export before giving up.
const MAX_RESTARTS: usize = 16;
/// Maximum key-expression nesting depth.
const MAX_EXPR_DEPTH: usize = 32;

// ---------------------------------------------------------------------------
// Public summary types
// ---------------------------------------------------------------------------

/// A standard-library routine the analyzer has an exact transfer function
/// for. The caller (deploy pipeline) maps module function indices to these
/// by probe-compiling the stdlib and matching bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnownFn {
    /// `__alloc(n) -> ptr`: heap bump allocator (returns a raw pointer).
    Alloc,
    /// `concat(a, b) -> bytes`.
    Concat,
    /// `concat3(a, b, c) -> bytes`.
    Concat3,
    /// `slice(b, start, n) -> bytes`.
    Slice,
    /// `eq_bytes(a, b) -> int`.
    EqBytes,
    /// `find(hay, needle, from) -> int`.
    Find,
    /// `itoa(v) -> bytes`.
    Itoa,
    /// `atoi(b) -> int`.
    Atoi,
    /// `i2b(v) -> bytes` (8-byte little-endian).
    I2b,
    /// `b2i(b) -> int`.
    B2i,
    /// `to_hex(b) -> bytes` (lowercase).
    ToHex,
    /// `storage_get(key) -> bytes` (reads storage).
    StorageGet,
    /// `storage_has(key) -> int` (reads storage).
    StorageHas,
    /// `call(addr, inp) -> bytes` (cross-contract call).
    CallOut,
    /// `json_get(json, key) -> bytes`.
    JsonGet,
    /// `json_get_int(json, key) -> int`.
    JsonGetInt,
}

impl KnownFn {
    /// Number of parameters the modeled routine takes.
    pub fn param_count(self) -> usize {
        match self {
            KnownFn::Alloc
            | KnownFn::Itoa
            | KnownFn::Atoi
            | KnownFn::I2b
            | KnownFn::B2i
            | KnownFn::ToHex
            | KnownFn::StorageGet
            | KnownFn::StorageHas => 1,
            KnownFn::Concat
            | KnownFn::EqBytes
            | KnownFn::CallOut
            | KnownFn::JsonGet
            | KnownFn::JsonGetInt => 2,
            KnownFn::Concat3 | KnownFn::Slice | KnownFn::Find => 3,
        }
    }

    /// Stable lowercase name, for audit reports.
    pub fn name(self) -> &'static str {
        match self {
            KnownFn::Alloc => "alloc",
            KnownFn::Concat => "concat",
            KnownFn::Concat3 => "concat3",
            KnownFn::Slice => "slice",
            KnownFn::EqBytes => "eq_bytes",
            KnownFn::Find => "find",
            KnownFn::Itoa => "itoa",
            KnownFn::Atoi => "atoi",
            KnownFn::I2b => "i2b",
            KnownFn::B2i => "b2i",
            KnownFn::ToHex => "to_hex",
            KnownFn::StorageGet => "storage_get",
            KnownFn::StorageHas => "storage_has",
            KnownFn::CallOut => "call",
            KnownFn::JsonGet => "json_get",
            KnownFn::JsonGetInt => "json_get_int",
        }
    }
}

/// One segment of a symbolic storage key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KeySeg {
    /// A literal byte string.
    Lit(Vec<u8>),
    /// `json_get(input(), field)` — the named field of the JSON input.
    InputJson(Vec<u8>),
    /// The whole transaction input.
    InputWhole,
    /// The 32-byte sender id.
    Sender,
    /// `to_hex(sender())` — lowercase hex of the sender id.
    SenderHex,
}

/// A symbolic storage key: a concatenation of segments, optionally
/// followed by unknown bytes (`open_suffix`). An open-suffix expression
/// covers every concrete key beginning with the instantiated prefix; the
/// fully-open expression (`KeyExpr::any()`) covers every key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyExpr {
    /// Key segments, concatenated in order.
    pub segs: Vec<KeySeg>,
    /// True when unknown bytes may follow the listed segments.
    pub open_suffix: bool,
}

impl KeyExpr {
    fn new(raw: Vec<KeySeg>, open_suffix: bool) -> KeyExpr {
        let mut segs: Vec<KeySeg> = Vec::new();
        for s in raw {
            match s {
                KeySeg::Lit(b) if b.is_empty() => {}
                KeySeg::Lit(b) => {
                    if let Some(KeySeg::Lit(prev)) = segs.last_mut() {
                        prev.extend_from_slice(&b);
                    } else {
                        segs.push(KeySeg::Lit(b));
                    }
                }
                other => segs.push(other),
            }
        }
        KeyExpr { segs, open_suffix }
    }

    /// The fully-unknown key expression (covers every key).
    pub fn any() -> KeyExpr {
        KeyExpr {
            segs: Vec::new(),
            open_suffix: true,
        }
    }

    /// True when the expression pins the key exactly (no open suffix).
    pub fn is_exact(&self) -> bool {
        !self.open_suffix
    }

    /// Evaluate against a concrete transaction: returns an exact key or a
    /// required prefix. Uses the same semantics as the CCL stdlib (see the
    /// `ccl_*` ports in this module).
    pub fn instantiate(&self, input: &[u8], sender: &[u8; 32]) -> KeyMatcher {
        let mut k = Vec::new();
        for s in &self.segs {
            match s {
                KeySeg::Lit(b) => k.extend_from_slice(b),
                KeySeg::InputJson(f) => k.extend_from_slice(&ccl_json_get(input, f)),
                KeySeg::InputWhole => k.extend_from_slice(input),
                KeySeg::Sender => k.extend_from_slice(sender),
                KeySeg::SenderHex => k.extend_from_slice(&ccl_to_hex(sender)),
            }
        }
        if self.open_suffix {
            KeyMatcher::Prefix(k)
        } else {
            KeyMatcher::Exact(k)
        }
    }

    /// Human-readable rendering for audit output, e.g. `"bal:"++${input.to}`.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for s in &self.segs {
            parts.push(match s {
                KeySeg::Lit(b) => {
                    if !b.is_empty() && b.iter().all(|c| c.is_ascii_graphic() || *c == b' ') {
                        format!("\"{}\"", String::from_utf8_lossy(b))
                    } else {
                        let hex: String = b.iter().map(|c| format!("{c:02x}")).collect();
                        format!("0x{hex}")
                    }
                }
                KeySeg::InputJson(f) => format!("${{input.{}}}", String::from_utf8_lossy(f)),
                KeySeg::InputWhole => "${input}".to_string(),
                KeySeg::Sender => "${sender}".to_string(),
                KeySeg::SenderHex => "${sender_hex}".to_string(),
            });
        }
        if self.open_suffix {
            parts.push("*".to_string());
        }
        if parts.is_empty() {
            "\"\"".to_string()
        } else {
            parts.join("++")
        }
    }
}

/// A key expression instantiated against one concrete transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyMatcher {
    /// The key is exactly these bytes.
    Exact(Vec<u8>),
    /// The key starts with these bytes (anything may follow).
    Prefix(Vec<u8>),
}

impl KeyMatcher {
    /// Does `key` fall under this matcher?
    pub fn matches(&self, key: &[u8]) -> bool {
        match self {
            KeyMatcher::Exact(k) => key == &k[..],
            KeyMatcher::Prefix(p) => key.starts_with(p),
        }
    }

    /// The exact key bytes, when pinned.
    pub fn exact_key(&self) -> Option<&[u8]> {
        match self {
            KeyMatcher::Exact(k) => Some(k),
            KeyMatcher::Prefix(_) => None,
        }
    }
}

/// Per-exported-method result of the access analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSummary {
    /// Keys the method may read (sorted, deduplicated).
    pub reads: Vec<KeyExpr>,
    /// Keys the method may write (sorted, deduplicated).
    pub writes: Vec<KeyExpr>,
    /// True when the method may perform cross-contract calls.
    pub calls_out: bool,
    /// True when precision was lost entirely: the method may touch any key.
    pub top: bool,
    /// Deterministic static cost proxy (reachable instruction count) for
    /// load balancing; identical on every node for identical bytecode.
    pub cost_hint: u64,
}

impl AccessSummary {
    /// The no-information summary: may read/write anything, call anywhere.
    pub fn top(cost_hint: u64) -> AccessSummary {
        AccessSummary {
            reads: Vec::new(),
            writes: Vec::new(),
            calls_out: true,
            top: true,
            cost_hint: cost_hint.max(1),
        }
    }

    /// True when the summary supports speculation-free static scheduling:
    /// not `Top`, no cross-contract calls, and every key expression exact.
    pub fn is_static(&self) -> bool {
        !self.top
            && !self.calls_out
            && self.reads.iter().all(KeyExpr::is_exact)
            && self.writes.iter().all(KeyExpr::is_exact)
    }
}

/// Access summaries for every exported method of a module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleAccess {
    /// Summary per export name.
    pub methods: BTreeMap<String, AccessSummary>,
}

impl ModuleAccess {
    /// Summary of one exported method, if present.
    pub fn method(&self, name: &str) -> Option<&AccessSummary> {
        self.methods.get(name)
    }
}

/// Analyze every exported method of `module`. `known` maps module function
/// indices to recognized stdlib routines (see [`KnownFn`]); pass an empty
/// map to force full inlining. Never panics; precision degrades to `Top`.
pub fn analyze_module(module: &Module, known: &HashMap<u32, KnownFn>) -> ModuleAccess {
    let exports: Vec<(String, u32)> = module
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.name.is_empty())
        .map(|(i, f)| (f.name.clone(), i as u32))
        .collect();
    let mut methods = BTreeMap::new();
    let arity = match verify_module(module) {
        Ok(s) => s.result_arity,
        Err(_) => {
            for (name, idx) in exports {
                let cost = module.functions[idx as usize].body.len() as u64;
                methods.insert(name, AccessSummary::top(cost));
            }
            return ModuleAccess { methods };
        }
    };
    for (name, idx) in exports {
        let mut an = Analyzer::new(module, known, &arity);
        methods.insert(name, an.analyze_export(idx));
    }
    ModuleAccess { methods }
}

// ---------------------------------------------------------------------------
// Exact Rust ports of the CCL stdlib string routines
// ---------------------------------------------------------------------------
// These mirror `confide-lang/src/stdlib.rs` bit-for-bit on all inputs the
// VM executes without trapping; they are used both for constant folding
// inside the analyzer and for instantiating key expressions against
// concrete transactions (and are differential-tested against the VM).

/// Port of stdlib `find`: first index of `needle` in `hay` at or after
/// `from`, or -1.
pub fn ccl_find(hay: &[u8], needle: &[u8], from: i64) -> i64 {
    let n = hay.len() as i64;
    let m = needle.len() as i64;
    if m == 0 {
        return from;
    }
    let mut i = from.max(0);
    while i + m <= n {
        if hay[i as usize..(i + m) as usize] == needle[..] {
            return i;
        }
        i += 1;
    }
    -1
}

/// Port of stdlib `atoi`: parse a decimal integer prefix (optional leading
/// `-`), stopping at the first non-digit. Wrapping arithmetic like the VM.
pub fn ccl_atoi(b: &[u8]) -> i64 {
    let n = b.len();
    if n == 0 {
        return 0;
    }
    let (neg, mut i) = if b[0] == 45 {
        (true, 1usize)
    } else {
        (false, 0)
    };
    let mut v: i64 = 0;
    while i < n {
        let c = b[i];
        if !(48..=57).contains(&c) {
            break;
        }
        v = v.wrapping_mul(10).wrapping_add((c - 48) as i64);
        i += 1;
    }
    if neg {
        0i64.wrapping_sub(v)
    } else {
        v
    }
}

/// Port of stdlib `itoa` (note `0 - i64::MIN` wraps, matching the VM:
/// `itoa(i64::MIN)` yields just `-`).
pub fn ccl_itoa(v0: i64) -> Vec<u8> {
    if v0 == 0 {
        return b"0".to_vec();
    }
    let neg = v0 < 0;
    let mut v = if neg { 0i64.wrapping_sub(v0) } else { v0 };
    let mut digits: Vec<u8> = Vec::new();
    while v > 0 {
        digits.push((48 + (v % 10)) as u8);
        v /= 10;
    }
    let mut out = Vec::with_capacity(digits.len() + usize::from(neg));
    if neg {
        out.push(45);
    }
    out.extend(digits.iter().rev());
    out
}

/// Port of stdlib `i2b`: 8-byte little-endian encoding.
pub fn ccl_i2b(v: i64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Port of stdlib `b2i`: little-endian decode of up to 8 bytes.
pub fn ccl_b2i(b: &[u8]) -> i64 {
    let n = b.len().min(8);
    let mut v: i64 = 0;
    for (i, byte) in b[..n].iter().enumerate() {
        v |= (*byte as i64) << (8 * i);
    }
    v
}

/// Port of stdlib `to_hex`: lowercase hex expansion.
pub fn ccl_to_hex(b: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(b.len() * 2);
    for v in b {
        for x in [v >> 4, v & 15] {
            out.push(if x < 10 { 48 + x } else { 87 + x });
        }
    }
    out
}

/// Port of stdlib `json_get`: extract the value of `"key":` from a flat
/// JSON object. String values are returned without quotes; other values
/// as their raw token with trailing spaces trimmed.
pub fn ccl_json_get(json: &[u8], key: &[u8]) -> Vec<u8> {
    let mut pat = Vec::with_capacity(key.len() + 2);
    pat.push(b'"');
    pat.extend_from_slice(key);
    pat.push(b'"');
    let p = ccl_find(json, &pat, 0);
    if p < 0 {
        return Vec::new();
    }
    let n = json.len();
    let mut i = p as usize + pat.len();
    while i < n && (json[i] == 32 || json[i] == 58) {
        i += 1;
    }
    if i >= n {
        return Vec::new();
    }
    if json[i] == 34 {
        let s = i + 1;
        let e = ccl_find(json, b"\"", s as i64);
        if e < 0 {
            return Vec::new();
        }
        return json[s..e as usize].to_vec();
    }
    let s2 = i;
    while i < n && json[i] != 44 && json[i] != 125 {
        i += 1;
    }
    let mut e2 = i;
    while e2 > s2 && json[e2 - 1] == 32 {
        e2 -= 1;
    }
    json[s2..e2].to_vec()
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract stack/local value. Object ids index the analyzer's object
/// table; id [`UNK`] is the distinguished unknown object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// Anything.
    Top,
    /// A known 64-bit constant.
    Const(i64),
    /// The (unknown but fixed, non-negative) transaction input length.
    InputLen,
    /// A packed handle `(ptr << 32) | len` over object `x`'s full region.
    Bytes(usize),
    /// The raw pointer to object `x`'s region.
    PtrOf(usize),
    /// The length of object `x`'s region.
    LenOf(usize),
    /// `PtrOf(x) << 32` — a handle's high half mid-packing.
    PtrHi(usize),
    /// `Bytes(x) & PTR_MASK` — a handle with its length stripped.
    TakeHi(usize),
}

fn join(a: AVal, b: AVal) -> AVal {
    use AVal::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Bytes(_), Bytes(_)) => Bytes(UNK),
        (PtrOf(_), PtrOf(_)) => PtrOf(UNK),
        (LenOf(_), LenOf(_)) => LenOf(UNK),
        (PtrHi(_), PtrHi(_)) => PtrHi(UNK),
        (TakeHi(_), TakeHi(_)) => TakeHi(UNK),
        _ => Top,
    }
}

/// Symbolic content of a heap object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BExpr {
    Lit(Vec<u8>),
    Input,
    Sender,
    SenderHex,
    JsonField(Vec<u8>),
    Concat(Vec<usize>),
    Unknown,
}

struct Obj {
    expr: BExpr,
    len: AVal,
    /// Content not yet written — the first write claims it.
    virgin: bool,
    /// Backed by the immutable literal pool.
    lit: bool,
    /// Content pinned to `Unknown` forever (forced site or dirty mode).
    frozen: bool,
    /// Creation site, for cross-pass widening.
    site: u64,
}

/// Analysis abort (recursion, depth, budget, malformed flow) — the whole
/// export degrades to `Top`.
struct Blown;

#[derive(Clone, PartialEq)]
struct State {
    stack: Vec<AVal>,
    locals: Vec<AVal>,
    globals: Vec<AVal>,
}

fn pop_n(stack: &mut Vec<AVal>, n: usize) -> Result<Vec<AVal>, Blown> {
    if stack.len() < n {
        return Err(Blown);
    }
    Ok(stack.split_off(stack.len() - n))
}

fn join_state(a: &State, b: &State) -> Result<State, Blown> {
    if a.stack.len() != b.stack.len()
        || a.locals.len() != b.locals.len()
        || a.globals.len() != b.globals.len()
    {
        return Err(Blown);
    }
    let zip = |x: &[AVal], y: &[AVal]| x.iter().zip(y).map(|(&p, &q)| join(p, q)).collect();
    Ok(State {
        stack: zip(&a.stack, &b.stack),
        locals: zip(&a.locals, &b.locals),
        globals: zip(&a.globals, &b.globals),
    })
}

/// splitmix64 finalizer — deterministic site/context ids that are stable
/// across widening restarts (no interning order dependence).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const ROOT_CTX: u64 = 0x9e37_79b9_7f4a_7c15;

fn site_of(ctx: u64, pc: usize) -> u64 {
    mix(ctx ^ (pc as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
}

fn child_ctx(ctx: u64, pc: usize) -> u64 {
    mix(ctx
        .wrapping_add(0x2545_f491_4f6c_dd1d)
        .wrapping_add((pc as u64) << 17))
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    module: &'a Module,
    known: &'a HashMap<u32, KnownFn>,
    arity: &'a [u32],
    /// Raw stores reachable from this export (prescan): literal-pool
    /// decoding is off and every key degrades to `any()`.
    base_dirty: bool,
    dirty: bool,
    /// Dirty escalation discovered mid-pass (unbounded host write, write
    /// through an unknown pointer); persists across restarts.
    escalated: bool,
    objs: Vec<Obj>,
    site_objs: HashMap<u64, usize>,
    lit_objs: HashMap<Vec<u8>, usize>,
    /// Sites whose objects must be created content-unknown (widening).
    forced: HashSet<u64>,
    restart: bool,
    steps: u64,
    /// site -> (is_write, key); overwritten per visit so the last (widest)
    /// in-state wins.
    events: HashMap<u64, (bool, KeyExpr)>,
    calls_out: bool,
    inline_stack: Vec<u32>,
}

impl<'a> Analyzer<'a> {
    fn new(module: &'a Module, known: &'a HashMap<u32, KnownFn>, arity: &'a [u32]) -> Self {
        Analyzer {
            module,
            known,
            arity,
            base_dirty: false,
            dirty: false,
            escalated: false,
            objs: Vec::new(),
            site_objs: HashMap::new(),
            lit_objs: HashMap::new(),
            forced: HashSet::new(),
            restart: false,
            steps: 0,
            events: HashMap::new(),
            calls_out: false,
            inline_stack: Vec::new(),
        }
    }

    /// Reachable-code scan: static cost proxy plus "does any inlined
    /// (non-recognized) function contain a raw store" — raw stores defeat
    /// content tracking wholesale, so the whole export runs dirty.
    fn prescan(&self, entry: u32) -> (u64, bool) {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack = vec![entry];
        let mut cost: u64 = 0;
        let mut store = false;
        while let Some(fi) = stack.pop() {
            if !seen.insert(fi) {
                continue;
            }
            let Some(f) = self.module.functions.get(fi as usize) else {
                continue;
            };
            cost += f.body.len() as u64;
            let recognized = self.known.contains_key(&fi);
            for instr in &f.body {
                match instr {
                    Instr::Store8(_)
                    | Instr::Store16(_)
                    | Instr::Store32(_)
                    | Instr::Store64(_)
                    | Instr::MemCopy
                    | Instr::MemFill
                        if !recognized =>
                    {
                        store = true;
                    }
                    Instr::Call(t) => stack.push(*t),
                    _ => {}
                }
            }
        }
        (cost, store)
    }

    fn analyze_export(&mut self, fidx: u32) -> AccessSummary {
        let (cost, has_store) = self.prescan(fidx);
        self.base_dirty = has_store;
        let Some(f) = self.module.functions.get(fidx as usize) else {
            return AccessSummary::top(cost);
        };
        let params = f.param_count as usize;
        for _ in 0..MAX_RESTARTS {
            self.reset_pass();
            let globals = vec![AVal::Const(0); self.module.global_count as usize];
            let args = vec![AVal::Top; params];
            if self.run_fn(fidx, args, globals, ROOT_CTX).is_err() {
                return AccessSummary::top(cost);
            }
            if !self.restart {
                return self.summarize(cost);
            }
        }
        AccessSummary::top(cost)
    }

    fn reset_pass(&mut self) {
        self.objs.clear();
        self.objs.push(Obj {
            expr: BExpr::Unknown,
            len: AVal::Top,
            virgin: false,
            lit: false,
            frozen: true,
            site: u64::MAX,
        });
        self.site_objs.clear();
        self.lit_objs.clear();
        self.events.clear();
        self.restart = false;
        self.steps = 0;
        self.calls_out = false;
        self.dirty = self.base_dirty || self.escalated;
        self.inline_stack.clear();
    }

    fn summarize(&self, cost: u64) -> AccessSummary {
        let mut reads: BTreeSet<KeyExpr> = BTreeSet::new();
        let mut writes: BTreeSet<KeyExpr> = BTreeSet::new();
        for (w, k) in self.events.values() {
            if *w {
                writes.insert(k.clone());
            } else {
                reads.insert(k.clone());
            }
        }
        AccessSummary {
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
            calls_out: self.calls_out,
            top: false,
            cost_hint: cost.max(1),
        }
    }

    // -- object table ------------------------------------------------------

    fn fresh(&mut self, site: u64, len: AVal) -> usize {
        if let Some(&id) = self.site_objs.get(&site) {
            if self.objs[id].len != len {
                // Loop-varying allocation size: widen the whole site.
                self.objs[id].len = AVal::Top;
                self.force(site);
            }
            return id;
        }
        let frozen = self.forced.contains(&site) || self.dirty;
        let id = self.objs.len();
        self.objs.push(Obj {
            expr: BExpr::Unknown,
            len,
            virgin: !frozen,
            lit: false,
            frozen,
            site,
        });
        self.site_objs.insert(site, id);
        id
    }

    fn lit(&mut self, bytes: Vec<u8>) -> usize {
        if let Some(&id) = self.lit_objs.get(&bytes) {
            return id;
        }
        let id = self.objs.len();
        self.objs.push(Obj {
            expr: BExpr::Lit(bytes.clone()),
            len: AVal::Const(bytes.len() as i64),
            virgin: false,
            lit: true,
            frozen: true,
            site: u64::MAX,
        });
        self.lit_objs.insert(bytes, id);
        id
    }

    fn force(&mut self, site: u64) {
        if self.forced.insert(site) {
            self.restart = true;
        }
        if let Some(&id) = self.site_objs.get(&site) {
            self.objs[id].expr = BExpr::Unknown;
            self.objs[id].virgin = false;
            self.objs[id].frozen = true;
        }
    }

    fn escalate(&mut self) {
        if !self.dirty {
            self.dirty = true;
            self.escalated = true;
            self.restart = true;
        }
    }

    fn set_content(&mut self, id: usize, e: BExpr) {
        if id == UNK {
            // Write through a pointer we cannot attribute: could clobber
            // any object, so content tracking is off for this export.
            self.escalate();
            return;
        }
        if self.objs[id].lit {
            // Host write into the literal pool: pool decoding is unsound.
            self.escalate();
            return;
        }
        if self.objs[id].frozen {
            return;
        }
        if self.objs[id].virgin {
            self.objs[id].expr = e;
            self.objs[id].virgin = false;
            return;
        }
        if self.objs[id].expr == e {
            return;
        }
        let site = self.objs[id].site;
        self.force(site);
    }

    // -- literal pool ------------------------------------------------------

    fn pool_bytes(&self, ptr: u64, len: u64) -> Option<Vec<u8>> {
        if self.dirty {
            return None;
        }
        if len == 0 {
            return Some(Vec::new());
        }
        let end_req = ptr.checked_add(len)?;
        for seg in &self.module.data {
            let off = seg.offset as u64;
            let end = off + seg.bytes.len() as u64;
            if ptr >= off && end_req <= end {
                let s = (ptr - off) as usize;
                return Some(seg.bytes[s..s + len as usize].to_vec());
            }
        }
        None
    }

    /// Resolve a handle-valued `AVal` to an object id (UNK when opaque).
    fn resolve(&mut self, v: AVal) -> usize {
        match v {
            AVal::Bytes(x) => x,
            AVal::Const(c) => {
                let ptr = (c as u64) >> 32;
                let len = (c as u64) & 0xffff_ffff;
                match self.pool_bytes(ptr, len) {
                    Some(b) => self.lit(b),
                    None => UNK,
                }
            }
            _ => UNK,
        }
    }

    // -- key expressions ---------------------------------------------------

    fn key_expr_of(&self, id: usize) -> KeyExpr {
        if self.dirty {
            return KeyExpr::any();
        }
        let mut segs = Vec::new();
        let mut open = false;
        self.collect_segs(id, 0, &mut segs, &mut open);
        KeyExpr::new(segs, open)
    }

    fn collect_segs(&self, id: usize, depth: usize, segs: &mut Vec<KeySeg>, open: &mut bool) {
        if *open {
            return;
        }
        if depth > MAX_EXPR_DEPTH {
            *open = true;
            return;
        }
        match &self.objs[id].expr {
            BExpr::Lit(b) => segs.push(KeySeg::Lit(b.clone())),
            BExpr::Input => segs.push(KeySeg::InputWhole),
            BExpr::Sender => segs.push(KeySeg::Sender),
            BExpr::SenderHex => segs.push(KeySeg::SenderHex),
            BExpr::JsonField(f) => segs.push(KeySeg::InputJson(f.clone())),
            BExpr::Concat(ids) => {
                for &c in ids {
                    self.collect_segs(c, depth + 1, segs, open);
                }
            }
            BExpr::Unknown => *open = true,
        }
    }

    /// Storage key from an explicit (ptr, len) pair as passed to host calls.
    fn key_of(&mut self, ptr: AVal, len: AVal) -> KeyExpr {
        if self.dirty {
            return KeyExpr::any();
        }
        match (ptr, len) {
            (AVal::PtrOf(b), l) if b != UNK => {
                let covers = matches!(l, AVal::LenOf(x) if x == b)
                    || (l != AVal::Top && l == self.objs[b].len);
                if covers {
                    self.key_expr_of(b)
                } else {
                    KeyExpr::any()
                }
            }
            (AVal::Const(p), AVal::Const(l)) if l >= 0 => {
                match self.pool_bytes(p as u64, l as u64) {
                    Some(bytes) => KeyExpr::new(vec![KeySeg::Lit(bytes)], false),
                    None => KeyExpr::any(),
                }
            }
            _ => KeyExpr::any(),
        }
    }

    fn record(&mut self, site: u64, write: bool, key: KeyExpr) {
        self.events.insert(site, (write, key));
    }

    // -- abstract interpretation ------------------------------------------

    fn run_fn(
        &mut self,
        fidx: u32,
        args: Vec<AVal>,
        globals: Vec<AVal>,
        ctx: u64,
    ) -> Result<(Vec<AVal>, Vec<AVal>), Blown> {
        if self.inline_stack.len() >= MAX_INLINE_DEPTH || self.inline_stack.contains(&fidx) {
            return Err(Blown);
        }
        let module = self.module;
        let f = module.functions.get(fidx as usize).ok_or(Blown)?;
        let arity = *self.arity.get(fidx as usize).ok_or(Blown)? as usize;
        if args.len() != f.param_count as usize {
            return Err(Blown);
        }
        let mut locals = args;
        locals.resize((f.param_count + f.local_count) as usize, AVal::Const(0));
        self.inline_stack.push(fidx);
        let r = self.run_fn_body(
            f,
            arity,
            State {
                stack: Vec::new(),
                locals,
                globals,
            },
            ctx,
        );
        self.inline_stack.pop();
        r
    }

    #[allow(clippy::too_many_lines)]
    fn run_fn_body(
        &mut self,
        f: &'a Function,
        arity: usize,
        entry: State,
        ctx: u64,
    ) -> Result<(Vec<AVal>, Vec<AVal>), Blown> {
        let len = f.body.len();
        let global_count = self.module.global_count as usize;
        let mut exit: Option<(Vec<AVal>, Vec<AVal>)> = None;
        let merge_exit =
            |exit: &mut Option<(Vec<AVal>, Vec<AVal>)>, rets: Vec<AVal>, globals: Vec<AVal>| {
                match exit {
                    None => *exit = Some((rets, globals)),
                    Some((r0, g0)) => {
                        if r0.len() != rets.len() || g0.len() != globals.len() {
                            return Err(Blown);
                        }
                        for (a, b) in r0.iter_mut().zip(rets) {
                            *a = join(*a, b);
                        }
                        for (a, b) in g0.iter_mut().zip(globals) {
                            *a = join(*a, b);
                        }
                    }
                }
                Ok(())
            };
        if len == 0 {
            let mut st = entry;
            let rets = pop_n(&mut st.stack, arity)?;
            return Ok((rets, st.globals));
        }
        let mut states: Vec<Option<State>> = vec![None; len];
        states[0] = Some(entry);
        let mut work: Vec<usize> = vec![0];
        while let Some(pc) = work.pop() {
            self.steps += 1;
            if self.steps > STEP_BUDGET {
                return Err(Blown);
            }
            let mut st = states[pc].clone().ok_or(Blown)?;
            let site = site_of(ctx, pc);
            // (successor pc, state); pc == len means fall-through return.
            let mut succs: Vec<(usize, State)> = Vec::new();
            macro_rules! pop {
                () => {
                    st.stack.pop().ok_or(Blown)?
                };
            }
            macro_rules! fall {
                () => {
                    succs.push((pc + 1, st))
                };
            }
            match f.body[pc] {
                Instr::Unreachable => {} // trap: no successors
                Instr::Nop => fall!(),
                Instr::I64Const(v) => {
                    st.stack.push(AVal::Const(v));
                    fall!();
                }
                Instr::LocalGet(n) => {
                    let v = *st.locals.get(n as usize).ok_or(Blown)?;
                    st.stack.push(v);
                    fall!();
                }
                Instr::LocalSet(n) => {
                    let v = pop!();
                    *st.locals.get_mut(n as usize).ok_or(Blown)? = v;
                    fall!();
                }
                Instr::LocalTee(n) => {
                    let v = *st.stack.last().ok_or(Blown)?;
                    *st.locals.get_mut(n as usize).ok_or(Blown)? = v;
                    fall!();
                }
                Instr::GlobalGet(n) => {
                    let v = *st.globals.get(n as usize).ok_or(Blown)?;
                    st.stack.push(v);
                    fall!();
                }
                Instr::GlobalSet(n) => {
                    let v = pop!();
                    *st.globals.get_mut(n as usize).ok_or(Blown)? = v;
                    fall!();
                }
                Instr::Jmp(t) => succs.push((t as usize, st)),
                Instr::JmpIf(t) => {
                    let c = pop!();
                    match c {
                        AVal::Const(v) if v != 0 => succs.push((t as usize, st)),
                        AVal::Const(_) => fall!(),
                        _ => {
                            succs.push((t as usize, st.clone()));
                            fall!();
                        }
                    }
                }
                Instr::JmpIfZ(t) => {
                    let c = pop!();
                    match c {
                        AVal::Const(0) => succs.push((t as usize, st)),
                        AVal::Const(_) => fall!(),
                        _ => {
                            succs.push((t as usize, st.clone()));
                            fall!();
                        }
                    }
                }
                Instr::Ret => {
                    let rets = pop_n(&mut st.stack, arity)?;
                    merge_exit(&mut exit, rets, st.globals)?;
                }
                Instr::Drop => {
                    pop!();
                    fall!();
                }
                Instr::Select => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    st.stack.push(match c {
                        AVal::Const(v) => {
                            if v != 0 {
                                a
                            } else {
                                b
                            }
                        }
                        _ => join(a, b),
                    });
                    fall!();
                }
                Instr::Load8U(off) => {
                    self.load(&mut st, off, 1)?;
                    fall!();
                }
                Instr::Load16U(off) => {
                    self.load(&mut st, off, 2)?;
                    fall!();
                }
                Instr::Load32U(off) => {
                    self.load(&mut st, off, 4)?;
                    fall!();
                }
                Instr::Load64(off) => {
                    self.load(&mut st, off, 8)?;
                    fall!();
                }
                // Raw stores only execute in dirty mode (prescan guarantees
                // it), where loads and keys are already fully degraded —
                // popping the operands is a sound transfer.
                Instr::Store8(_) | Instr::Store16(_) | Instr::Store32(_) | Instr::Store64(_) => {
                    pop!();
                    pop!();
                    fall!();
                }
                Instr::MemCopy | Instr::MemFill => {
                    pop!();
                    pop!();
                    pop!();
                    fall!();
                }
                Instr::Eqz => {
                    let v = pop!();
                    st.stack.push(match v {
                        AVal::Const(c) => AVal::Const((c == 0) as i64),
                        _ => AVal::Top,
                    });
                    fall!();
                }
                Instr::Call(fi) => {
                    if let Some(&k) = self.known.get(&fi) {
                        self.known_call(&mut st, k, site)?;
                    } else {
                        let module = self.module;
                        let cf = module.functions.get(fi as usize).ok_or(Blown)?;
                        let args = pop_n(&mut st.stack, cf.param_count as usize)?;
                        let globals = std::mem::take(&mut st.globals);
                        let (rets, g2) = self.run_fn(fi, args, globals, child_ctx(ctx, pc))?;
                        st.globals = g2;
                        st.stack.extend(rets);
                    }
                    fall!();
                }
                Instr::CallHost(h) => {
                    self.do_host(&mut st, h, site)?;
                    fall!();
                }
                Instr::Add
                | Instr::Sub
                | Instr::Mul
                | Instr::DivS
                | Instr::DivU
                | Instr::RemS
                | Instr::RemU
                | Instr::And
                | Instr::Or
                | Instr::Xor
                | Instr::Shl
                | Instr::ShrS
                | Instr::ShrU
                | Instr::Eq
                | Instr::Ne
                | Instr::LtS
                | Instr::LtU
                | Instr::GtS
                | Instr::GtU
                | Instr::LeS
                | Instr::LeU
                | Instr::GeS
                | Instr::GeU => {
                    let b = pop!();
                    let a = pop!();
                    let r = self.binop_val(a, b, f.body[pc]);
                    st.stack.push(r);
                    fall!();
                }
                // Fusion output never appears in deploy-time bytecode.
                Instr::FusedGetGet(..)
                | Instr::FusedIncLocal(..)
                | Instr::FusedAddConst(..)
                | Instr::FusedBrIfLtS(..)
                | Instr::FusedBrIfGeS(..)
                | Instr::FusedBrIfEq(..)
                | Instr::FusedBrIfNe(..)
                | Instr::FusedLocalLoad8U(..) => return Err(Blown),
            }
            for (spc, sst) in succs {
                if spc == len {
                    let mut sst = sst;
                    let rets = pop_n(&mut sst.stack, arity)?;
                    merge_exit(&mut exit, rets, sst.globals)?;
                    continue;
                }
                if spc > len {
                    return Err(Blown);
                }
                match &states[spc] {
                    None => {
                        states[spc] = Some(sst);
                        work.push(spc);
                    }
                    Some(old) => {
                        let j = join_state(old, &sst)?;
                        if j != *old {
                            states[spc] = Some(j);
                            work.push(spc);
                        }
                    }
                }
            }
        }
        match exit {
            Some(e) => Ok(e),
            // No reachable exit: the function diverges; any return value
            // is vacuously sound.
            None => Ok((vec![AVal::Top; arity], vec![AVal::Top; global_count])),
        }
    }

    fn load(&mut self, st: &mut State, off: u32, width: u64) -> Result<(), Blown> {
        let addr = st.stack.pop().ok_or(Blown)?;
        let v = match addr {
            AVal::Const(a) if a >= 0 => {
                let start = (a as u64).wrapping_add(off as u64);
                match self.pool_bytes(start, width) {
                    Some(bytes) => {
                        let mut v: i64 = 0;
                        for (i, byte) in bytes.iter().enumerate() {
                            v |= (*byte as i64) << (8 * i);
                        }
                        AVal::Const(v)
                    }
                    None => AVal::Top,
                }
            }
            _ => AVal::Top,
        };
        st.stack.push(v);
        Ok(())
    }

    /// Transfer for two-operand arithmetic, including the handle-packing
    /// pattern rules of the CCL code generator.
    fn binop_val(&mut self, a: AVal, b: AVal, instr: Instr) -> AVal {
        use AVal::*;
        match (instr, a, b) {
            (Instr::ShrU, Bytes(x), Const(32)) => return PtrOf(x),
            (Instr::And, Bytes(x), Const(c)) | (Instr::And, Const(c), Bytes(x))
                if c == LEN_MASK =>
            {
                return LenOf(x)
            }
            (Instr::And, Bytes(x), Const(c)) | (Instr::And, Const(c), Bytes(x))
                if c == PTR_MASK =>
            {
                return TakeHi(x)
            }
            (Instr::Shl, PtrOf(x), Const(32)) => return PtrHi(x),
            (Instr::Or, PtrHi(x), l) | (Instr::Or, l, PtrHi(x)) => return self.pack(x, l),
            (Instr::Or, TakeHi(x), l) | (Instr::Or, l, TakeHi(x)) => return self.take_pack(x, l),
            _ => {}
        }
        if let (Const(x), Const(y)) = (a, b) {
            if let Some(v) = fold(x, y, instr) {
                return Const(v);
            }
        }
        Top
    }

    /// `(PtrOf(x) << 32) | l`: a full handle over `x` only when `l`
    /// provably equals `x`'s region length.
    fn pack(&mut self, x: usize, l: AVal) -> AVal {
        if x != UNK && l != AVal::Top && l == self.objs[x].len {
            AVal::Bytes(x)
        } else {
            AVal::Top
        }
    }

    /// `(Bytes(x) & PTR_MASK) | l` — the codegen `take(b, n)` idiom.
    fn take_pack(&mut self, x: usize, l: AVal) -> AVal {
        if x == UNK {
            return AVal::Top;
        }
        if matches!(l, AVal::LenOf(y) if y == x) {
            return AVal::Bytes(x);
        }
        if l != AVal::Top && l == self.objs[x].len {
            return AVal::Bytes(x);
        }
        if let (BExpr::Lit(bytes), AVal::Const(n)) = (&self.objs[x].expr, l) {
            if !self.dirty && n >= 0 && (n as usize) <= bytes.len() {
                let p = bytes[..n as usize].to_vec();
                let id = self.lit(p);
                return AVal::Bytes(id);
            }
        }
        AVal::Top
    }

    fn obj_with_expr(&mut self, site: u64, len: AVal, e: BExpr) -> usize {
        let id = self.fresh(site, len);
        self.set_content(id, e);
        id
    }

    fn expr_of(&self, id: usize) -> BExpr {
        self.objs[id].expr.clone()
    }

    /// Transfer for a recognized stdlib call: exact effects, no inlining.
    fn known_call(&mut self, st: &mut State, k: KnownFn, site: u64) -> Result<(), Blown> {
        let args = pop_n(&mut st.stack, k.param_count())?;
        // Every stdlib helper may bump the allocator global; nothing in
        // compiled code reads it outside `__alloc`, so just drop precision.
        if let Some(g0) = st.globals.first_mut() {
            *g0 = AVal::Top;
        }
        let result: Option<AVal> = match k {
            KnownFn::Alloc => {
                let n = args[0];
                let nonneg = matches!(n, AVal::Const(c) if c >= 0)
                    || matches!(n, AVal::InputLen | AVal::LenOf(_));
                if !nonneg {
                    // A negative size walks the bump pointer backwards over
                    // the literal pool — give up on pool decoding.
                    self.escalate();
                }
                Some(AVal::PtrOf(self.fresh(site, n)))
            }
            KnownFn::Concat => Some(self.concat_vals(site, &args[..2])),
            KnownFn::Concat3 => Some(self.concat_vals(site, &args[..3])),
            KnownFn::Slice => {
                let xb = self.resolve(args[0]);
                let folded = match (self.expr_of(xb), args[1], args[2]) {
                    (BExpr::Lit(bytes), AVal::Const(s), AVal::Const(n))
                        if s >= 0
                            && n >= 0
                            && s.checked_add(n)
                                .is_some_and(|e| e as u64 <= bytes.len() as u64) =>
                    {
                        let p = bytes[s as usize..(s + n) as usize].to_vec();
                        Some(AVal::Bytes(self.lit(p)))
                    }
                    _ => None,
                };
                Some(folded.unwrap_or_else(|| {
                    let len = match args[2] {
                        AVal::Const(c) if c >= 0 => args[2],
                        AVal::InputLen | AVal::LenOf(_) => args[2],
                        _ => AVal::Top,
                    };
                    AVal::Bytes(self.obj_with_expr(site, len, BExpr::Unknown))
                }))
            }
            KnownFn::EqBytes => {
                let xa = self.resolve(args[0]);
                let xb = self.resolve(args[1]);
                match (self.expr_of(xa), self.expr_of(xb)) {
                    (BExpr::Lit(a), BExpr::Lit(b)) => Some(AVal::Const((a == b) as i64)),
                    _ => Some(AVal::Top),
                }
            }
            KnownFn::Find => {
                let xh = self.resolve(args[0]);
                let xn = self.resolve(args[1]);
                match (self.expr_of(xh), self.expr_of(xn), args[2]) {
                    (BExpr::Lit(h), BExpr::Lit(nd), AVal::Const(f)) => {
                        Some(AVal::Const(ccl_find(&h, &nd, f)))
                    }
                    _ => Some(AVal::Top),
                }
            }
            KnownFn::Itoa => match args[0] {
                AVal::Const(v) => {
                    let b = ccl_itoa(v);
                    Some(AVal::Bytes(self.lit(b)))
                }
                _ => Some(AVal::Bytes(self.obj_with_expr(
                    site,
                    AVal::Top,
                    BExpr::Unknown,
                ))),
            },
            KnownFn::Atoi => {
                let xb = self.resolve(args[0]);
                match self.expr_of(xb) {
                    BExpr::Lit(b) => Some(AVal::Const(ccl_atoi(&b))),
                    _ => Some(AVal::Top),
                }
            }
            KnownFn::I2b => match args[0] {
                AVal::Const(v) => {
                    let b = ccl_i2b(v);
                    Some(AVal::Bytes(self.lit(b)))
                }
                _ => Some(AVal::Bytes(self.obj_with_expr(
                    site,
                    AVal::Const(8),
                    BExpr::Unknown,
                ))),
            },
            KnownFn::B2i => {
                let xb = self.resolve(args[0]);
                match self.expr_of(xb) {
                    BExpr::Lit(b) => Some(AVal::Const(ccl_b2i(&b))),
                    _ => Some(AVal::Top),
                }
            }
            KnownFn::ToHex => {
                let xb = self.resolve(args[0]);
                match self.expr_of(xb) {
                    BExpr::Lit(b) => {
                        let h = ccl_to_hex(&b);
                        Some(AVal::Bytes(self.lit(h)))
                    }
                    BExpr::Sender => Some(AVal::Bytes(self.obj_with_expr(
                        site,
                        AVal::Const(64),
                        BExpr::SenderHex,
                    ))),
                    _ => Some(AVal::Bytes(self.obj_with_expr(
                        site,
                        AVal::Top,
                        BExpr::Unknown,
                    ))),
                }
            }
            KnownFn::StorageGet => {
                let kx = self.resolve(args[0]);
                let key = self.key_expr_of(kx);
                self.record(site, false, key);
                Some(AVal::Bytes(self.obj_with_expr(
                    site,
                    AVal::Top,
                    BExpr::Unknown,
                )))
            }
            KnownFn::StorageHas => {
                let kx = self.resolve(args[0]);
                let key = self.key_expr_of(kx);
                self.record(site, false, key);
                Some(AVal::Top)
            }
            KnownFn::CallOut => {
                self.calls_out = true;
                Some(AVal::Bytes(self.obj_with_expr(
                    site,
                    AVal::Top,
                    BExpr::Unknown,
                )))
            }
            KnownFn::JsonGet => {
                let xj = self.resolve(args[0]);
                let xk = self.resolve(args[1]);
                let v = match (self.expr_of(xj), self.expr_of(xk)) {
                    (BExpr::Lit(j), BExpr::Lit(kb)) => {
                        let r = ccl_json_get(&j, &kb);
                        AVal::Bytes(self.lit(r))
                    }
                    (BExpr::Input, BExpr::Lit(kb)) => {
                        AVal::Bytes(self.obj_with_expr(site, AVal::Top, BExpr::JsonField(kb)))
                    }
                    _ => AVal::Bytes(self.obj_with_expr(site, AVal::Top, BExpr::Unknown)),
                };
                Some(v)
            }
            KnownFn::JsonGetInt => {
                let xj = self.resolve(args[0]);
                let xk = self.resolve(args[1]);
                match (self.expr_of(xj), self.expr_of(xk)) {
                    (BExpr::Lit(j), BExpr::Lit(kb)) => {
                        Some(AVal::Const(ccl_atoi(&ccl_json_get(&j, &kb))))
                    }
                    _ => Some(AVal::Top),
                }
            }
        };
        if let Some(v) = result {
            st.stack.push(v);
        }
        Ok(())
    }

    fn concat_vals(&mut self, site: u64, parts: &[AVal]) -> AVal {
        let ids: Vec<usize> = parts.iter().map(|&p| self.resolve(p)).collect();
        // Fold when every part is a literal.
        let mut all_lit: Option<Vec<u8>> = Some(Vec::new());
        for &id in &ids {
            match (&self.objs[id].expr, &mut all_lit) {
                (BExpr::Lit(b), Some(acc)) => acc.extend_from_slice(b),
                _ => all_lit = None,
            }
        }
        if let Some(bytes) = all_lit {
            if !self.dirty {
                let id = self.lit(bytes);
                return AVal::Bytes(id);
            }
        }
        let len = ids
            .iter()
            .try_fold(0i64, |acc, &id| match self.objs[id].len {
                AVal::Const(c) => acc.checked_add(c),
                _ => None,
            })
            .map_or(AVal::Top, AVal::Const);
        AVal::Bytes(self.obj_with_expr(site, len, BExpr::Concat(ids)))
    }

    /// Transfer for raw host calls. Host writes into linear memory are
    /// only modeled when provably contained in one tracked buffer;
    /// anything else escalates to dirty mode.
    fn do_host(&mut self, st: &mut State, h: HostFn, site: u64) -> Result<(), Blown> {
        macro_rules! pop {
            () => {
                st.stack.pop().ok_or(Blown)?
            };
        }
        match h {
            HostFn::InputLen => st.stack.push(AVal::InputLen),
            HostFn::InputRead => {
                let dst = pop!();
                // Writes exactly input_len bytes: safe only into a buffer
                // allocated with exactly that length.
                match dst {
                    AVal::PtrOf(b) if b != UNK && self.objs[b].len == AVal::InputLen => {
                        self.set_content(b, BExpr::Input);
                    }
                    _ => self.escalate(),
                }
            }
            HostFn::Ret => {
                pop!();
                pop!();
            }
            HostFn::GetStorage => {
                let cap = pop!();
                let vp = pop!();
                let klen = pop!();
                let kptr = pop!();
                let key = self.key_of(kptr, klen);
                self.record(site, false, key);
                // The interpreter clamps the value write at `cap` bytes.
                let contained = match (vp, cap) {
                    (AVal::PtrOf(b), AVal::LenOf(x)) if b != UNK && x == b => true,
                    (AVal::PtrOf(b), AVal::Const(c)) if b != UNK => {
                        matches!(self.objs[b].len, AVal::Const(l) if c >= 0 && c <= l)
                    }
                    _ => false,
                };
                if contained {
                    if let AVal::PtrOf(b) = vp {
                        self.set_content(b, BExpr::Unknown);
                    }
                } else {
                    self.escalate();
                }
                st.stack.push(AVal::Top);
            }
            HostFn::SetStorage => {
                let _vlen = pop!();
                let _vptr = pop!();
                let klen = pop!();
                let kptr = pop!();
                let key = self.key_of(kptr, klen);
                self.record(site, true, key);
            }
            HostFn::Sha256 | HostFn::Keccak256 => {
                let out = pop!();
                let _len = pop!();
                let _ptr = pop!();
                // Writes exactly 32 bytes.
                match out {
                    AVal::PtrOf(b)
                        if b != UNK && matches!(self.objs[b].len, AVal::Const(c) if c >= 32) =>
                    {
                        self.set_content(b, BExpr::Unknown);
                    }
                    _ => self.escalate(),
                }
            }
            HostFn::CallContract => {
                let cap = pop!();
                let out = pop!();
                let _in_len = pop!();
                let _in_ptr = pop!();
                let _addr = pop!();
                self.calls_out = true;
                let contained = match (out, cap) {
                    (AVal::PtrOf(b), AVal::LenOf(x)) if b != UNK && x == b => true,
                    (AVal::PtrOf(b), AVal::Const(c)) if b != UNK => {
                        matches!(self.objs[b].len, AVal::Const(l) if c >= 0 && c <= l)
                    }
                    _ => false,
                };
                if contained {
                    if let AVal::PtrOf(b) = out {
                        self.set_content(b, BExpr::Unknown);
                    }
                } else {
                    self.escalate();
                }
                st.stack.push(AVal::Top);
            }
            HostFn::Sender => {
                let out = pop!();
                // Writes exactly 32 bytes.
                match out {
                    AVal::PtrOf(b)
                        if b != UNK && matches!(self.objs[b].len, AVal::Const(c) if c >= 32) =>
                    {
                        self.set_content(b, BExpr::Sender);
                    }
                    _ => self.escalate(),
                }
            }
            HostFn::Log => {
                pop!();
                pop!();
            }
        }
        Ok(())
    }
}

/// Constant folding with the interpreter's exact semantics; `None` for
/// trapping cases (division by zero / overflow), which soundly degrade
/// to `Top`.
fn fold(a: i64, b: i64, instr: Instr) -> Option<i64> {
    Some(match instr {
        Instr::Add => a.wrapping_add(b),
        Instr::Sub => a.wrapping_sub(b),
        Instr::Mul => a.wrapping_mul(b),
        Instr::DivS => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            a / b
        }
        Instr::DivU => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        Instr::RemS => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            a % b
        }
        Instr::RemU => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        Instr::And => a & b,
        Instr::Or => a | b,
        Instr::Xor => a ^ b,
        Instr::Shl => a.wrapping_shl(b as u32),
        Instr::ShrS => a.wrapping_shr(b as u32),
        Instr::ShrU => ((a as u64).wrapping_shr(b as u32)) as i64,
        Instr::Eq => (a == b) as i64,
        Instr::Ne => (a != b) as i64,
        Instr::LtS => (a < b) as i64,
        Instr::LtU => ((a as u64) < (b as u64)) as i64,
        Instr::GtS => (a > b) as i64,
        Instr::GtU => ((a as u64) > (b as u64)) as i64,
        Instr::LeS => (a <= b) as i64,
        Instr::LeU => ((a as u64) <= (b as u64)) as i64,
        Instr::GeS => (a >= b) as i64,
        Instr::GeU => ((a as u64) >= (b as u64)) as i64,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::opcode::Instr::*;

    #[test]
    fn ccl_ports_match_stdlib_semantics() {
        assert_eq!(ccl_find(b"hello", b"ll", 0), 2);
        assert_eq!(ccl_find(b"hello", b"ll", 3), -1);
        assert_eq!(ccl_find(b"hello", b"", 3), 3);
        assert_eq!(ccl_atoi(b"-123x9"), -123);
        assert_eq!(ccl_atoi(b""), 0);
        assert_eq!(ccl_itoa(0), b"0".to_vec());
        assert_eq!(ccl_itoa(-45), b"-45".to_vec());
        // 0 - i64::MIN wraps negative, so the digit loop never runs.
        assert_eq!(ccl_itoa(i64::MIN), b"-".to_vec());
        assert_eq!(ccl_b2i(&ccl_i2b(-7)), -7);
        assert_eq!(ccl_to_hex(&[0x0f, 0xa0]), b"0fa0".to_vec());
        assert_eq!(ccl_json_get(br#"{"to":"bob","n": 42 }"#, b"to"), b"bob");
        assert_eq!(ccl_json_get(br#"{"to":"bob","n": 42 }"#, b"n"), b"42");
        assert_eq!(ccl_json_get(br#"{"to":"bob"}"#, b"missing"), b"");
    }

    #[test]
    fn key_matcher_and_instantiation() {
        let k = KeyExpr::new(
            vec![
                KeySeg::Lit(b"bal:".to_vec()),
                KeySeg::InputJson(b"to".to_vec()),
            ],
            false,
        );
        assert!(k.is_exact());
        let m = k.instantiate(br#"{"to":"alice"}"#, &[0u8; 32]);
        assert_eq!(m.exact_key(), Some(&b"bal:alice"[..]));
        assert!(m.matches(b"bal:alice"));
        assert!(!m.matches(b"bal:bob"));
        let open = KeyExpr::new(vec![KeySeg::Lit(b"acct:".to_vec())], true);
        let pm = open.instantiate(b"", &[0u8; 32]);
        assert!(pm.matches(b"acct:anything"));
        assert!(!pm.matches(b"acc"));
        assert!(KeyExpr::any().instantiate(b"", &[0u8; 32]).matches(b"x"));
    }

    /// Constant key bytes passed straight from the literal pool resolve
    /// to an exact literal key.
    #[test]
    fn const_pool_key_is_exact() {
        let mut m = ModuleBuilder::new();
        m.data(8, b"count");
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(8)
            .i64(5)
            .i64(0)
            .i64(0)
            .op(CallHost(crate::opcode::HostFn::SetStorage));
        f.op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let acc = analyze_module(&module, &HashMap::new());
        let s = acc.method("main").unwrap();
        assert!(!s.top && !s.calls_out, "{s:?}");
        assert_eq!(
            s.writes,
            vec![KeyExpr::new(vec![KeySeg::Lit(b"count".to_vec())], false)]
        );
        assert!(s.is_static());
    }

    /// A recognized storage_get with a packed-constant key handle records
    /// an exact read.
    #[test]
    fn recognized_storage_get_records_exact_read() {
        let mut m = ModuleBuilder::new();
        m.data(8, b"count");
        let mut g = FuncBuilder::new("", 1, 0);
        g.op(LocalGet(0)).op(Ret);
        m.func(g.finish()); // index 0, stand-in recognized as storage_get
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64((8i64 << 32) | 5).op(Call(0)).op(Drop).op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let mut known = HashMap::new();
        known.insert(0u32, KnownFn::StorageGet);
        let acc = analyze_module(&module, &known);
        let s = acc.method("main").unwrap();
        assert_eq!(
            s.reads,
            vec![KeyExpr::new(vec![KeySeg::Lit(b"count".to_vec())], false)]
        );
        assert!(s.is_static());
    }

    /// The compiled `input()` packing idiom yields a whole-input key.
    #[test]
    fn input_packing_idiom_is_recognized() {
        let mut m = ModuleBuilder::new();
        let mut a = FuncBuilder::new("", 1, 0);
        a.op(LocalGet(0)).op(Ret);
        m.func(a.finish()); // index 0, recognized as __alloc
        let mut f = FuncBuilder::new("main", 0, 3);
        use crate::opcode::HostFn;
        f.op(CallHost(HostFn::InputLen)).op(LocalSet(0));
        f.op(LocalGet(0)).op(Call(0)).op(LocalSet(1));
        f.op(LocalGet(1)).op(CallHost(HostFn::InputRead));
        f.op(LocalGet(1))
            .i64(32)
            .op(Shl)
            .op(LocalGet(0))
            .op(Or)
            .op(LocalSet(2));
        // storage_set(input_handle, empty)
        f.op(LocalGet(2)).i64(32).op(ShrU);
        f.op(LocalGet(2)).i64(0xffff_ffff).op(And);
        f.i64(0).i64(0).op(CallHost(HostFn::SetStorage));
        f.op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let mut known = HashMap::new();
        known.insert(0u32, KnownFn::Alloc);
        let acc = analyze_module(&module, &known);
        let s = acc.method("main").unwrap();
        assert_eq!(
            s.writes,
            vec![KeyExpr::new(vec![KeySeg::InputWhole], false)]
        );
        assert!(s.is_static());
    }

    /// Raw stores in reachable code force dirty mode: the summary stays
    /// sound by degrading every key to the open prefix.
    #[test]
    fn raw_store_degrades_keys_to_open() {
        let mut m = ModuleBuilder::new();
        m.data(8, b"count");
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(64).i64(1).op(Store8(0));
        f.i64(8)
            .i64(5)
            .i64(0)
            .i64(0)
            .op(CallHost(crate::opcode::HostFn::SetStorage));
        f.op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let acc = analyze_module(&module, &HashMap::new());
        let s = acc.method("main").unwrap();
        assert!(!s.top);
        assert_eq!(s.writes, vec![KeyExpr::any()]);
        assert!(!s.is_static());
    }

    /// Recursion defeats inlining: the summary must be Top, never absent.
    #[test]
    fn recursion_degrades_to_top() {
        let mut m = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Call(0)).op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let acc = analyze_module(&module, &HashMap::new());
        let s = acc.method("main").unwrap();
        assert!(s.top);
        assert!(!s.is_static());
    }

    /// An unverifiable module still gets (Top) summaries for every export.
    #[test]
    fn unverifiable_module_is_all_top() {
        let mut m = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Drop).op(Ret); // stack underflow
        m.func(f.finish());
        let module = m.finish();
        let acc = analyze_module(&module, &HashMap::new());
        assert!(acc.method("main").unwrap().top);
    }

    /// Two branches writing different constant keys are both recorded.
    #[test]
    fn branches_record_all_keys() {
        let mut m = ModuleBuilder::new();
        m.data(8, b"aakey");
        m.data(16, b"bbkey");
        let mut f = FuncBuilder::new("main", 1, 0);
        let other = f.label();
        let done = f.label();
        f.op(LocalGet(0));
        f.jmp_if(other);
        f.i64(8)
            .i64(5)
            .i64(0)
            .i64(0)
            .op(CallHost(crate::opcode::HostFn::SetStorage));
        f.jmp(done);
        f.bind(other);
        f.i64(16)
            .i64(5)
            .i64(0)
            .i64(0)
            .op(CallHost(crate::opcode::HostFn::SetStorage));
        f.bind(done);
        f.op(Ret);
        m.func(f.finish());
        let module = m.finish();
        let acc = analyze_module(&module, &HashMap::new());
        let s = acc.method("main").unwrap();
        assert_eq!(s.writes.len(), 2);
        assert!(s.writes.iter().all(KeyExpr::is_exact));
    }
}
