//! LEB128 variable-length integer coding — the Wasm trait the paper calls
//! out explicitly ("WASM-based contract code has been encoded by LEB128",
//! §6.4 OPT1).

/// Encoding/decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LebError {
    /// Ran off the end of the buffer.
    Truncated,
    /// More than the maximum number of continuation bytes.
    Overlong,
}

/// Append an unsigned LEB128 value.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed LEB128 value.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (v == 0 && sign_clear) || (v == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 value; returns `(value, bytes_consumed)`.
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize), LebError> {
    let mut result = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= 10 {
            return Err(LebError::Overlong);
        }
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    Err(LebError::Truncated)
}

/// Read a signed LEB128 value; returns `(value, bytes_consumed)`.
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize), LebError> {
    let mut result = 0i64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= 10 {
            return Err(LebError::Overlong);
        }
        result |= ((byte & 0x7f) as i64) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Ok((result, i + 1));
        }
    }
    Err(LebError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_known_encodings() {
        let mut out = Vec::new();
        write_u64(&mut out, 0);
        assert_eq!(out, [0x00]);
        out.clear();
        write_u64(&mut out, 624485); // classic wikipedia example
        assert_eq!(out, [0xe5, 0x8e, 0x26]);
    }

    #[test]
    fn signed_known_encodings() {
        let mut out = Vec::new();
        write_i64(&mut out, -123456);
        assert_eq!(out, [0xc0, 0xbb, 0x78]);
        out.clear();
        write_i64(&mut out, 64);
        assert_eq!(out, [0xc0, 0x00]);
        out.clear();
        write_i64(&mut out, -1);
        assert_eq!(out, [0x7f]);
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(read_u64(&[0x80]), Err(LebError::Truncated));
        assert_eq!(read_i64(&[0xff, 0xff]), Err(LebError::Truncated));
        assert_eq!(read_u64(&[]), Err(LebError::Truncated));
    }

    #[test]
    fn overlong_input_errors() {
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), Err(LebError::Overlong));
        assert_eq!(read_i64(&buf), Err(LebError::Overlong));
    }

    /// Deterministic replacement for the former proptest block: seeded DRBG
    /// with a bit-width sweep so short and long encodings are both exercised.
    #[test]
    fn unsigned_round_trip_random() {
        let mut rng = confide_crypto::HmacDrbg::from_u64(0x1eb);
        for i in 0..512u32 {
            let v = rng.gen_u64() >> (i % 64);
            let mut out = Vec::new();
            write_u64(&mut out, v);
            let (back, used) = read_u64(&out).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, out.len());
        }
    }

    #[test]
    fn signed_round_trip_random() {
        let mut rng = confide_crypto::HmacDrbg::from_u64(0x51eb);
        for i in 0..512u32 {
            let v = (rng.gen_u64() as i64) >> (i % 64);
            let mut out = Vec::new();
            write_i64(&mut out, v);
            let (back, used) = read_i64(&out).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, out.len());
        }
    }

    #[test]
    fn small_values_encode_compactly() {
        for v in 0u64..128 {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(out.len(), 1);
        }
    }
}
