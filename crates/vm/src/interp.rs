//! The bytecode interpreter: a classic dispatch loop over decoded
//! instructions with a shared value stack, per-frame locals, and a fixed
//! linear memory.

use crate::fusion;
use crate::host::{HostApi, HostError};
use crate::module::Module;
use crate::opcode::{HostFn, Instr};
use std::sync::Arc;

/// Runtime traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Explicit `unreachable`.
    Unreachable,
    /// Linear-memory access out of bounds.
    OutOfBoundsMemory {
        /// Attempted address.
        addr: u64,
        /// Access size in bytes.
        len: u64,
    },
    /// Division by zero.
    DivByZero,
    /// `i64::MIN / -1`.
    IntegerOverflow,
    /// Value-stack underflow (malformed bytecode).
    StackUnderflow,
    /// Call to a function index out of range.
    UnknownFunction(u32),
    /// Local index out of range.
    BadLocal(u32),
    /// Global index out of range.
    BadGlobal(u32),
    /// Export name not found.
    UnknownExport(String),
    /// Fuel exhausted (runaway contract).
    OutOfFuel,
    /// Host function failed.
    Host(HostError),
    /// Call stack exceeded the configured depth.
    CallStackOverflow,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Unreachable => f.write_str("unreachable executed"),
            Trap::OutOfBoundsMemory { addr, len } => {
                write!(f, "memory access out of bounds: {addr}+{len}")
            }
            Trap::DivByZero => f.write_str("division by zero"),
            Trap::IntegerOverflow => f.write_str("integer overflow in division"),
            Trap::StackUnderflow => f.write_str("value stack underflow"),
            Trap::UnknownFunction(i) => write!(f, "unknown function index {i}"),
            Trap::BadLocal(i) => write!(f, "bad local index {i}"),
            Trap::BadGlobal(i) => write!(f, "bad global index {i}"),
            Trap::UnknownExport(n) => write!(f, "unknown export `{n}`"),
            Trap::OutOfFuel => f.write_str("out of fuel"),
            Trap::Host(e) => write!(f, "host error: {e}"),
            Trap::CallStackOverflow => f.write_str("call stack overflow"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<HostError> for Trap {
    fn from(e: HostError) -> Self {
        Trap::Host(e)
    }
}

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Maximum retired instructions before [`Trap::OutOfFuel`].
    pub fuel: u64,
    /// Apply the OPT4 superinstruction pass at prepare time.
    pub fusion: bool,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fuel: 500_000_000,
            fusion: true,
            max_call_depth: 256,
        }
    }
}

/// Counters produced by one execution; the simulation layer converts these
/// to virtual cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired (fused superinstructions count once — that is
    /// the point of OPT4).
    pub instret: u64,
    /// Host calls performed (each maps to an ocall when run in-enclave).
    pub host_calls: u64,
    /// Bytes moved through host calls (storage values, input, return data).
    pub host_bytes: u64,
    /// Instructions eliminated by fusion at prepare time (static count).
    pub fused_away: u64,
}

/// Outcome of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Return data set by the contract via `Ret` host call.
    pub return_data: Vec<u8>,
    /// Counters.
    pub stats: ExecStats,
}

/// A module prepared for execution (fusion applied, ready to instantiate).
#[derive(Debug)]
pub struct Prepared {
    module: Module,
    fused_away: u64,
    /// Facts proven by [`crate::verify::verify_module`], if it ran. When
    /// present the interpreter takes the unchecked fast path (no
    /// per-dispatch stack/local/call-target checks).
    summary: Option<crate::verify::VerifySummary>,
}

impl Prepared {
    /// Prepare a decoded module under `config` (runs fusion if enabled).
    ///
    /// The resulting module executes on the *checked* interpreter path;
    /// use [`Prepared::new_verified`] to prove stack discipline once and
    /// run the unchecked path.
    pub fn new(module: Module, config: &ExecConfig) -> Arc<Prepared> {
        Arc::new(Self::prepare(module, config, None))
    }

    /// Verify the module ahead of time, then prepare it. On success the
    /// interpreter drops per-dispatch bounds/underflow checks for this
    /// module (the verifier proved they cannot fire).
    ///
    /// Verification runs on the pre-fusion body; fusion preserves stack
    /// effects, so the proof carries over to the fused body.
    pub fn new_verified(
        module: Module,
        config: &ExecConfig,
    ) -> Result<Arc<Prepared>, crate::verify::VerifyError> {
        let summary = crate::verify::verify_module(&module)?;
        Ok(Arc::new(Self::prepare(module, config, Some(summary))))
    }

    fn prepare(
        mut module: Module,
        config: &ExecConfig,
        summary: Option<crate::verify::VerifySummary>,
    ) -> Prepared {
        let mut fused_away = 0u64;
        if config.fusion {
            for f in module.functions.iter_mut() {
                let r = fusion::fuse(&f.body);
                fused_away += r.fused_away as u64;
                f.body = r.body;
            }
        }
        Prepared {
            module,
            fused_away,
            summary,
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Static instructions removed by fusion.
    pub fn fused_away(&self) -> u64 {
        self.fused_away
    }

    /// Whether this module was verified ahead of time.
    pub fn verified(&self) -> bool {
        self.summary.is_some()
    }

    /// The verification summary, if [`Prepared::new_verified`] produced
    /// this module.
    pub fn summary(&self) -> Option<&crate::verify::VerifySummary> {
        self.summary.as_ref()
    }
}

struct Frame {
    func: u32,
    pc: usize,
    locals: Vec<i64>,
}

/// The virtual machine: executes one call on a prepared module.
pub struct Vm {
    prepared: Arc<Prepared>,
    config: ExecConfig,
}

impl Vm {
    /// Create a VM over a prepared module.
    pub fn new(prepared: Arc<Prepared>, config: ExecConfig) -> Vm {
        Vm { prepared, config }
    }

    /// Convenience: decode, prepare and wrap in one step.
    pub fn from_module(module: Module, config: ExecConfig) -> Vm {
        Vm::new(Prepared::new(module, &config), config)
    }

    /// Wrap an already-prepared (possibly verified) module.
    pub fn from_prepared(prepared: Arc<Prepared>, config: ExecConfig) -> Vm {
        Vm::new(prepared, config)
    }

    /// The module's fixed linear-memory size in bytes.
    pub fn memory_size(&self) -> u32 {
        self.prepared.module().memory_size
    }

    /// Invoke exported function `name` with `args`, servicing host calls
    /// through `host`. `memory` is the linear memory to use (supplied by
    /// the [`crate::cache::MemoryPool`] in production paths); it is resized
    /// and data segments are (re)applied.
    ///
    /// Dispatches to one of two monomorphized interpreter loops: modules
    /// built via [`Prepared::new_verified`] run the *unchecked* loop (the
    /// verifier proved stack discipline, local/global indices and call
    /// targets), everything else runs the fully-checked loop.
    pub fn invoke(
        &self,
        name: &str,
        args: &[i64],
        host: &mut dyn HostApi,
        memory: &mut Vec<u8>,
    ) -> Result<ExecOutcome, Trap> {
        if self.prepared.verified() {
            self.run::<true>(name, args, host, memory)
        } else {
            self.run::<false>(name, args, host, memory)
        }
    }

    fn run<const VERIFIED: bool>(
        &self,
        name: &str,
        args: &[i64],
        host: &mut dyn HostApi,
        memory: &mut Vec<u8>,
    ) -> Result<ExecOutcome, Trap> {
        let module = &self.prepared.module;
        let func_idx = module
            .export(name)
            .ok_or_else(|| Trap::UnknownExport(name.to_string()))?;

        memory.clear();
        memory.resize(module.memory_size as usize, 0);
        for seg in &module.data {
            let end = seg.offset as usize + seg.bytes.len();
            if end > memory.len() {
                return Err(Trap::OutOfBoundsMemory {
                    addr: seg.offset as u64,
                    len: seg.bytes.len() as u64,
                });
            }
            memory[seg.offset as usize..end].copy_from_slice(&seg.bytes);
        }

        let mut globals = vec![0i64; module.global_count as usize];
        let mut stack: Vec<i64> = Vec::with_capacity(256);
        let mut frames: Vec<Frame> = Vec::with_capacity(16);
        let mut stats = ExecStats {
            fused_away: self.prepared.fused_away,
            ..ExecStats::default()
        };
        let mut fuel = self.config.fuel;

        let entry = module
            .functions
            .get(func_idx as usize)
            .ok_or(Trap::UnknownFunction(func_idx))?;
        if args.len() != entry.param_count as usize {
            return Err(Trap::StackUnderflow);
        }
        let mut locals = vec![0i64; (entry.param_count + entry.local_count) as usize];
        locals[..args.len()].copy_from_slice(args);
        frames.push(Frame {
            func: func_idx,
            pc: 0,
            locals,
        });

        // In the VERIFIED loop the verifier proved these checks cannot
        // fire, so the error-plumbing branches compile away.
        macro_rules! pop {
            () => {
                if VERIFIED {
                    stack.pop().unwrap_or_default()
                } else {
                    stack.pop().ok_or(Trap::StackUnderflow)?
                }
            };
        }
        macro_rules! local {
            ($frame:expr, $n:expr) => {
                if VERIFIED {
                    $frame.locals[$n as usize]
                } else {
                    *$frame.locals.get($n as usize).ok_or(Trap::BadLocal($n))?
                }
            };
        }

        'outer: while let Some(frame) = frames.last_mut() {
            let body: &[Instr] = &module.functions[frame.func as usize].body;
            loop {
                if frame.pc >= body.len() {
                    // Fall off the end = return.
                    frames.pop();
                    continue 'outer;
                }
                if fuel == 0 {
                    return Err(Trap::OutOfFuel);
                }
                fuel -= 1;
                stats.instret += 1;
                let instr = body[frame.pc];
                frame.pc += 1;
                match instr {
                    Instr::Unreachable => return Err(Trap::Unreachable),
                    Instr::Nop => {}
                    Instr::I64Const(v) => stack.push(v),
                    Instr::LocalGet(n) => {
                        let v = local!(frame, n);
                        stack.push(v);
                    }
                    Instr::LocalSet(n) => {
                        let v = pop!();
                        if VERIFIED {
                            frame.locals[n as usize] = v;
                        } else {
                            *frame.locals.get_mut(n as usize).ok_or(Trap::BadLocal(n))? = v;
                        }
                    }
                    Instr::LocalTee(n) => {
                        let v = if VERIFIED {
                            stack.last().copied().unwrap_or_default()
                        } else {
                            *stack.last().ok_or(Trap::StackUnderflow)?
                        };
                        if VERIFIED {
                            frame.locals[n as usize] = v;
                        } else {
                            *frame.locals.get_mut(n as usize).ok_or(Trap::BadLocal(n))? = v;
                        }
                    }
                    Instr::GlobalGet(n) => {
                        let v = if VERIFIED {
                            globals[n as usize]
                        } else {
                            *globals.get(n as usize).ok_or(Trap::BadGlobal(n))?
                        };
                        stack.push(v);
                    }
                    Instr::GlobalSet(n) => {
                        let v = pop!();
                        if VERIFIED {
                            globals[n as usize] = v;
                        } else {
                            *globals.get_mut(n as usize).ok_or(Trap::BadGlobal(n))? = v;
                        }
                    }
                    Instr::Jmp(t) => frame.pc = t as usize,
                    Instr::JmpIf(t) => {
                        if pop!() != 0 {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::JmpIfZ(t) => {
                        if pop!() == 0 {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::Call(f) => {
                        if frames.len() >= self.config.max_call_depth {
                            return Err(Trap::CallStackOverflow);
                        }
                        let callee = if VERIFIED {
                            &module.functions[f as usize]
                        } else {
                            module
                                .functions
                                .get(f as usize)
                                .ok_or(Trap::UnknownFunction(f))?
                        };
                        let pc = (callee.param_count + callee.local_count) as usize;
                        let mut locals = vec![0i64; pc];
                        for i in (0..callee.param_count as usize).rev() {
                            locals[i] = pop!();
                        }
                        frames.push(Frame {
                            func: f,
                            pc: 0,
                            locals,
                        });
                        continue 'outer;
                    }
                    Instr::CallHost(h) => {
                        self.host_call(h, host, memory, &mut stack, &mut stats)?;
                    }
                    Instr::Ret => {
                        frames.pop();
                        continue 'outer;
                    }
                    Instr::Drop => {
                        pop!();
                    }
                    Instr::Select => {
                        let c = pop!();
                        let b = pop!();
                        let a = pop!();
                        stack.push(if c != 0 { a } else { b });
                    }
                    Instr::Load8U(off) => {
                        let addr = pop!();
                        let b = mem_read(memory, addr, off, 1)?;
                        stack.push(b[0] as i64);
                    }
                    Instr::Load16U(off) => {
                        let addr = pop!();
                        let b = mem_read(memory, addr, off, 2)?;
                        stack.push(u16::from_le_bytes([b[0], b[1]]) as i64);
                    }
                    Instr::Load32U(off) => {
                        let addr = pop!();
                        let b = mem_read(memory, addr, off, 4)?;
                        stack.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64);
                    }
                    Instr::Load64(off) => {
                        let addr = pop!();
                        let b = mem_read(memory, addr, off, 8)?;
                        let mut w = [0u8; 8];
                        w.copy_from_slice(b);
                        stack.push(i64::from_le_bytes(w));
                    }
                    Instr::Store8(off) => {
                        let v = pop!();
                        let addr = pop!();
                        mem_write(memory, addr, off, &[(v & 0xff) as u8])?;
                    }
                    Instr::Store16(off) => {
                        let v = pop!();
                        let addr = pop!();
                        mem_write(memory, addr, off, &(v as u16).to_le_bytes())?;
                    }
                    Instr::Store32(off) => {
                        let v = pop!();
                        let addr = pop!();
                        mem_write(memory, addr, off, &(v as u32).to_le_bytes())?;
                    }
                    Instr::Store64(off) => {
                        let v = pop!();
                        let addr = pop!();
                        mem_write(memory, addr, off, &v.to_le_bytes())?;
                    }
                    Instr::Add => binop::<VERIFIED>(&mut stack, |a, b| Ok(a.wrapping_add(b)))?,
                    Instr::Sub => binop::<VERIFIED>(&mut stack, |a, b| Ok(a.wrapping_sub(b)))?,
                    Instr::Mul => binop::<VERIFIED>(&mut stack, |a, b| Ok(a.wrapping_mul(b)))?,
                    Instr::DivS => binop::<VERIFIED>(&mut stack, |a, b| {
                        if b == 0 {
                            Err(Trap::DivByZero)
                        } else if a == i64::MIN && b == -1 {
                            Err(Trap::IntegerOverflow)
                        } else {
                            Ok(a / b)
                        }
                    })?,
                    Instr::DivU => binop::<VERIFIED>(&mut stack, |a, b| {
                        if b == 0 {
                            Err(Trap::DivByZero)
                        } else {
                            Ok(((a as u64) / (b as u64)) as i64)
                        }
                    })?,
                    Instr::RemS => binop::<VERIFIED>(&mut stack, |a, b| {
                        if b == 0 {
                            Err(Trap::DivByZero)
                        } else if a == i64::MIN && b == -1 {
                            Ok(0)
                        } else {
                            Ok(a % b)
                        }
                    })?,
                    Instr::RemU => binop::<VERIFIED>(&mut stack, |a, b| {
                        if b == 0 {
                            Err(Trap::DivByZero)
                        } else {
                            Ok(((a as u64) % (b as u64)) as i64)
                        }
                    })?,
                    Instr::And => binop::<VERIFIED>(&mut stack, |a, b| Ok(a & b))?,
                    Instr::Or => binop::<VERIFIED>(&mut stack, |a, b| Ok(a | b))?,
                    Instr::Xor => binop::<VERIFIED>(&mut stack, |a, b| Ok(a ^ b))?,
                    Instr::Shl => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(a.wrapping_shl(b as u32)))?
                    }
                    Instr::ShrS => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(a.wrapping_shr(b as u32)))?
                    }
                    Instr::ShrU => binop::<VERIFIED>(&mut stack, |a, b| {
                        Ok(((a as u64).wrapping_shr(b as u32)) as i64)
                    })?,
                    Instr::Eqz => {
                        let v = pop!();
                        stack.push((v == 0) as i64);
                    }
                    Instr::Eq => binop::<VERIFIED>(&mut stack, |a, b| Ok((a == b) as i64))?,
                    Instr::Ne => binop::<VERIFIED>(&mut stack, |a, b| Ok((a != b) as i64))?,
                    Instr::LtS => binop::<VERIFIED>(&mut stack, |a, b| Ok((a < b) as i64))?,
                    Instr::LtU => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(((a as u64) < (b as u64)) as i64))?
                    }
                    Instr::GtS => binop::<VERIFIED>(&mut stack, |a, b| Ok((a > b) as i64))?,
                    Instr::GtU => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(((a as u64) > (b as u64)) as i64))?
                    }
                    Instr::LeS => binop::<VERIFIED>(&mut stack, |a, b| Ok((a <= b) as i64))?,
                    Instr::LeU => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(((a as u64) <= (b as u64)) as i64))?
                    }
                    Instr::GeS => binop::<VERIFIED>(&mut stack, |a, b| Ok((a >= b) as i64))?,
                    Instr::GeU => {
                        binop::<VERIFIED>(&mut stack, |a, b| Ok(((a as u64) >= (b as u64)) as i64))?
                    }
                    Instr::MemCopy => {
                        let len = pop!() as u64;
                        let src = pop!() as u64;
                        let dst = pop!() as u64;
                        mem_copy(memory, dst, src, len)?;
                    }
                    Instr::MemFill => {
                        let len = pop!() as u64;
                        let val = pop!();
                        let dst = pop!() as u64;
                        mem_fill(memory, dst, val as u8, len)?;
                    }
                    // ---- superinstructions ----
                    Instr::FusedGetGet(a, b) => {
                        let va = local!(frame, a);
                        let vb = local!(frame, b);
                        stack.push(va);
                        stack.push(vb);
                    }
                    Instr::FusedIncLocal(n, k) => {
                        if VERIFIED {
                            let slot = &mut frame.locals[n as usize];
                            *slot = slot.wrapping_add(k);
                        } else {
                            let slot = frame.locals.get_mut(n as usize).ok_or(Trap::BadLocal(n))?;
                            *slot = slot.wrapping_add(k);
                        }
                    }
                    Instr::FusedAddConst(k) => {
                        let v = pop!();
                        stack.push(v.wrapping_add(k));
                    }
                    Instr::FusedBrIfLtS(t) => {
                        let b = pop!();
                        let a = pop!();
                        if a < b {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::FusedBrIfGeS(t) => {
                        let b = pop!();
                        let a = pop!();
                        if a >= b {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::FusedBrIfEq(t) => {
                        let b = pop!();
                        let a = pop!();
                        if a == b {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::FusedBrIfNe(t) => {
                        let b = pop!();
                        let a = pop!();
                        if a != b {
                            frame.pc = t as usize;
                        }
                    }
                    Instr::FusedLocalLoad8U(n, off) => {
                        let addr = local!(frame, n);
                        let b = mem_read(memory, addr, off, 1)?;
                        stack.push(b[0] as i64);
                    }
                }
            }
        }

        Ok(ExecOutcome {
            return_data: host.take_return(),
            stats,
        })
    }

    fn host_call(
        &self,
        h: HostFn,
        host: &mut dyn HostApi,
        memory: &mut [u8],
        stack: &mut Vec<i64>,
        stats: &mut ExecStats,
    ) -> Result<(), Trap> {
        stats.host_calls += 1;
        let mut pop = || stack.pop().ok_or(Trap::StackUnderflow);
        match h {
            HostFn::InputLen => {
                let len = host.input().len() as i64;
                stack.push(len);
            }
            HostFn::InputRead => {
                let dst = pop()? as u64;
                let input = host.input().to_vec();
                stats.host_bytes += input.len() as u64;
                mem_write(memory, dst as i64, 0, &input)?;
            }
            HostFn::Ret => {
                let len = pop()? as u64;
                let ptr = pop()?;
                let data = mem_read(memory, ptr, 0, len)?.to_vec();
                stats.host_bytes += data.len() as u64;
                host.set_return(data);
            }
            HostFn::GetStorage => {
                let cap = pop()? as u64;
                let val_ptr = pop()?;
                let key_len = pop()? as u64;
                let key_ptr = pop()?;
                let key = mem_read(memory, key_ptr, 0, key_len)?.to_vec();
                match host.get_storage(&key)? {
                    Some(val) => {
                        stats.host_bytes += (key.len() + val.len()) as u64;
                        let n = val.len().min(cap as usize);
                        mem_write(memory, val_ptr, 0, &val[..n])?;
                        stack.push(val.len() as i64);
                    }
                    None => {
                        stats.host_bytes += key.len() as u64;
                        stack.push(-1);
                    }
                }
            }
            HostFn::SetStorage => {
                let val_len = pop()? as u64;
                let val_ptr = pop()?;
                let key_len = pop()? as u64;
                let key_ptr = pop()?;
                let key = mem_read(memory, key_ptr, 0, key_len)?.to_vec();
                let val = mem_read(memory, val_ptr, 0, val_len)?.to_vec();
                stats.host_bytes += (key.len() + val.len()) as u64;
                host.set_storage(&key, &val)?;
            }
            HostFn::Sha256 => {
                let out_ptr = pop()?;
                let len = pop()? as u64;
                let ptr = pop()?;
                let data = mem_read(memory, ptr, 0, len)?.to_vec();
                stats.host_bytes += data.len() as u64;
                let digest = host.sha256(&data);
                mem_write(memory, out_ptr, 0, &digest)?;
            }
            HostFn::Keccak256 => {
                let out_ptr = pop()?;
                let len = pop()? as u64;
                let ptr = pop()?;
                let data = mem_read(memory, ptr, 0, len)?.to_vec();
                stats.host_bytes += data.len() as u64;
                let digest = host.keccak256(&data);
                mem_write(memory, out_ptr, 0, &digest)?;
            }
            HostFn::CallContract => {
                let out_cap = pop()? as u64;
                let out_ptr = pop()?;
                let in_len = pop()? as u64;
                let in_ptr = pop()?;
                let addr_ptr = pop()?;
                let mut addr = [0u8; 32];
                addr.copy_from_slice(mem_read(memory, addr_ptr, 0, 32)?);
                let input = mem_read(memory, in_ptr, 0, in_len)?.to_vec();
                stats.host_bytes += input.len() as u64;
                match host.call_contract(&addr, &input) {
                    Ok(out) => {
                        stats.host_bytes += out.len() as u64;
                        let n = out.len().min(out_cap as usize);
                        mem_write(memory, out_ptr, 0, &out[..n])?;
                        stack.push(out.len() as i64);
                    }
                    Err(e) => return Err(Trap::Host(e)),
                }
            }
            HostFn::Sender => {
                let out_ptr = pop()?;
                let s = host.sender();
                mem_write(memory, out_ptr, 0, &s)?;
            }
            HostFn::Log => {
                let len = pop()? as u64;
                let ptr = pop()?;
                let msg = mem_read(memory, ptr, 0, len)?.to_vec();
                stats.host_bytes += msg.len() as u64;
                host.log(&msg);
            }
        }
        Ok(())
    }
}

fn binop<const VERIFIED: bool>(
    stack: &mut Vec<i64>,
    f: impl FnOnce(i64, i64) -> Result<i64, Trap>,
) -> Result<(), Trap> {
    let (a, b) = if VERIFIED {
        // Verified modules cannot underflow (proven at load time).
        let b = stack.pop().unwrap_or_default();
        let a = stack.pop().unwrap_or_default();
        (a, b)
    } else {
        let b = stack.pop().ok_or(Trap::StackUnderflow)?;
        let a = stack.pop().ok_or(Trap::StackUnderflow)?;
        (a, b)
    };
    stack.push(f(a, b)?);
    Ok(())
}

fn mem_read(memory: &[u8], addr: i64, off: u32, len: u64) -> Result<&[u8], Trap> {
    let start = (addr as u64).wrapping_add(off as u64);
    let end = start.wrapping_add(len);
    if addr < 0 || end > memory.len() as u64 || end < start {
        return Err(Trap::OutOfBoundsMemory { addr: start, len });
    }
    Ok(&memory[start as usize..end as usize])
}

fn mem_write(memory: &mut [u8], addr: i64, off: u32, data: &[u8]) -> Result<(), Trap> {
    let start = (addr as u64).wrapping_add(off as u64);
    let end = start.wrapping_add(data.len() as u64);
    if addr < 0 || end > memory.len() as u64 || end < start {
        return Err(Trap::OutOfBoundsMemory {
            addr: start,
            len: data.len() as u64,
        });
    }
    memory[start as usize..end as usize].copy_from_slice(data);
    Ok(())
}

fn mem_copy(memory: &mut [u8], dst: u64, src: u64, len: u64) -> Result<(), Trap> {
    let mlen = memory.len() as u64;
    if dst.wrapping_add(len) > mlen || src.wrapping_add(len) > mlen {
        return Err(Trap::OutOfBoundsMemory {
            addr: dst.max(src),
            len,
        });
    }
    memory.copy_within(src as usize..(src + len) as usize, dst as usize);
    Ok(())
}

fn mem_fill(memory: &mut [u8], dst: u64, val: u8, len: u64) -> Result<(), Trap> {
    if dst.wrapping_add(len) > memory.len() as u64 {
        return Err(Trap::OutOfBoundsMemory { addr: dst, len });
    }
    memory[dst as usize..(dst + len) as usize].fill(val);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::host::MockHost;
    use crate::opcode::Instr::*;

    fn run_with(
        module: Module,
        name: &str,
        args: &[i64],
        host: &mut MockHost,
        config: ExecConfig,
    ) -> Result<ExecOutcome, Trap> {
        let vm = Vm::from_module(module, config);
        let mut mem = Vec::new();
        vm.invoke(name, args, host, &mut mem)
    }

    fn run(module: Module, name: &str, args: &[i64]) -> Result<ExecOutcome, Trap> {
        run_with(
            module,
            name,
            args,
            &mut MockHost::default(),
            ExecConfig::default(),
        )
    }

    /// Build a module whose `main` stores an i64 result at memory[0] and
    /// returns it via the Ret host call.
    fn ret_i64_module(build: impl FnOnce(&mut FuncBuilder)) -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 4);
        build(&mut f);
        // Expect result on stack: store to [0], Ret(0, 8).
        f.op(LocalSet(0));
        f.i64(0).op(LocalGet(0)).op(Store64(0));
        f.i64(0).i64(8).op(CallHost(crate::opcode::HostFn::Ret));
        f.op(Ret);
        mb.func(f.finish());
        mb.finish()
    }

    fn ret_val(outcome: &ExecOutcome) -> i64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&outcome.return_data);
        i64::from_le_bytes(w)
    }

    #[test]
    fn arithmetic_basics() {
        let m = ret_i64_module(|f| {
            f.i64(7).i64(5).op(Mul).i64(3).op(Sub); // 7*5-3 = 32
        });
        let out = run(m, "main", &[]).unwrap();
        assert_eq!(ret_val(&out), 32);
    }

    #[test]
    fn signed_unsigned_division() {
        let m = ret_i64_module(|f| {
            f.i64(-7).i64(2).op(DivS); // -3
        });
        assert_eq!(ret_val(&run(m, "main", &[]).unwrap()), -3);
        let m = ret_i64_module(|f| {
            f.i64(-1).i64(i64::MAX).op(DivU); // u64::MAX / i64::MAX = 2
        });
        assert_eq!(ret_val(&run(m, "main", &[]).unwrap()), 2);
    }

    #[test]
    fn div_by_zero_traps() {
        let m = ret_i64_module(|f| {
            f.i64(1).i64(0).op(DivS);
        });
        assert_eq!(run(m, "main", &[]).unwrap_err(), Trap::DivByZero);
        let m = ret_i64_module(|f| {
            f.i64(i64::MIN).i64(-1).op(DivS);
        });
        assert_eq!(run(m, "main", &[]).unwrap_err(), Trap::IntegerOverflow);
    }

    #[test]
    fn loop_sums_one_to_hundred() {
        let m = ret_i64_module(|f| {
            // local1 = i, local2 = acc
            let top = f.label();
            let done = f.label();
            f.i64(1).op(LocalSet(1));
            f.i64(0).op(LocalSet(2));
            f.bind(top);
            f.op(LocalGet(1)).i64(100).op(GtS);
            f.jmp_if(done);
            f.op(LocalGet(2)).op(LocalGet(1)).op(Add).op(LocalSet(2));
            f.op(LocalGet(1)).i64(1).op(Add).op(LocalSet(1));
            f.jmp(top);
            f.bind(done);
            f.op(LocalGet(2));
        });
        assert_eq!(ret_val(&run(m, "main", &[]).unwrap()), 5050);
    }

    #[test]
    fn fusion_preserves_semantics_and_reduces_instret() {
        let build = |f: &mut FuncBuilder| {
            let top = f.label();
            let done = f.label();
            f.i64(1).op(LocalSet(1));
            f.i64(0).op(LocalSet(2));
            f.bind(top);
            f.op(LocalGet(1)).i64(1000).op(GtS);
            f.jmp_if(done);
            f.op(LocalGet(2)).op(LocalGet(1)).op(Add).op(LocalSet(2));
            f.op(LocalGet(1)).i64(1).op(Add).op(LocalSet(1));
            f.jmp(top);
            f.bind(done);
            f.op(LocalGet(2));
        };
        let plain = run_with(
            ret_i64_module(build),
            "main",
            &[],
            &mut MockHost::default(),
            ExecConfig {
                fusion: false,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let fused = run_with(
            ret_i64_module(build),
            "main",
            &[],
            &mut MockHost::default(),
            ExecConfig {
                fusion: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ret_val(&plain), ret_val(&fused));
        assert_eq!(ret_val(&fused), 500500);
        assert!(
            fused.stats.instret < plain.stats.instret * 8 / 10,
            "fused {} vs plain {}",
            fused.stats.instret,
            plain.stats.instret
        );
    }

    #[test]
    fn function_calls_pass_args_and_return_on_stack() {
        let mut mb = ModuleBuilder::new();
        // helper(a, b) = a*10 + b
        let mut h = FuncBuilder::new("", 2, 0);
        h.op(LocalGet(0))
            .i64(10)
            .op(Mul)
            .op(LocalGet(1))
            .op(Add)
            .op(Ret);
        let helper = mb.func(h.finish());
        let mut f = FuncBuilder::new("main", 0, 1);
        f.i64(4).i64(2).op(Call(helper)); // 42
        f.op(LocalSet(0));
        f.i64(0).op(LocalGet(0)).op(Store64(0));
        f.i64(0).i64(8).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        let out = run(mb.finish(), "main", &[]).unwrap();
        assert_eq!(ret_val(&out), 42);
    }

    #[test]
    fn recursion_depth_limited() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Call(0)); // infinite self-recursion
        mb.func(f.finish());
        assert_eq!(
            run(mb.finish(), "main", &[]).unwrap_err(),
            Trap::CallStackOverflow
        );
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        let top = f.label();
        f.bind(top);
        f.jmp(top);
        mb.func(f.finish());
        let err = run_with(
            mb.finish(),
            "main",
            &[],
            &mut MockHost::default(),
            ExecConfig {
                fuel: 1000,
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, Trap::OutOfFuel);
    }

    #[test]
    fn memory_bounds_enforced() {
        let mut mb = ModuleBuilder::new();
        mb.memory(4096);
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(4095).i64(1).op(Store64(0)); // 8-byte store at 4095: OOB
        mb.func(f.finish());
        assert!(matches!(
            run(mb.finish(), "main", &[]).unwrap_err(),
            Trap::OutOfBoundsMemory { .. }
        ));
    }

    #[test]
    fn negative_address_traps() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(-8).op(Load64(0)).op(Drop);
        mb.func(f.finish());
        assert!(matches!(
            run(mb.finish(), "main", &[]).unwrap_err(),
            Trap::OutOfBoundsMemory { .. }
        ));
    }

    #[test]
    fn data_segments_initialize_memory() {
        let mut mb = ModuleBuilder::new();
        mb.data(100, b"\x2a\x00\x00\x00\x00\x00\x00\x00");
        let mut f = FuncBuilder::new("main", 0, 1);
        f.i64(100).op(Load64(0));
        f.op(LocalSet(0));
        f.i64(0).op(LocalGet(0)).op(Store64(0));
        f.i64(0).i64(8).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        assert_eq!(ret_val(&run(mb.finish(), "main", &[]).unwrap()), 42);
    }

    #[test]
    fn storage_host_calls_round_trip() {
        let mut mb = ModuleBuilder::new();
        mb.data(0, b"key1");
        mb.data(16, b"value-bytes");
        let mut f = FuncBuilder::new("main", 0, 1);
        // set_storage("key1", "value-bytes")
        f.i64(0)
            .i64(4)
            .i64(16)
            .i64(11)
            .op(CallHost(crate::opcode::HostFn::SetStorage));
        // len = get_storage("key1", out=64, cap=100)
        f.i64(0)
            .i64(4)
            .i64(64)
            .i64(100)
            .op(CallHost(crate::opcode::HostFn::GetStorage));
        f.op(LocalSet(0));
        // ret(64, len)
        f.i64(64)
            .op(LocalGet(0))
            .op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        let mut host = MockHost::default();
        let out = run_with(mb.finish(), "main", &[], &mut host, ExecConfig::default()).unwrap();
        assert_eq!(out.return_data, b"value-bytes");
        assert_eq!(host.storage.get(&b"key1"[..]).unwrap(), b"value-bytes");
        assert_eq!(out.stats.host_calls, 3);
    }

    #[test]
    fn missing_storage_returns_minus_one() {
        let mut mb = ModuleBuilder::new();
        mb.data(0, b"nope");
        let mut f = FuncBuilder::new("main", 0, 1);
        f.i64(0)
            .i64(4)
            .i64(64)
            .i64(100)
            .op(CallHost(crate::opcode::HostFn::GetStorage));
        f.op(LocalSet(0));
        f.i64(0).op(LocalGet(0)).op(Store64(0));
        f.i64(0).i64(8).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        assert_eq!(ret_val(&run(mb.finish(), "main", &[]).unwrap()), -1);
    }

    #[test]
    fn sha256_host_call_is_real() {
        let mut mb = ModuleBuilder::new();
        mb.data(0, b"abc");
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(0)
            .i64(3)
            .i64(32)
            .op(CallHost(crate::opcode::HostFn::Sha256));
        f.i64(32).i64(32).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        let out = run(mb.finish(), "main", &[]).unwrap();
        assert_eq!(
            confide_crypto::hex(&out.return_data),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn input_flows_into_memory() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 1);
        f.op(CallHost(crate::opcode::HostFn::InputLen))
            .op(LocalSet(0));
        f.i64(0).op(CallHost(crate::opcode::HostFn::InputRead));
        f.i64(0)
            .op(LocalGet(0))
            .op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        let mut host = MockHost {
            input: b"echo me".to_vec(),
            ..Default::default()
        };
        let out = run_with(mb.finish(), "main", &[], &mut host, ExecConfig::default()).unwrap();
        assert_eq!(out.return_data, b"echo me");
    }

    #[test]
    fn select_and_tee() {
        let m = ret_i64_module(|f| {
            f.i64(111).i64(222).i64(0).op(Select); // picks 222
            f.op(LocalTee(1));
            f.op(Drop);
            f.op(LocalGet(1));
        });
        assert_eq!(ret_val(&run(m, "main", &[]).unwrap()), 222);
    }

    #[test]
    fn memcopy_memfill() {
        let mut mb = ModuleBuilder::new();
        mb.data(0, b"abcdef");
        let mut f = FuncBuilder::new("main", 0, 0);
        // fill [10..14) with 'x', copy "abc" to 14.
        f.i64(10).i64('x' as i64).i64(4).op(MemFill);
        f.i64(14).i64(0).i64(3).op(MemCopy);
        f.i64(10).i64(7).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        let out = run(mb.finish(), "main", &[]).unwrap();
        assert_eq!(out.return_data, b"xxxxabc");
    }

    #[test]
    fn unknown_export_and_unreachable() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("boom", 0, 0);
        f.op(Unreachable);
        mb.func(f.finish());
        let m = mb.finish();
        assert_eq!(
            run(m.clone(), "nope", &[]).unwrap_err(),
            Trap::UnknownExport("nope".into())
        );
        assert_eq!(run(m, "boom", &[]).unwrap_err(), Trap::Unreachable);
    }

    #[test]
    fn globals_are_shared_across_calls_within_invocation() {
        let mut mb = ModuleBuilder::new();
        mb.globals(1);
        let mut h = FuncBuilder::new("", 0, 0);
        h.op(GlobalGet(0)).i64(1).op(Add).op(GlobalSet(0)).op(Ret);
        let inc = mb.func(h.finish());
        let mut f = FuncBuilder::new("main", 0, 1);
        f.op(Call(inc)).op(Call(inc)).op(Call(inc));
        f.op(GlobalGet(0)).op(LocalSet(0));
        f.i64(0).op(LocalGet(0)).op(Store64(0));
        f.i64(0).i64(8).op(CallHost(crate::opcode::HostFn::Ret));
        mb.func(f.finish());
        assert_eq!(ret_val(&run(mb.finish(), "main", &[]).unwrap()), 3);
    }

    // ---- verified fast path ----

    fn run_verified(module: Module, name: &str) -> Result<ExecOutcome, Trap> {
        let cfg = ExecConfig::default();
        let prepared = Prepared::new_verified(module, &cfg).expect("verifies");
        let vm = Vm::from_prepared(prepared, cfg);
        let mut mem = Vec::new();
        vm.invoke(name, &[], &mut MockHost::default(), &mut mem)
    }

    #[test]
    fn verified_path_matches_checked_path() {
        let build = |f: &mut FuncBuilder| {
            let top = f.label();
            let done = f.label();
            f.i64(1).op(LocalSet(1));
            f.i64(0).op(LocalSet(2));
            f.bind(top);
            f.op(LocalGet(1)).i64(100).op(GtS);
            f.jmp_if(done);
            f.op(LocalGet(2)).op(LocalGet(1)).op(Add).op(LocalSet(2));
            f.op(LocalGet(1)).i64(1).op(Add).op(LocalSet(1));
            f.jmp(top);
            f.bind(done);
            f.op(LocalGet(2));
        };
        let checked = run(ret_i64_module(build), "main", &[]).unwrap();
        let verified = run_verified(ret_i64_module(build), "main").unwrap();
        assert_eq!(ret_val(&checked), ret_val(&verified));
        assert_eq!(ret_val(&verified), 5050);
        assert_eq!(checked.stats.instret, verified.stats.instret);
    }

    #[test]
    fn verified_path_keeps_memory_and_fuel_guards() {
        // Verification does not (and cannot) prove dynamic memory addresses
        // or termination: those traps must survive on the fast path.
        let mut mb = ModuleBuilder::new();
        mb.memory(4096);
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(4095).i64(1).op(Store64(0));
        f.op(Ret);
        mb.func(f.finish());
        assert!(matches!(
            run_verified(mb.finish(), "main").unwrap_err(),
            Trap::OutOfBoundsMemory { .. }
        ));

        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        let top = f.label();
        f.bind(top);
        f.jmp(top);
        mb.func(f.finish());
        let cfg = ExecConfig {
            fuel: 1000,
            ..ExecConfig::default()
        };
        let prepared = Prepared::new_verified(mb.finish(), &cfg).unwrap();
        let vm = Vm::from_prepared(prepared, cfg);
        let mut mem = Vec::new();
        assert_eq!(
            vm.invoke("main", &[], &mut MockHost::default(), &mut mem)
                .unwrap_err(),
            Trap::OutOfFuel
        );
    }

    #[test]
    fn verified_rejects_malformed_but_unverified_still_runs() {
        // A module the verifier rejects (unconditional recursion) still
        // executes — checked — on the legacy path.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Call(0));
        mb.func(f.finish());
        let m = mb.finish();
        assert!(Prepared::new_verified(m.clone(), &ExecConfig::default()).is_err());
        assert_eq!(run(m, "main", &[]).unwrap_err(), Trap::CallStackOverflow);
    }
}
