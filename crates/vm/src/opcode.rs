//! The CONFIDE-VM instruction set.
//!
//! Core opcodes mirror Wasm's i64 arithmetic and memory model; control flow
//! is flattened to direct jumps whose targets are *instruction indices*
//! (the decoder produces an instruction vector, so indices are the natural
//! jump unit — what a dispatching interpreter wants).
//!
//! Opcodes `0x60..` are **superinstructions**: they are never emitted by
//! the compiler directly but produced by the [`crate::fusion`] peephole
//! pass, standing in for the paper's OPT4 ("aggregating the instructions
//! into one block … about 17% performance improvement").

use crate::leb;

/// Host-function indices importable by a module. The host side lives in
/// [`crate::host::HostApi`]; CONFIDE's SDM implements it over ocalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HostFn {
    /// `() -> len`: byte length of the call input.
    InputLen = 0,
    /// `(dst_ptr) -> ()`: copy the call input into linear memory.
    InputRead = 1,
    /// `(ptr, len) -> ()`: set the call's return data.
    Ret = 2,
    /// `(key_ptr, key_len, val_ptr, val_cap) -> val_len | -1`: storage read.
    GetStorage = 3,
    /// `(key_ptr, key_len, val_ptr, val_len) -> ()`: storage write.
    SetStorage = 4,
    /// `(ptr, len, out_ptr) -> ()`: SHA-256 into 32 bytes at `out_ptr`.
    Sha256 = 5,
    /// `(ptr, len, out_ptr) -> ()`: Keccak-256 into 32 bytes at `out_ptr`.
    Keccak256 = 6,
    /// `(addr_ptr, in_ptr, in_len, out_ptr, out_cap) -> out_len | -1`:
    /// cross-contract call (address is 32 bytes at `addr_ptr`).
    CallContract = 7,
    /// `(out_ptr) -> ()`: 32-byte sender/caller id.
    Sender = 8,
    /// `(ptr, len) -> ()`: log a UTF-8 message (monitoring / receipts).
    Log = 9,
}

impl HostFn {
    /// Decode from its wire byte.
    pub fn from_u8(v: u8) -> Option<HostFn> {
        Some(match v {
            0 => HostFn::InputLen,
            1 => HostFn::InputRead,
            2 => HostFn::Ret,
            3 => HostFn::GetStorage,
            4 => HostFn::SetStorage,
            5 => HostFn::Sha256,
            6 => HostFn::Keccak256,
            7 => HostFn::CallContract,
            8 => HostFn::Sender,
            9 => HostFn::Log,
            _ => return None,
        })
    }

    /// Number of i64 arguments popped from the stack.
    pub fn arg_count(self) -> usize {
        match self {
            HostFn::InputLen => 0,
            HostFn::InputRead => 1,
            HostFn::Ret => 2,
            HostFn::GetStorage => 4,
            HostFn::SetStorage => 4,
            HostFn::Sha256 => 3,
            HostFn::Keccak256 => 3,
            HostFn::CallContract => 5,
            HostFn::Sender => 1,
            HostFn::Log => 2,
        }
    }

    /// Whether a result is pushed.
    pub fn has_result(self) -> bool {
        matches!(
            self,
            HostFn::InputLen | HostFn::GetStorage | HostFn::CallContract
        )
    }
}

/// A decoded instruction. Jump targets are instruction indices within the
/// owning function's body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Trap unconditionally.
    Unreachable,
    /// No operation.
    Nop,
    /// Push a constant.
    I64Const(i64),
    /// Push local `n`.
    LocalGet(u32),
    /// Pop into local `n`.
    LocalSet(u32),
    /// Copy top of stack into local `n` without popping.
    LocalTee(u32),
    /// Push global `n`.
    GlobalGet(u32),
    /// Pop into global `n`.
    GlobalSet(u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Pop; jump if non-zero.
    JmpIf(u32),
    /// Pop; jump if zero.
    JmpIfZ(u32),
    /// Call module function by index.
    Call(u32),
    /// Call an imported host function.
    CallHost(HostFn),
    /// Return from the current function.
    Ret,
    /// Pop and discard.
    Drop,
    /// Pop c, b, a; push a if c != 0 else b.
    Select,
    // Memory: address popped, immediate static offset added (Wasm-style).
    /// Load one byte, zero-extended.
    Load8U(u32),
    /// Load two bytes LE, zero-extended.
    Load16U(u32),
    /// Load four bytes LE, zero-extended.
    Load32U(u32),
    /// Load eight bytes LE.
    Load64(u32),
    /// Store low byte.
    Store8(u32),
    /// Store low two bytes LE.
    Store16(u32),
    /// Store low four bytes LE.
    Store32(u32),
    /// Store eight bytes LE.
    Store64(u32),
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on /0 and overflow).
    DivS,
    /// Unsigned division (traps on /0).
    DivU,
    /// Signed remainder.
    RemS,
    /// Unsigned remainder.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (mod 64).
    Shl,
    /// Arithmetic shift right.
    ShrS,
    /// Logical shift right.
    ShrU,
    /// Pop; push 1 if zero else 0.
    Eqz,
    /// Comparison operators pushing 0/1.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    LtS,
    /// Unsigned less-than.
    LtU,
    /// Signed greater-than.
    GtS,
    /// Unsigned greater-than.
    GtU,
    /// Signed less-or-equal.
    LeS,
    /// Unsigned less-or-equal.
    LeU,
    /// Signed greater-or-equal.
    GeS,
    /// Unsigned greater-or-equal.
    GeU,
    /// Bulk copy: pop len, src, dst.
    MemCopy,
    /// Bulk fill: pop len, val, dst.
    MemFill,
    // ---- Superinstructions (fusion output only, opcode >= 0x60) ----
    /// Push local a then local b.
    FusedGetGet(u32, u32),
    /// `local[n] += c`.
    FusedIncLocal(u32, i64),
    /// Pop x; push x + c.
    FusedAddConst(i64),
    /// Pop b, a; jump if a < b (signed).
    FusedBrIfLtS(u32),
    /// Pop b, a; jump if a >= b (signed).
    FusedBrIfGeS(u32),
    /// Pop b, a; jump if a == b.
    FusedBrIfEq(u32),
    /// Pop b, a; jump if a != b.
    FusedBrIfNe(u32),
    /// Push local, then load byte at local+offset (string scanning).
    FusedLocalLoad8U(u32, u32),
}

impl Instr {
    /// True for fusion-produced opcodes (must not appear in wire format).
    pub fn is_fused(&self) -> bool {
        matches!(
            self,
            Instr::FusedGetGet(..)
                | Instr::FusedIncLocal(..)
                | Instr::FusedAddConst(..)
                | Instr::FusedBrIfLtS(..)
                | Instr::FusedBrIfGeS(..)
                | Instr::FusedBrIfEq(..)
                | Instr::FusedBrIfNe(..)
                | Instr::FusedLocalLoad8U(..)
        )
    }

    /// If this is any branch, the target instruction index.
    pub fn jump_target(&self) -> Option<u32> {
        match self {
            Instr::Jmp(t)
            | Instr::JmpIf(t)
            | Instr::JmpIfZ(t)
            | Instr::FusedBrIfLtS(t)
            | Instr::FusedBrIfGeS(t)
            | Instr::FusedBrIfEq(t)
            | Instr::FusedBrIfNe(t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrite the branch target (used by the fusion pass remapping).
    pub fn with_jump_target(self, t: u32) -> Instr {
        match self {
            Instr::Jmp(_) => Instr::Jmp(t),
            Instr::JmpIf(_) => Instr::JmpIf(t),
            Instr::JmpIfZ(_) => Instr::JmpIfZ(t),
            Instr::FusedBrIfLtS(_) => Instr::FusedBrIfLtS(t),
            Instr::FusedBrIfGeS(_) => Instr::FusedBrIfGeS(t),
            Instr::FusedBrIfEq(_) => Instr::FusedBrIfEq(t),
            Instr::FusedBrIfNe(_) => Instr::FusedBrIfNe(t),
            other => other,
        }
    }
}

/// Decode errors for module/instruction streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// LEB128 error.
    Leb(leb::LebError),
    /// Buffer ended early.
    Truncated,
    /// A fused opcode appeared on the wire.
    FusedOnWire,
    /// String not UTF-8.
    BadString,
}

impl From<leb::LebError> for DecodeError {
    fn from(e: leb::LebError) -> Self {
        DecodeError::Leb(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => f.write_str("bad module magic"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            DecodeError::Leb(_) => f.write_str("bad LEB128 immediate"),
            DecodeError::Truncated => f.write_str("truncated module"),
            DecodeError::FusedOnWire => f.write_str("fused opcode in wire format"),
            DecodeError::BadString => f.write_str("invalid UTF-8 string"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode one instruction (wire opcodes only).
pub fn encode_instr(out: &mut Vec<u8>, instr: &Instr) {
    debug_assert!(!instr.is_fused(), "fused opcodes are not wire format");
    match *instr {
        Instr::Unreachable => out.push(0x00),
        Instr::Nop => out.push(0x01),
        Instr::I64Const(v) => {
            out.push(0x02);
            leb::write_i64(out, v);
        }
        Instr::LocalGet(n) => {
            out.push(0x03);
            leb::write_u64(out, n as u64);
        }
        Instr::LocalSet(n) => {
            out.push(0x04);
            leb::write_u64(out, n as u64);
        }
        Instr::LocalTee(n) => {
            out.push(0x05);
            leb::write_u64(out, n as u64);
        }
        Instr::GlobalGet(n) => {
            out.push(0x06);
            leb::write_u64(out, n as u64);
        }
        Instr::GlobalSet(n) => {
            out.push(0x07);
            leb::write_u64(out, n as u64);
        }
        Instr::Jmp(t) => {
            out.push(0x08);
            leb::write_u64(out, t as u64);
        }
        Instr::JmpIf(t) => {
            out.push(0x09);
            leb::write_u64(out, t as u64);
        }
        Instr::JmpIfZ(t) => {
            out.push(0x0a);
            leb::write_u64(out, t as u64);
        }
        Instr::Call(f) => {
            out.push(0x0b);
            leb::write_u64(out, f as u64);
        }
        Instr::CallHost(h) => {
            out.push(0x0c);
            out.push(h as u8);
        }
        Instr::Ret => out.push(0x0d),
        Instr::Drop => out.push(0x0e),
        Instr::Select => out.push(0x0f),
        Instr::Load8U(o) => {
            out.push(0x10);
            leb::write_u64(out, o as u64);
        }
        Instr::Load16U(o) => {
            out.push(0x11);
            leb::write_u64(out, o as u64);
        }
        Instr::Load32U(o) => {
            out.push(0x12);
            leb::write_u64(out, o as u64);
        }
        Instr::Load64(o) => {
            out.push(0x13);
            leb::write_u64(out, o as u64);
        }
        Instr::Store8(o) => {
            out.push(0x14);
            leb::write_u64(out, o as u64);
        }
        Instr::Store16(o) => {
            out.push(0x15);
            leb::write_u64(out, o as u64);
        }
        Instr::Store32(o) => {
            out.push(0x16);
            leb::write_u64(out, o as u64);
        }
        Instr::Store64(o) => {
            out.push(0x17);
            leb::write_u64(out, o as u64);
        }
        Instr::Add => out.push(0x20),
        Instr::Sub => out.push(0x21),
        Instr::Mul => out.push(0x22),
        Instr::DivS => out.push(0x23),
        Instr::DivU => out.push(0x24),
        Instr::RemS => out.push(0x25),
        Instr::RemU => out.push(0x26),
        Instr::And => out.push(0x27),
        Instr::Or => out.push(0x28),
        Instr::Xor => out.push(0x29),
        Instr::Shl => out.push(0x2a),
        Instr::ShrS => out.push(0x2b),
        Instr::ShrU => out.push(0x2c),
        Instr::Eqz => out.push(0x2d),
        Instr::Eq => out.push(0x2e),
        Instr::Ne => out.push(0x2f),
        Instr::LtS => out.push(0x30),
        Instr::LtU => out.push(0x31),
        Instr::GtS => out.push(0x32),
        Instr::GtU => out.push(0x33),
        Instr::LeS => out.push(0x34),
        Instr::LeU => out.push(0x35),
        Instr::GeS => out.push(0x36),
        Instr::GeU => out.push(0x37),
        Instr::MemCopy => out.push(0x40),
        Instr::MemFill => out.push(0x41),
        _ => unreachable!("fused opcode"),
    }
}

/// Decode an instruction stream into a vector.
pub fn decode_body(buf: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < buf.len() {
        let op = buf[pos];
        pos += 1;
        let read_u = |pos: &mut usize| -> Result<u32, DecodeError> {
            let (v, n) = leb::read_u64(&buf[*pos..])?;
            *pos += n;
            Ok(v as u32)
        };
        let instr = match op {
            0x00 => Instr::Unreachable,
            0x01 => Instr::Nop,
            0x02 => {
                let (v, n) = leb::read_i64(&buf[pos..])?;
                pos += n;
                Instr::I64Const(v)
            }
            0x03 => Instr::LocalGet(read_u(&mut pos)?),
            0x04 => Instr::LocalSet(read_u(&mut pos)?),
            0x05 => Instr::LocalTee(read_u(&mut pos)?),
            0x06 => Instr::GlobalGet(read_u(&mut pos)?),
            0x07 => Instr::GlobalSet(read_u(&mut pos)?),
            0x08 => Instr::Jmp(read_u(&mut pos)?),
            0x09 => Instr::JmpIf(read_u(&mut pos)?),
            0x0a => Instr::JmpIfZ(read_u(&mut pos)?),
            0x0b => Instr::Call(read_u(&mut pos)?),
            0x0c => {
                if pos >= buf.len() {
                    return Err(DecodeError::Truncated);
                }
                let h = HostFn::from_u8(buf[pos]).ok_or(DecodeError::BadOpcode(buf[pos]))?;
                pos += 1;
                Instr::CallHost(h)
            }
            0x0d => Instr::Ret,
            0x0e => Instr::Drop,
            0x0f => Instr::Select,
            0x10 => Instr::Load8U(read_u(&mut pos)?),
            0x11 => Instr::Load16U(read_u(&mut pos)?),
            0x12 => Instr::Load32U(read_u(&mut pos)?),
            0x13 => Instr::Load64(read_u(&mut pos)?),
            0x14 => Instr::Store8(read_u(&mut pos)?),
            0x15 => Instr::Store16(read_u(&mut pos)?),
            0x16 => Instr::Store32(read_u(&mut pos)?),
            0x17 => Instr::Store64(read_u(&mut pos)?),
            0x20 => Instr::Add,
            0x21 => Instr::Sub,
            0x22 => Instr::Mul,
            0x23 => Instr::DivS,
            0x24 => Instr::DivU,
            0x25 => Instr::RemS,
            0x26 => Instr::RemU,
            0x27 => Instr::And,
            0x28 => Instr::Or,
            0x29 => Instr::Xor,
            0x2a => Instr::Shl,
            0x2b => Instr::ShrS,
            0x2c => Instr::ShrU,
            0x2d => Instr::Eqz,
            0x2e => Instr::Eq,
            0x2f => Instr::Ne,
            0x30 => Instr::LtS,
            0x31 => Instr::LtU,
            0x32 => Instr::GtS,
            0x33 => Instr::GtU,
            0x34 => Instr::LeS,
            0x35 => Instr::LeU,
            0x36 => Instr::GeS,
            0x37 => Instr::GeU,
            0x40 => Instr::MemCopy,
            0x41 => Instr::MemFill,
            0x60..=0x6f => return Err(DecodeError::FusedOnWire),
            other => return Err(DecodeError::BadOpcode(other)),
        };
        out.push(instr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_round_trip() {
        let instrs = vec![
            Instr::I64Const(-42),
            Instr::LocalGet(3),
            Instr::LocalSet(700),
            Instr::Jmp(12),
            Instr::JmpIf(0),
            Instr::Call(5),
            Instr::CallHost(HostFn::GetStorage),
            Instr::Load64(16),
            Instr::Store8(0),
            Instr::Add,
            Instr::DivS,
            Instr::GeU,
            Instr::MemCopy,
            Instr::Select,
            Instr::Ret,
        ];
        let mut buf = Vec::new();
        for i in &instrs {
            encode_instr(&mut buf, i);
        }
        assert_eq!(decode_body(&buf).unwrap(), instrs);
    }

    #[test]
    fn fused_opcodes_rejected_on_wire() {
        assert_eq!(decode_body(&[0x60]), Err(DecodeError::FusedOnWire));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode_body(&[0xfe]), Err(DecodeError::BadOpcode(0xfe)));
    }

    #[test]
    fn truncated_immediate_rejected() {
        // I64Const with dangling continuation bit.
        assert!(matches!(
            decode_body(&[0x02, 0x80]),
            Err(DecodeError::Leb(_))
        ));
        // CallHost with no index byte.
        assert_eq!(decode_body(&[0x0c]), Err(DecodeError::Truncated));
    }

    #[test]
    fn hostfn_arities_are_consistent() {
        for v in 0..=9u8 {
            let h = HostFn::from_u8(v).unwrap();
            assert_eq!(h as u8, v);
            // All arities within the stack discipline.
            assert!(h.arg_count() <= 5);
        }
        assert!(HostFn::from_u8(10).is_none());
    }

    #[test]
    fn jump_target_accessors() {
        let j = Instr::JmpIf(7);
        assert_eq!(j.jump_target(), Some(7));
        assert_eq!(j.with_jump_target(9), Instr::JmpIf(9));
        assert_eq!(Instr::Add.jump_target(), None);
    }
}
