//! OPT1: the code cache and memory pool.
//!
//! §6.4: "OPT1 applies the code cache and memory management optimization.
//! WASM-based contract code has been encoded by LEB128. CONFIDE-VM
//! introduces a code cache mechanism … efficient memory management
//! increases the performance. In our evaluation, 2x gain can be obtained."
//!
//! * [`CodeCache`] memoizes LEB128 decode + fusion by code hash, so the
//!   second and later executions of a contract skip module preparation.
//! * [`MemoryPool`] recycles linear-memory buffers across executions,
//!   eliminating per-transaction allocation (and, in-enclave, fresh EPC
//!   page commits — the dominant cost on SGX v1).

use crate::interp::{ExecConfig, Prepared};
use crate::module::Module;
use crate::opcode::DecodeError;
use confide_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss counters for the ablation harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that decoded from scratch.
    pub misses: u64,
    /// Total bytes LEB-decoded on misses (decode-cost input for the
    /// simulation layer).
    pub decoded_bytes: u64,
}

/// A concurrent code cache keyed by contract code hash.
pub struct CodeCache {
    entries: Mutex<HashMap<[u8; 32], Arc<Prepared>>>,
    stats: Mutex<CacheStats>,
    /// Whether caching is enabled (disabled = every call decodes; the
    /// Figure 12 "baseline" configuration).
    enabled: bool,
}

impl CodeCache {
    /// Create a cache; `enabled = false` forces a decode per lookup.
    pub fn new(enabled: bool) -> CodeCache {
        CodeCache {
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            enabled,
        }
    }

    /// Fetch (or decode + prepare + insert) the module for `code_bytes`.
    pub fn get_or_prepare(
        &self,
        code_bytes: &[u8],
        config: &ExecConfig,
    ) -> Result<Arc<Prepared>, DecodeError> {
        let hash = Module::code_hash(code_bytes);
        if self.enabled {
            if let Some(hit) = self.entries.lock().get(&hash) {
                self.stats.lock().hits += 1;
                return Ok(Arc::clone(hit));
            }
        }
        let module = Module::decode(code_bytes)?;
        let prepared = Prepared::new(module, config);
        {
            let mut s = self.stats.lock();
            s.misses += 1;
            s.decoded_bytes += code_bytes.len() as u64;
        }
        if self.enabled {
            self.entries.lock().insert(hash, Arc::clone(&prepared));
        }
        Ok(prepared)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drop all cached modules (contract upgrade path).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// A pool of linear-memory buffers.
pub struct MemoryPool {
    pool: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    /// Allocation counters.
    reuses: Mutex<u64>,
    allocs: Mutex<u64>,
    enabled: bool,
}

impl MemoryPool {
    /// Create a pool holding at most `max_pooled` buffers.
    pub fn new(enabled: bool, max_pooled: usize) -> MemoryPool {
        MemoryPool {
            pool: Mutex::new(Vec::new()),
            max_pooled,
            reuses: Mutex::new(0),
            allocs: Mutex::new(0),
            enabled,
        }
    }

    /// Take a buffer (contents unspecified; the VM zeroes what it uses).
    pub fn take(&self) -> Vec<u8> {
        if self.enabled {
            if let Some(buf) = self.pool.lock().pop() {
                *self.reuses.lock() += 1;
                return buf;
            }
        }
        *self.allocs.lock() += 1;
        Vec::new()
    }

    /// Return a buffer for reuse.
    pub fn put(&self, buf: Vec<u8>) {
        if !self.enabled {
            return;
        }
        let mut pool = self.pool.lock();
        if pool.len() < self.max_pooled {
            pool.push(buf);
        }
    }

    /// (reuses, fresh allocations) so far.
    pub fn counters(&self) -> (u64, u64) {
        (*self.reuses.lock(), *self.allocs.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::opcode::Instr;

    fn code() -> Vec<u8> {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(1).op(Instr::Drop).op(Instr::Ret);
        mb.func(f.finish());
        mb.finish().encode()
    }

    #[test]
    fn cache_hits_after_first_decode() {
        let cache = CodeCache::new(true);
        let cfg = ExecConfig::default();
        let bytes = code();
        let a = cache.get_or_prepare(&bytes, &cfg).unwrap();
        let b = cache.get_or_prepare(&bytes, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.decoded_bytes, bytes.len() as u64);
    }

    #[test]
    fn disabled_cache_always_decodes() {
        let cache = CodeCache::new(false);
        let cfg = ExecConfig::default();
        let bytes = code();
        cache.get_or_prepare(&bytes, &cfg).unwrap();
        cache.get_or_prepare(&bytes, &cfg).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn different_code_different_entries() {
        let cache = CodeCache::new(true);
        let cfg = ExecConfig::default();
        let a = code();
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(2).op(Instr::Drop).op(Instr::Ret);
        mb.func(f.finish());
        let b = mb.finish().encode();
        let pa = cache.get_or_prepare(&a, &cfg).unwrap();
        let pb = cache.get_or_prepare(&b, &cfg).unwrap();
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_evicts() {
        let cache = CodeCache::new(true);
        let cfg = ExecConfig::default();
        let bytes = code();
        cache.get_or_prepare(&bytes, &cfg).unwrap();
        cache.clear();
        cache.get_or_prepare(&bytes, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn memory_pool_reuses_buffers() {
        let pool = MemoryPool::new(true, 4);
        let mut b = pool.take();
        b.resize(1024, 7);
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.capacity() >= 1024);
        let (reuses, allocs) = pool.counters();
        assert_eq!((reuses, allocs), (1, 1));
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = MemoryPool::new(false, 4);
        pool.put(vec![0u8; 100]);
        let _ = pool.take();
        let (reuses, allocs) = pool.counters();
        assert_eq!((reuses, allocs), (0, 1));
    }

    #[test]
    fn pool_bounded_by_max() {
        let pool = MemoryPool::new(true, 1);
        pool.put(vec![1]);
        pool.put(vec![2]); // dropped
        let _ = pool.take();
        let fresh = pool.take(); // pool empty again
        assert!(fresh.is_empty());
    }
}
