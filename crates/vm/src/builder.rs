//! Ergonomic module/function builders with symbolic labels — the assembler
//! layer the `confide-lang` compiler and hand-written tests target.

use crate::module::{DataSegment, Function, Module};
use crate::opcode::Instr;
use std::collections::HashMap;

/// A forward-referencable label inside one function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds one function body with label fixups.
pub struct FuncBuilder {
    name: String,
    param_count: u32,
    local_count: u32,
    body: Vec<Instr>,
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs needing patching.
    fixups: Vec<(usize, Label)>,
}

impl FuncBuilder {
    /// Start a function. `name` empty for internal helpers.
    pub fn new(name: &str, param_count: u32, local_count: u32) -> FuncBuilder {
        FuncBuilder {
            name: name.to_string(),
            param_count,
            local_count,
            body: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Allocate a fresh label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.body.len() as u32);
        self
    }

    /// Emit a raw instruction.
    pub fn op(&mut self, i: Instr) -> &mut Self {
        self.body.push(i);
        self
    }

    /// Emit several instructions.
    pub fn ops(&mut self, is: &[Instr]) -> &mut Self {
        self.body.extend_from_slice(is);
        self
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.body.len(), label));
        self.body.push(Instr::Jmp(u32::MAX));
        self
    }

    /// Emit jump-if-nonzero to `label`.
    pub fn jmp_if(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.body.len(), label));
        self.body.push(Instr::JmpIf(u32::MAX));
        self
    }

    /// Emit jump-if-zero to `label`.
    pub fn jmp_ifz(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.body.len(), label));
        self.body.push(Instr::JmpIfZ(u32::MAX));
        self
    }

    /// Push a constant.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.op(Instr::I64Const(v))
    }

    /// Bump the local count and return the new local's index.
    pub fn add_local(&mut self) -> u32 {
        let idx = self.param_count + self.local_count;
        self.local_count += 1;
        idx
    }

    /// Resolve labels and produce the function.
    ///
    /// # Panics
    ///
    /// Panics if a label created with [`FuncBuilder::label`] was jumped to
    /// but never [`bind`](FuncBuilder::bind)-ed — a codegen bug in the
    /// caller, not a runtime condition, so a panic (caught at build/test
    /// time) is the right failure mode. Runtime-supplied bytecode never
    /// reaches this path; it is validated by [`crate::verify_module`].
    pub fn finish(mut self) -> Function {
        for (pos, label) in self.fixups.drain(..) {
            let target = self.labels[label.0].expect("unbound label at finish()");
            self.body[pos] = self.body[pos].with_jump_target(target);
        }
        Function {
            name: self.name,
            param_count: self.param_count,
            local_count: self.local_count,
            body: self.body,
        }
    }
}

/// Builds a full module.
pub struct ModuleBuilder {
    memory_size: u32,
    global_count: u32,
    functions: Vec<Function>,
    func_names: HashMap<String, u32>,
    data: Vec<DataSegment>,
}

impl Default for ModuleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleBuilder {
    /// New module with a 1 MiB fixed linear memory.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder {
            memory_size: 1 << 20,
            global_count: 0,
            functions: Vec::new(),
            func_names: HashMap::new(),
            data: Vec::new(),
        }
    }

    /// Set the fixed linear-memory size.
    pub fn memory(&mut self, bytes: u32) -> &mut Self {
        self.memory_size = bytes;
        self
    }

    /// Declare `n` globals.
    pub fn globals(&mut self, n: u32) -> &mut Self {
        self.global_count = n;
        self
    }

    /// Add a finished function; returns its index.
    pub fn func(&mut self, f: Function) -> u32 {
        let idx = self.functions.len() as u32;
        if !f.name.is_empty() {
            self.func_names.insert(f.name.clone(), idx);
        }
        self.functions.push(f);
        idx
    }

    /// Index of a previously added named function.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.func_names.get(name).copied()
    }

    /// Add an initialized data segment; returns its offset.
    pub fn data(&mut self, offset: u32, bytes: &[u8]) -> u32 {
        self.data.push(DataSegment {
            offset,
            bytes: bytes.to_vec(),
        });
        offset
    }

    /// Produce the module.
    pub fn finish(self) -> Module {
        Module {
            memory_size: self.memory_size,
            global_count: self.global_count,
            functions: self.functions,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut f = FuncBuilder::new("loop10", 0, 1);
        let top = f.label();
        let done = f.label();
        // local0 = 0; loop: if local0 >= 10 goto done; local0 += 1; goto loop
        f.i64(0).op(Instr::LocalSet(0));
        f.bind(top);
        f.op(Instr::LocalGet(0)).i64(10).op(Instr::GeS);
        f.jmp_if(done);
        f.op(Instr::LocalGet(0))
            .i64(1)
            .op(Instr::Add)
            .op(Instr::LocalSet(0));
        f.jmp(top);
        f.bind(done);
        f.op(Instr::LocalGet(0)).op(Instr::Ret);
        let func = f.finish();
        // All fixups patched.
        assert!(func.body.iter().all(|i| i.jump_target() != Some(u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut f = FuncBuilder::new("x", 0, 0);
        let l = f.label();
        f.jmp(l);
        let _ = f.finish();
    }

    #[test]
    fn module_builder_tracks_names() {
        let mut m = ModuleBuilder::new();
        let mut f = FuncBuilder::new("entry", 0, 0);
        f.i64(1).op(Instr::Ret);
        let idx = m.func(f.finish());
        assert_eq!(m.func_index("entry"), Some(idx));
        let module = m.finish();
        assert_eq!(module.export("entry"), Some(idx));
    }

    #[test]
    fn add_local_indices_follow_params() {
        let mut f = FuncBuilder::new("f", 2, 1);
        assert_eq!(f.add_local(), 3);
        assert_eq!(f.add_local(), 4);
        let func = f.finish();
        assert_eq!(func.local_count, 3);
    }
}
