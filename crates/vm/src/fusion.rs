//! OPT4: instruction-set reduction via superinstruction fusion.
//!
//! §6.4: "We optimize the instruction set for smart contract, reducing
//! about 50% instructions which helps to shrink the jumping table
//! significantly. … by aggregating the instructions into one block, we gain
//! about 17% performance improvement."
//!
//! This pass runs on a decoded body. It never fuses across a jump target
//! (a fused pair must be entered atomically), and it remaps all branch
//! targets to the compacted instruction indices.

use crate::opcode::Instr;
use std::collections::HashSet;

/// Result of fusing one function body.
#[derive(Debug, Clone)]
pub struct FusionResult {
    /// The rewritten body.
    pub body: Vec<Instr>,
    /// Instructions eliminated by fusion.
    pub fused_away: usize,
}

/// Apply the peephole pass to `body`.
pub fn fuse(body: &[Instr]) -> FusionResult {
    // Instructions that are branch targets must start a (new) instruction.
    let mut targets: HashSet<u32> = HashSet::new();
    for i in body {
        if let Some(t) = i.jump_target() {
            targets.insert(t);
        }
    }

    let mut out: Vec<Instr> = Vec::with_capacity(body.len());
    // old index -> new index (for every old instruction; fused tails map to
    // the head's new index).
    let mut remap: Vec<u32> = vec![0; body.len() + 1];
    let mut i = 0usize;
    while i < body.len() {
        remap[i] = out.len() as u32;
        let a = body[i];
        let b = body.get(i + 1).copied();
        let c = body.get(i + 2).copied();
        let d = body.get(i + 3).copied();
        let b_ok = !targets.contains(&((i + 1) as u32));
        let c_ok = !targets.contains(&((i + 2) as u32));
        let d_ok = !targets.contains(&((i + 3) as u32));

        // 4-wide: LocalGet x, I64Const c, Add, LocalSet x  =>  IncLocal
        if let (
            Instr::LocalGet(x),
            Some(Instr::I64Const(k)),
            Some(Instr::Add),
            Some(Instr::LocalSet(y)),
        ) = (a, b, c, d)
        {
            if x == y && b_ok && c_ok && d_ok {
                for j in 1..4 {
                    remap[i + j] = out.len() as u32;
                }
                out.push(Instr::FusedIncLocal(x, k));
                i += 4;
                continue;
            }
        }
        // 2-wide fusions.
        if b_ok {
            if let Some(bi) = b {
                let fused = match (a, bi) {
                    (Instr::LocalGet(x), Instr::LocalGet(y)) => Some(Instr::FusedGetGet(x, y)),
                    (Instr::I64Const(k), Instr::Add) => Some(Instr::FusedAddConst(k)),
                    (Instr::LtS, Instr::JmpIf(t)) => Some(Instr::FusedBrIfLtS(t)),
                    (Instr::GeS, Instr::JmpIf(t)) => Some(Instr::FusedBrIfGeS(t)),
                    (Instr::Eq, Instr::JmpIf(t)) => Some(Instr::FusedBrIfEq(t)),
                    (Instr::Ne, Instr::JmpIf(t)) => Some(Instr::FusedBrIfNe(t)),
                    (Instr::LtS, Instr::JmpIfZ(t)) => Some(Instr::FusedBrIfGeS(t)),
                    (Instr::GeS, Instr::JmpIfZ(t)) => Some(Instr::FusedBrIfLtS(t)),
                    (Instr::Eq, Instr::JmpIfZ(t)) => Some(Instr::FusedBrIfNe(t)),
                    (Instr::Ne, Instr::JmpIfZ(t)) => Some(Instr::FusedBrIfEq(t)),
                    (Instr::LocalGet(x), Instr::Load8U(off)) => {
                        Some(Instr::FusedLocalLoad8U(x, off))
                    }
                    _ => None,
                };
                if let Some(f) = fused {
                    remap[i + 1] = out.len() as u32;
                    out.push(f);
                    i += 2;
                    continue;
                }
            }
        }
        out.push(a);
        i += 1;
    }
    remap[body.len()] = out.len() as u32;

    // Remap branch targets.
    for instr in out.iter_mut() {
        if let Some(t) = instr.jump_target() {
            *instr = instr.with_jump_target(remap[t as usize]);
        }
    }

    FusionResult {
        fused_away: body.len() - out.len(),
        body: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_const_add() {
        let body = vec![
            Instr::LocalGet(0),
            Instr::I64Const(5),
            Instr::Add,
            Instr::Ret,
        ];
        let r = fuse(&body);
        assert_eq!(
            r.body,
            vec![Instr::LocalGet(0), Instr::FusedAddConst(5), Instr::Ret]
        );
        assert_eq!(r.fused_away, 1);
    }

    #[test]
    fn fuses_inc_local() {
        let body = vec![
            Instr::LocalGet(2),
            Instr::I64Const(1),
            Instr::Add,
            Instr::LocalSet(2),
            Instr::Ret,
        ];
        let r = fuse(&body);
        assert_eq!(r.body, vec![Instr::FusedIncLocal(2, 1), Instr::Ret]);
        assert_eq!(r.fused_away, 3);
    }

    #[test]
    fn fuses_compare_branch_and_remaps_targets() {
        // 0: LocalGet 0
        // 1: I64Const 10
        // 2: LtS
        // 3: JmpIf 6
        // 4: I64Const 0
        // 5: Ret
        // 6: I64Const 1
        // 7: Ret
        let body = vec![
            Instr::LocalGet(0),
            Instr::I64Const(10),
            Instr::LtS,
            Instr::JmpIf(6),
            Instr::I64Const(0),
            Instr::Ret,
            Instr::I64Const(1),
            Instr::Ret,
        ];
        let r = fuse(&body);
        // LtS+JmpIf fuse; target 6 must now point at "I64Const 1".
        let fused_pos = r
            .body
            .iter()
            .position(|i| matches!(i, Instr::FusedBrIfLtS(_)))
            .unwrap();
        if let Instr::FusedBrIfLtS(t) = r.body[fused_pos] {
            assert_eq!(r.body[t as usize], Instr::I64Const(1));
        }
    }

    #[test]
    fn does_not_fuse_across_jump_target() {
        // The Add at index 2 is a jump target: [Const, Const] at 1..2 with a
        // branch landing on 2 — fusing Const(1)+Add would skip the landing pad.
        let body = vec![
            Instr::Jmp(2),
            Instr::I64Const(1),
            Instr::Add, // target
            Instr::Ret,
        ];
        let r = fuse(&body);
        assert!(r.body.contains(&Instr::Add), "{:?}", r.body);
        assert!(!r.body.iter().any(|i| matches!(i, Instr::FusedAddConst(_))));
    }

    #[test]
    fn inverted_branches_fuse_to_complement() {
        let body = vec![Instr::GeS, Instr::JmpIfZ(0)];
        let r = fuse(&body);
        assert_eq!(r.body, vec![Instr::FusedBrIfLtS(0)]);
    }

    #[test]
    fn get_get_pairs_fuse() {
        let body = vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::Add];
        let r = fuse(&body);
        assert_eq!(r.body, vec![Instr::FusedGetGet(0, 1), Instr::Add]);
    }

    #[test]
    fn typical_loop_shrinks_substantially() {
        // A string-scan style loop of the shape the compiler emits.
        let body = vec![
            Instr::I64Const(0),
            Instr::LocalSet(0),
            // loop head (2):
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::GeS,
            Instr::JmpIf(13),
            Instr::LocalGet(0),
            Instr::Load8U(0),
            Instr::Drop,
            Instr::LocalGet(0),
            Instr::I64Const(1),
            Instr::Add,
            Instr::LocalSet(0),
            // 13: exit — but Jmp back to 2 sits before it in real loops; keep simple
            Instr::Ret,
        ];
        let r = fuse(&body);
        // ≥ 30% reduction on this pattern.
        assert!(
            r.body.len() as f64 <= body.len() as f64 * 0.7,
            "{} -> {}",
            body.len(),
            r.body.len()
        );
    }
}
