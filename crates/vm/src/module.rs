//! The module container: functions, exports, data segments, memory size.

use crate::leb;
use crate::opcode::{decode_body, encode_instr, DecodeError, Instr};
use confide_crypto::sha256;
use std::collections::HashMap;

/// Wire-format magic.
pub const MAGIC: &[u8; 4] = b"CWSM";
/// Wire-format version.
pub const VERSION: u8 = 1;

/// One function: `param_count` parameters arrive as the first locals,
/// `local_count` additional zero-initialized locals follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Export name ("" for internal helpers).
    pub name: String,
    /// Number of parameters.
    pub param_count: u32,
    /// Number of extra locals.
    pub local_count: u32,
    /// Decoded body.
    pub body: Vec<Instr>,
}

/// A data segment copied into linear memory at instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Destination offset in linear memory.
    pub offset: u32,
    /// Bytes to place.
    pub bytes: Vec<u8>,
}

/// A decoded module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Fixed linear memory size in bytes (paper: "fixed size linear
    /// memory & stack").
    pub memory_size: u32,
    /// Number of mutable globals (zero-initialized).
    pub global_count: u32,
    /// All functions; calls index into this table.
    pub functions: Vec<Function>,
    /// Initialized data.
    pub data: Vec<DataSegment>,
}

impl Module {
    /// Look up an exported function by name.
    pub fn export(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Serialize to the LEB128 wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        leb::write_u64(&mut out, self.memory_size as u64);
        leb::write_u64(&mut out, self.global_count as u64);
        leb::write_u64(&mut out, self.functions.len() as u64);
        for f in &self.functions {
            leb::write_u64(&mut out, f.name.len() as u64);
            out.extend_from_slice(f.name.as_bytes());
            leb::write_u64(&mut out, f.param_count as u64);
            leb::write_u64(&mut out, f.local_count as u64);
            let mut body = Vec::new();
            for i in &f.body {
                encode_instr(&mut body, i);
            }
            leb::write_u64(&mut out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        leb::write_u64(&mut out, self.data.len() as u64);
        for d in &self.data {
            leb::write_u64(&mut out, d.offset as u64);
            leb::write_u64(&mut out, d.bytes.len() as u64);
            out.extend_from_slice(&d.bytes);
        }
        out
    }

    /// Parse the wire format. Returns the module and the number of bytes
    /// that were LEB-decoded (the decode-cost input for the code cache
    /// model).
    pub fn decode(buf: &[u8]) -> Result<Module, DecodeError> {
        let mut pos = 0usize;
        if buf.len() < 5 || &buf[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        if buf[4] != VERSION {
            return Err(DecodeError::BadMagic);
        }
        pos += 5;
        let read_u = |pos: &mut usize| -> Result<u64, DecodeError> {
            let (v, n) = leb::read_u64(buf.get(*pos..).ok_or(DecodeError::Truncated)?)?;
            *pos += n;
            Ok(v)
        };
        let memory_size = read_u(&mut pos)? as u32;
        let global_count = read_u(&mut pos)? as u32;
        let func_count = read_u(&mut pos)? as usize;
        let mut functions = Vec::with_capacity(func_count);
        for _ in 0..func_count {
            let name_len = read_u(&mut pos)? as usize;
            let name_bytes = buf.get(pos..pos + name_len).ok_or(DecodeError::Truncated)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| DecodeError::BadString)?
                .to_string();
            pos += name_len;
            let param_count = read_u(&mut pos)? as u32;
            let local_count = read_u(&mut pos)? as u32;
            let body_len = read_u(&mut pos)? as usize;
            let body_bytes = buf.get(pos..pos + body_len).ok_or(DecodeError::Truncated)?;
            pos += body_len;
            functions.push(Function {
                name,
                param_count,
                local_count,
                body: decode_body(body_bytes)?,
            });
        }
        let data_count = read_u(&mut pos)? as usize;
        let mut data = Vec::with_capacity(data_count);
        for _ in 0..data_count {
            let offset = read_u(&mut pos)? as u32;
            let len = read_u(&mut pos)? as usize;
            let bytes = buf
                .get(pos..pos + len)
                .ok_or(DecodeError::Truncated)?
                .to_vec();
            pos += len;
            data.push(DataSegment { offset, bytes });
        }
        if pos != buf.len() {
            return Err(DecodeError::Truncated);
        }
        Ok(Module {
            memory_size,
            global_count,
            functions,
            data,
        })
    }

    /// Content hash — the code-cache key and D-Protocol contract-code id.
    pub fn code_hash(bytes: &[u8]) -> [u8; 32] {
        sha256(bytes)
    }

    /// Build an export-name → index map.
    pub fn export_map(&self) -> HashMap<&str, u32> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.name.is_empty())
            .map(|(i, f)| (f.name.as_str(), i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        Module {
            memory_size: 65536,
            global_count: 2,
            functions: vec![
                Function {
                    name: "main".into(),
                    param_count: 0,
                    local_count: 3,
                    body: vec![Instr::I64Const(7), Instr::Ret],
                },
                Function {
                    name: String::new(),
                    param_count: 2,
                    local_count: 0,
                    body: vec![
                        Instr::LocalGet(0),
                        Instr::LocalGet(1),
                        Instr::Add,
                        Instr::Ret,
                    ],
                },
            ],
            data: vec![DataSegment {
                offset: 16,
                bytes: b"hello".to_vec(),
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let bytes = m.encode();
        let back = Module::decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn export_lookup() {
        let m = sample();
        assert_eq!(m.export("main"), Some(0));
        assert_eq!(m.export("missing"), None);
        assert_eq!(m.export_map().len(), 1);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Module::decode(b"WASM\x01"), Err(DecodeError::BadMagic));
        assert_eq!(Module::decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0xaa);
        assert_eq!(Module::decode(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = sample().encode();
        for cut in 1..bytes.len() {
            assert!(Module::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn code_hash_is_content_sensitive() {
        let a = sample().encode();
        let mut m2 = sample();
        m2.functions[0].body[0] = Instr::I64Const(8);
        let b = m2.encode();
        assert_ne!(Module::code_hash(&a), Module::code_hash(&b));
    }
}
