//! # confide-vm
//!
//! CONFIDE-VM: the Wasm-derived smart-contract virtual machine of §3.2.1 —
//! "a bytecode interpreter, a code cache and a fixed size linear
//! memory & stack". It inherits Wasm's key traits (LEB128-encoded
//! hardware-agnostic bytecode, i64 stack machine, flat linear memory,
//! host imports) while flattening structured control flow into direct
//! jumps, the form an optimizing blockchain VM interprets.
//!
//! The paper's optimizations are all here and individually toggleable so
//! the Figure 12 ablation can turn them on one by one:
//!
//! * **Code cache** ([`cache::CodeCache`], part of OPT1): modules are
//!   decoded from LEB128 once and cached by code hash; re-execution skips
//!   the decode entirely.
//! * **Memory pool** ([`cache::MemoryPool`], part of OPT1): linear memories
//!   are recycled across executions instead of re-allocated, reducing
//!   fragmentation and EPC pressure.
//! * **Instruction-set reduction + superinstruction fusion**
//!   ([`fusion`], OPT4): a peephole pass that rewrites hot multi-opcode
//!   patterns (compare-and-branch, constant increments, paired local
//!   loads) into single fused opcodes, shrinking the dispatch table and the
//!   per-instruction dispatch count by ~half on contract code.
//!
//! Execution reports [`interp::ExecStats`] — retired instructions, host
//! calls, bytes decoded — which the simulation layer converts to virtual
//! cycles (see `confide-sim`).
//!
//! **Ahead-of-time verification** ([`verify`]): modules can be proven
//! well-formed once at load time — stack discipline, jump/call targets,
//! operand indices, result arities. Verified modules
//! ([`interp::Prepared::new_verified`]) run a monomorphized interpreter
//! loop with the per-dispatch underflow/bounds checks compiled out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod builder;
pub mod cache;
pub mod fusion;
pub mod host;
pub mod interp;
pub mod leb;
pub mod module;
pub mod opcode;
pub mod verify;

pub use access::{
    analyze_module, AccessSummary, KeyExpr, KeyMatcher, KeySeg, KnownFn, ModuleAccess,
};
pub use builder::{FuncBuilder, ModuleBuilder};
pub use cache::{CodeCache, MemoryPool};
pub use host::{HostApi, HostError, MockHost};
pub use interp::{ExecConfig, ExecOutcome, ExecStats, Prepared, Trap, Vm};
pub use module::{Function, Module};
pub use opcode::Instr;
pub use verify::{verify_module, HostCallCounts, VerifyError, VerifyErrorKind, VerifySummary};
