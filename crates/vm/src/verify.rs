//! Ahead-of-time bytecode verification for CONFIDE-VM modules.
//!
//! The interpreter ([`crate::interp`]) is written defensively: every stack
//! pop, local access and call target is checked on every dispatch. Those
//! checks exist because the wire format ([`crate::module`]) accepts any
//! structurally-decodable module — including hand-crafted malicious ones.
//! This module proves the properties *once*, at load time, so the verified
//! execution path can drop the per-dispatch checks (see
//! [`crate::interp::Prepared::new_verified`]).
//!
//! ## Verified invariants
//!
//! For every function, by abstract interpretation of stack *heights* over
//! the control-flow graph:
//!
//! 1. **Stack discipline** — no instruction pops below the height at
//!    function entry (the value stack is shared across frames, so an
//!    underflow would read the *caller's* operands), and the height at any
//!    merge point is the same along every incoming edge.
//! 2. **Jump safety** — every branch target lies inside the body or lands
//!    exactly one past it (`pc == body.len()` is the "fall off the end"
//!    return the interpreter already honours).
//! 3. **Call arity** — every `Call(f)` names a real function and has at
//!    least `f.param_count` operands on the stack; every exit from a
//!    function leaves exactly its inferred result arity behind.
//! 4. **Operand/index validity** — local and global indices are in range,
//!    `CallHost` has its documented argument count available, data
//!    segments fit in linear memory, and per-function locals are bounded.
//!
//! The wire format does not record result arities, so they are *inferred*
//! by an interprocedural fixpoint: a function's arity is the (consistent)
//! stack height at its reachable exits, and exits behind calls to
//! not-yet-resolved functions are deferred to the next round. Modules with
//! no call-free path to any exit (e.g. unconditional self-recursion) are
//! rejected as [`VerifyErrorKind::UnresolvableResultArity`].
//!
//! Verification runs on the *decoded* (pre-fusion) body; the OPT4 fusion
//! pass preserves stack effects and remaps jump targets, so the proof
//! carries over to the fused body the interpreter actually runs.

use crate::module::Module;
use crate::opcode::{HostFn, Instr};

/// Upper bound on `param_count + local_count` per function (a crafted
/// module must not make the interpreter allocate gigabyte local frames).
pub const MAX_LOCALS: u32 = 4096;
/// Upper bound on declared linear memory (bytes).
pub const MAX_MEMORY: u32 = 1 << 26;
/// Upper bound on declared globals.
pub const MAX_GLOBALS: u32 = 1024;

/// Why verification rejected a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// An instruction pops more values than the current frame pushed.
    StackUnderflow {
        /// Stack height before the instruction.
        have: u32,
        /// Values the instruction needs.
        need: u32,
    },
    /// Two control-flow edges reach the same pc with different heights.
    HeightMismatch {
        /// Height already recorded for this pc.
        expected: u32,
        /// Height along the newly-explored edge.
        found: u32,
    },
    /// A branch target outside `0..=body.len()`.
    BadJumpTarget {
        /// The offending target.
        target: u32,
        /// The body length (targets may equal it: fall-off return).
        body_len: usize,
    },
    /// `Call` with fewer operands on the stack than the callee's params.
    ArityMismatch {
        /// Callee function index.
        callee: u32,
        /// Operands required (`param_count`).
        need: u32,
        /// Operands available.
        have: u32,
    },
    /// Exits of one function disagree on how many results it leaves.
    InconsistentResultArity {
        /// Arity seen at an earlier exit.
        first: u32,
        /// Arity at this exit.
        second: u32,
    },
    /// No call-free path to any exit, so the result arity cannot be
    /// established (unconditional recursion, or all exits unreachable).
    UnresolvableResultArity,
    /// `Call` to a function index outside the module.
    UnknownFunction {
        /// The offending index.
        index: u32,
        /// Number of functions in the module.
        count: usize,
    },
    /// Local index outside `param_count + local_count`.
    BadLocal {
        /// The offending index.
        index: u32,
        /// Locals available.
        count: u32,
    },
    /// Global index outside `global_count`.
    BadGlobal {
        /// The offending index.
        index: u32,
        /// Globals declared.
        count: u32,
    },
    /// A fused superinstruction appeared in a decoded body (they are
    /// fusion output only and rejected on the wire; reaching here means
    /// the module bypassed `Module::decode`).
    FusedInstruction,
    /// A data segment extends past linear memory.
    DataOutOfBounds {
        /// Segment offset.
        offset: u32,
        /// Segment length.
        len: usize,
        /// Declared memory size.
        memory: u32,
    },
    /// `param_count + local_count` exceeds [`MAX_LOCALS`].
    TooManyLocals {
        /// Declared locals.
        count: u32,
    },
    /// Declared memory exceeds [`MAX_MEMORY`].
    MemoryTooLarge {
        /// Declared size.
        size: u32,
    },
    /// Declared globals exceed [`MAX_GLOBALS`].
    TooManyGlobals {
        /// Declared count.
        count: u32,
    },
}

/// A verification failure, located at `functions[func].body[pc]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function index (u32::MAX for module-level checks).
    pub func: u32,
    /// Instruction index within the body (0 for module-level checks).
    pub pc: usize,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use VerifyErrorKind as K;
        if self.func != u32::MAX {
            write!(f, "func {} pc {}: ", self.func, self.pc)?;
        }
        match &self.kind {
            K::StackUnderflow { have, need } => {
                write!(f, "stack underflow: have {have}, need {need}")
            }
            K::HeightMismatch { expected, found } => {
                write!(f, "stack height mismatch at merge: {expected} vs {found}")
            }
            K::BadJumpTarget { target, body_len } => {
                write!(f, "jump target {target} outside body of length {body_len}")
            }
            K::ArityMismatch { callee, need, have } => {
                write!(
                    f,
                    "call to func {callee} needs {need} args, stack has {have}"
                )
            }
            K::InconsistentResultArity { first, second } => {
                write!(f, "exits disagree on result arity: {first} vs {second}")
            }
            K::UnresolvableResultArity => f.write_str("result arity unresolvable"),
            K::UnknownFunction { index, count } => {
                write!(f, "call to unknown function {index} (module has {count})")
            }
            K::BadLocal { index, count } => {
                write!(f, "local index {index} out of range ({count} available)")
            }
            K::BadGlobal { index, count } => {
                write!(f, "global index {index} out of range ({count} declared)")
            }
            K::FusedInstruction => f.write_str("fused superinstruction before fusion pass"),
            K::DataOutOfBounds {
                offset,
                len,
                memory,
            } => {
                write!(
                    f,
                    "data segment {offset}+{len} outside memory of {memory} bytes"
                )
            }
            K::TooManyLocals { count } => {
                write!(f, "{count} locals exceed the {MAX_LOCALS} limit")
            }
            K::MemoryTooLarge { size } => {
                write!(f, "memory size {size} exceeds the {MAX_MEMORY} limit")
            }
            K::TooManyGlobals { count } => {
                write!(f, "{count} globals exceed the {MAX_GLOBALS} limit")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Static host-call occurrence counts for one function body. Reported by
/// `confide-audit` and used by the access analyzer as a coverage
/// cross-check (a function with zero storage host calls can never
/// contribute storage events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostCallCounts {
    /// `GetStorage` occurrences (state reads).
    pub state_gets: u32,
    /// `SetStorage` occurrences (state writes).
    pub state_puts: u32,
    /// Storage-delete occurrences. The VM has no delete host call —
    /// deletion is an empty-value put — so this is always zero today; the
    /// field keeps the audit schema stable if one is added.
    pub state_deletes: u32,
    /// `CallContract` occurrences (cross-contract calls).
    pub contract_calls: u32,
}

/// Facts proven about a verified module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// Result arity of every function, by index.
    pub result_arity: Vec<u32>,
    /// Maximum abstract stack height of any single frame.
    pub max_frame_stack: u32,
    /// Static host-call counts of every function, by index.
    pub host_calls: Vec<HostCallCounts>,
}

/// Verify `module`, returning the proven summary or the first error.
pub fn verify_module(module: &Module) -> Result<VerifySummary, VerifyError> {
    module_level_checks(module)?;

    let n = module.functions.len();
    let mut arities: Vec<Option<u32>> = vec![None; n];

    // Interprocedural fixpoint: each round resolves every function whose
    // exits are reachable through already-resolved callees. At most n
    // rounds make progress; a round without progress means the remaining
    // functions are mutually unresolvable.
    loop {
        let mut progressed = false;
        for idx in 0..n {
            if arities[idx].is_some() {
                continue;
            }
            let r = analyze(module, idx as u32, &arities, false)?;
            match r.resolved {
                Some(a) => {
                    arities[idx] = Some(a);
                    progressed = true;
                }
                // No exit and no path cut short by an unresolved callee:
                // the function provably diverges, so arity 0 is sound.
                None if !r.blocked => {
                    arities[idx] = Some(0);
                    progressed = true;
                }
                None => {}
            }
        }
        if arities.iter().all(|a| a.is_some()) {
            break;
        }
        if !progressed {
            let idx = arities.iter().position(|a| a.is_none()).unwrap_or(0);
            return Err(VerifyError {
                func: idx as u32,
                pc: 0,
                kind: VerifyErrorKind::UnresolvableResultArity,
            });
        }
    }

    // Final pass with every arity known: full structural verification.
    let mut max_frame_stack = 0u32;
    let mut host_calls = Vec::with_capacity(n);
    for idx in 0..n {
        let mut counts = HostCallCounts::default();
        for instr in &module.functions[idx].body {
            match instr {
                Instr::CallHost(HostFn::GetStorage) => counts.state_gets += 1,
                Instr::CallHost(HostFn::SetStorage) => counts.state_puts += 1,
                Instr::CallHost(HostFn::CallContract) => counts.contract_calls += 1,
                _ => {}
            }
        }
        host_calls.push(counts);
        let r = analyze(module, idx as u32, &arities, true)?;
        max_frame_stack = max_frame_stack.max(r.max_height);
        match r.resolved {
            Some(a) if a == arities[idx].unwrap_or(0) => {}
            Some(a) => {
                return Err(VerifyError {
                    func: idx as u32,
                    pc: 0,
                    kind: VerifyErrorKind::InconsistentResultArity {
                        first: arities[idx].unwrap_or(0),
                        second: a,
                    },
                })
            }
            // No reachable exit: the function diverges, consistent with
            // whatever arity inference assigned (0).
            None => {}
        }
    }

    Ok(VerifySummary {
        result_arity: arities.into_iter().map(|a| a.unwrap_or(0)).collect(),
        max_frame_stack,
        host_calls,
    })
}

fn module_level_checks(module: &Module) -> Result<(), VerifyError> {
    let module_err = |kind| VerifyError {
        func: u32::MAX,
        pc: 0,
        kind,
    };
    if module.memory_size > MAX_MEMORY {
        return Err(module_err(VerifyErrorKind::MemoryTooLarge {
            size: module.memory_size,
        }));
    }
    if module.global_count > MAX_GLOBALS {
        return Err(module_err(VerifyErrorKind::TooManyGlobals {
            count: module.global_count,
        }));
    }
    for seg in &module.data {
        let end = seg.offset as u64 + seg.bytes.len() as u64;
        if end > module.memory_size as u64 {
            return Err(module_err(VerifyErrorKind::DataOutOfBounds {
                offset: seg.offset,
                len: seg.bytes.len(),
                memory: module.memory_size,
            }));
        }
    }
    for (idx, f) in module.functions.iter().enumerate() {
        let locals = f.param_count as u64 + f.local_count as u64;
        if locals > MAX_LOCALS as u64 {
            return Err(VerifyError {
                func: idx as u32,
                pc: 0,
                kind: VerifyErrorKind::TooManyLocals {
                    count: locals.min(u32::MAX as u64) as u32,
                },
            });
        }
    }
    Ok(())
}

struct FnAnalysis {
    /// The function's result arity, if at least one exit was reachable.
    resolved: Option<u32>,
    /// Maximum stack height observed (final pass only meaningful).
    max_height: u32,
    /// Inference mode only: a path was cut short by a call to a function
    /// whose arity is still unknown. Distinguishes "unresolved because
    /// blocked" (retry next round) from "unresolved because the function
    /// provably diverges" (no exits, no pending calls — arity 0 is sound).
    blocked: bool,
}

/// Abstract interpretation of stack heights over one function body.
///
/// `finalize = false` is the inference mode: paths through calls with
/// still-unknown arity are simply not followed. `finalize = true` requires
/// every arity to be known and explores everything reachable.
fn analyze(
    module: &Module,
    fidx: u32,
    arities: &[Option<u32>],
    finalize: bool,
) -> Result<FnAnalysis, VerifyError> {
    let func = &module.functions[fidx as usize];
    let body = &func.body;
    let nlocals = func.param_count + func.local_count;
    let err = |pc: usize, kind| VerifyError {
        func: fidx,
        pc,
        kind,
    };

    // Structural pre-pass over *every* instruction, reachable or not:
    // jump targets must stay inside the body. The dataflow worklist below
    // only visits reachable code, but prepare-time passes (the OPT4
    // fusion remap in particular) walk the whole body, so a wild target
    // in dead code would index out of bounds there. Found by single-byte
    // mutation fuzzing.
    for (pc, instr) in body.iter().enumerate() {
        if let Some(t) = instr.jump_target() {
            check_target(t, body.len()).map_err(|k| err(pc, k))?;
        }
    }

    // heights[pc] = entry height when reaching instruction pc.
    let mut heights: Vec<Option<u32>> = vec![None; body.len() + 1];
    let mut worklist: Vec<usize> = Vec::with_capacity(16);
    let mut exit_arity: Option<u32> = None;
    let mut max_height = 0u32;
    let mut blocked = false;

    heights[0] = Some(0);
    worklist.push(0);

    // Record a control-flow edge into `target` at height `h`.
    macro_rules! flow {
        ($from_pc:expr, $target:expr, $h:expr) => {{
            let t = $target;
            match heights[t] {
                None => {
                    heights[t] = Some($h);
                    worklist.push(t);
                }
                Some(prev) if prev != $h => {
                    return Err(err(
                        $from_pc,
                        VerifyErrorKind::HeightMismatch {
                            expected: prev,
                            found: $h,
                        },
                    ));
                }
                Some(_) => {}
            }
        }};
    }

    while let Some(pc) = worklist.pop() {
        let h = heights[pc].unwrap_or(0);
        max_height = max_height.max(h);
        if pc == body.len() {
            // Fall-off-the-end (or jump-to-end) return.
            match exit_arity {
                None => exit_arity = Some(h),
                Some(a) if a != h => {
                    return Err(err(
                        pc,
                        VerifyErrorKind::InconsistentResultArity {
                            first: a,
                            second: h,
                        },
                    ))
                }
                Some(_) => {}
            }
            continue;
        }
        let instr = body[pc];

        // (pops, pushes) stack effect; control flow handled explicitly.
        let (pops, pushes): (u32, u32) = match instr {
            Instr::Unreachable => {
                // Traps unconditionally: no successors, no constraints.
                continue;
            }
            Instr::Nop => (0, 0),
            Instr::I64Const(_) => (0, 1),
            Instr::LocalGet(n) | Instr::LocalSet(n) | Instr::LocalTee(n) => {
                if n >= nlocals {
                    return Err(err(
                        pc,
                        VerifyErrorKind::BadLocal {
                            index: n,
                            count: nlocals,
                        },
                    ));
                }
                match instr {
                    Instr::LocalGet(_) => (0, 1),
                    Instr::LocalSet(_) => (1, 0),
                    _ => (1, 1), // Tee: needs one, leaves it.
                }
            }
            Instr::GlobalGet(n) | Instr::GlobalSet(n) => {
                if n >= module.global_count {
                    return Err(err(
                        pc,
                        VerifyErrorKind::BadGlobal {
                            index: n,
                            count: module.global_count,
                        },
                    ));
                }
                if matches!(instr, Instr::GlobalGet(_)) {
                    (0, 1)
                } else {
                    (1, 0)
                }
            }
            Instr::Jmp(t) => {
                let t = check_target(t, body.len()).map_err(|k| err(pc, k))?;
                flow!(pc, t, h);
                continue;
            }
            Instr::JmpIf(t) | Instr::JmpIfZ(t) => {
                if h < 1 {
                    return Err(err(
                        pc,
                        VerifyErrorKind::StackUnderflow { have: h, need: 1 },
                    ));
                }
                let t = check_target(t, body.len()).map_err(|k| err(pc, k))?;
                flow!(pc, t, h - 1);
                flow!(pc, pc + 1, h - 1);
                continue;
            }
            Instr::Call(f) => {
                let callee = module.functions.get(f as usize).ok_or_else(|| {
                    err(
                        pc,
                        VerifyErrorKind::UnknownFunction {
                            index: f,
                            count: module.functions.len(),
                        },
                    )
                })?;
                let need = callee.param_count;
                if h < need {
                    return Err(err(
                        pc,
                        VerifyErrorKind::ArityMismatch {
                            callee: f,
                            need,
                            have: h,
                        },
                    ));
                }
                match arities.get(f as usize).copied().flatten() {
                    Some(results) => (need, results),
                    None if finalize => {
                        return Err(err(pc, VerifyErrorKind::UnresolvableResultArity))
                    }
                    // Inference mode: cannot see past this call yet.
                    None => {
                        blocked = true;
                        continue;
                    }
                }
            }
            Instr::CallHost(hf) => (hf.arg_count() as u32, hf.has_result() as u32),
            Instr::Ret => {
                match exit_arity {
                    None => exit_arity = Some(h),
                    Some(a) if a != h => {
                        return Err(err(
                            pc,
                            VerifyErrorKind::InconsistentResultArity {
                                first: a,
                                second: h,
                            },
                        ))
                    }
                    Some(_) => {}
                }
                continue;
            }
            Instr::Drop => (1, 0),
            Instr::Select => (3, 1),
            Instr::Load8U(_) | Instr::Load16U(_) | Instr::Load32U(_) | Instr::Load64(_) => (1, 1),
            Instr::Store8(_) | Instr::Store16(_) | Instr::Store32(_) | Instr::Store64(_) => (2, 0),
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::DivS
            | Instr::DivU
            | Instr::RemS
            | Instr::RemU
            | Instr::And
            | Instr::Or
            | Instr::Xor
            | Instr::Shl
            | Instr::ShrS
            | Instr::ShrU
            | Instr::Eq
            | Instr::Ne
            | Instr::LtS
            | Instr::LtU
            | Instr::GtS
            | Instr::GtU
            | Instr::LeS
            | Instr::LeU
            | Instr::GeS
            | Instr::GeU => (2, 1),
            Instr::Eqz => (1, 1),
            Instr::MemCopy | Instr::MemFill => (3, 0),
            Instr::FusedGetGet(..)
            | Instr::FusedIncLocal(..)
            | Instr::FusedAddConst(..)
            | Instr::FusedBrIfLtS(..)
            | Instr::FusedBrIfGeS(..)
            | Instr::FusedBrIfEq(..)
            | Instr::FusedBrIfNe(..)
            | Instr::FusedLocalLoad8U(..) => {
                return Err(err(pc, VerifyErrorKind::FusedInstruction));
            }
        };

        if h < pops {
            return Err(err(
                pc,
                VerifyErrorKind::StackUnderflow {
                    have: h,
                    need: pops,
                },
            ));
        }
        let next = h - pops + pushes;
        max_height = max_height.max(next);
        flow!(pc, pc + 1, next);
    }

    Ok(FnAnalysis {
        resolved: exit_arity,
        max_height,
        blocked,
    })
}

fn check_target(t: u32, body_len: usize) -> Result<usize, VerifyErrorKind> {
    if (t as usize) <= body_len {
        Ok(t as usize)
    } else {
        Err(VerifyErrorKind::BadJumpTarget {
            target: t,
            body_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::opcode::HostFn;
    use crate::opcode::Instr::*;

    fn simple(body: impl FnOnce(&mut FuncBuilder)) -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 2);
        body(&mut f);
        mb.func(f.finish());
        mb.finish()
    }

    #[test]
    fn clean_module_verifies() {
        let m = simple(|f| {
            f.i64(1).i64(2).op(Add).op(LocalSet(0));
            f.op(Ret);
        });
        let s = verify_module(&m).unwrap();
        assert_eq!(s.result_arity, vec![0]);
        assert!(s.max_frame_stack >= 2);
    }

    #[test]
    fn stack_underflow_rejected() {
        // `Add` with an empty stack.
        let m = simple(|f| {
            f.op(Add).op(Drop).op(Ret);
        });
        let e = verify_module(&m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::StackUnderflow { have: 0, need: 2 });
        assert_eq!((e.func, e.pc), (0, 0));
    }

    #[test]
    fn underflow_into_caller_frame_rejected() {
        // The callee pops one more value than it pushed: dynamically this
        // would silently consume the caller's operand (shared stack).
        let mut mb = ModuleBuilder::new();
        let mut evil = FuncBuilder::new("", 0, 0);
        evil.op(Drop).op(Ret); // pops caller data!
        let evil_idx = mb.func(evil.finish());
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(7).op(Call(evil_idx)).op(Drop).op(Ret);
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::StackUnderflow { .. }));
        assert_eq!(e.func, evil_idx);
    }

    #[test]
    fn bad_jump_target_rejected() {
        let m = simple(|f| {
            f.op(Jmp(99));
        });
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::BadJumpTarget { target: 99, .. }
        ));
    }

    #[test]
    fn bad_jump_target_in_dead_code_rejected() {
        // The worklist never reaches pc 2, but prepare-time passes walk
        // the whole body — a wild target in dead code must still fail
        // verification (mutation-fuzzing regression).
        let m = simple(|f| {
            f.op(Ret); // pc 0: everything after is unreachable
            f.op(Nop); // pc 1
            f.op(Jmp(14465)); // pc 2: dead, wild target
        });
        let e = verify_module(&m).unwrap_err();
        assert!(
            matches!(e.kind, VerifyErrorKind::BadJumpTarget { target: 14465, .. }),
            "{e}"
        );
        assert_eq!(e.pc, 2);
    }

    #[test]
    fn jump_to_end_is_a_return() {
        // Jmp(body.len()) is the fall-off-the-end exit the interpreter
        // honours; the verifier must accept it and use it for arity.
        let m = simple(|f| {
            f.op(Jmp(1));
        });
        assert_eq!(verify_module(&m).unwrap().result_arity, vec![0]);
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let mut mb = ModuleBuilder::new();
        let mut h = FuncBuilder::new("", 2, 0);
        h.op(LocalGet(0)).op(LocalGet(1)).op(Add).op(Ret);
        let helper = mb.func(h.finish());
        let mut f = FuncBuilder::new("main", 0, 0);
        f.i64(1).op(Call(helper)).op(Drop).op(Ret); // only 1 of 2 args
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::ArityMismatch {
                callee: helper,
                need: 2,
                have: 1
            }
        );
    }

    #[test]
    fn unknown_function_rejected() {
        let m = simple(|f| {
            f.op(Call(42)).op(Ret);
        });
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::UnknownFunction { index: 42, .. }
        ));
    }

    #[test]
    fn bad_local_and_global_rejected() {
        let m = simple(|f| {
            f.op(LocalGet(99)).op(Drop).op(Ret);
        });
        assert!(matches!(
            verify_module(&m).unwrap_err().kind,
            VerifyErrorKind::BadLocal { index: 99, .. }
        ));
        let m = simple(|f| {
            f.op(GlobalGet(3)).op(Drop).op(Ret);
        });
        assert!(matches!(
            verify_module(&m).unwrap_err().kind,
            VerifyErrorKind::BadGlobal { index: 3, .. }
        ));
    }

    #[test]
    fn merge_height_mismatch_rejected() {
        // One branch pushes an extra value before the merge point.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        // 0: const 1; 1: JmpIf(4); 2: const 5; 3: const 6; 4: Drop; 5: Ret
        // Edge 1->4 arrives at height 0; edge 3->4 arrives at height 2.
        f.i64(1);
        f.op(JmpIf(4));
        f.i64(5);
        f.i64(6);
        f.op(Drop);
        f.op(Ret);
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(
            matches!(
                e.kind,
                VerifyErrorKind::HeightMismatch { .. } | VerifyErrorKind::StackUnderflow { .. }
            ),
            "{e:?}"
        );
    }

    #[test]
    fn inconsistent_result_arity_rejected() {
        // One exit leaves 0 values, the other leaves 1.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        // 0: const 1; 1: JmpIf(3); 2: Ret (height 0); 3: const 9; 4: Ret (height 1)
        f.i64(1);
        f.op(JmpIf(3));
        f.op(Ret);
        f.i64(9);
        f.op(Ret);
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(
            matches!(e.kind, VerifyErrorKind::InconsistentResultArity { .. }),
            "{e:?}"
        );
    }

    #[test]
    fn unconditional_recursion_unresolvable() {
        // Same shape as the interpreter's `recursion_depth_limited` test:
        // no call-free exit, so no arity can be established.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Call(0));
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::UnresolvableResultArity);
    }

    #[test]
    fn recursion_with_base_case_resolves() {
        // fact-like shape: a conditional exit not behind the recursive call
        // lets inference establish the arity, then the final pass checks
        // the recursive path against it.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new("f", 1, 0);
        // 0: LocalGet 0; 1: JmpIfZ(5); 2: LocalGet 0; 3: Call 0; 4: Ret(h=1)
        // 5: i64 1; 6: Ret (h=1)
        f.op(LocalGet(0));
        f.op(JmpIfZ(5));
        f.op(LocalGet(0));
        f.op(Call(0));
        f.op(Ret);
        f.i64(1);
        f.op(Ret);
        mb.func(f.finish());
        let s = verify_module(&mb.finish()).unwrap();
        assert_eq!(s.result_arity, vec![1]);
    }

    #[test]
    fn data_segment_oob_rejected() {
        let mut mb = ModuleBuilder::new();
        mb.memory(64);
        mb.data(60, b"eight bytes!");
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Ret);
        mb.func(f.finish());
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::DataOutOfBounds { .. }));
    }

    #[test]
    fn resource_limits_enforced() {
        let mut mb = ModuleBuilder::new();
        mb.func(crate::module::Function {
            name: "main".into(),
            param_count: 0,
            local_count: MAX_LOCALS + 1,
            body: vec![Ret],
        });
        assert!(matches!(
            verify_module(&mb.finish()).unwrap_err().kind,
            VerifyErrorKind::TooManyLocals { .. }
        ));
    }

    #[test]
    fn fused_instruction_rejected_pre_fusion() {
        let m = simple(|f| {
            f.op(FusedAddConst(1)).op(Drop).op(Ret);
        });
        assert!(matches!(
            verify_module(&m).unwrap_err().kind,
            VerifyErrorKind::FusedInstruction
        ));
    }

    #[test]
    fn host_call_effects_checked() {
        // GetStorage pops 4 and pushes 1; with only 3 on the stack it must
        // be rejected.
        let m = simple(|f| {
            f.i64(0).i64(4).i64(64).op(CallHost(HostFn::GetStorage));
            f.op(Drop).op(Ret);
        });
        let e = verify_module(&m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::StackUnderflow { have: 3, need: 4 });
    }

    #[test]
    fn compiled_ccl_shapes_verify() {
        // A module in the exact shape codegen_vm emits: an __alloc helper,
        // an internal body, and a named export wrapper.
        let mut mb = ModuleBuilder::new();
        mb.globals(1);
        // __alloc(n): bump global 0.
        let mut alloc = FuncBuilder::new("", 1, 1);
        alloc
            .op(GlobalGet(0))
            .op(LocalSet(1))
            .op(GlobalGet(0))
            .op(LocalGet(0))
            .op(Add)
            .op(GlobalSet(0))
            .op(LocalGet(1))
            .op(Ret);
        let alloc_idx = mb.func(alloc.finish());
        // body(): returns 8 bytes via __alloc.
        let mut body = FuncBuilder::new("", 0, 1);
        body.i64(8)
            .op(Call(alloc_idx))
            .op(LocalSet(0))
            .op(LocalGet(0))
            .op(Ret);
        let body_idx = mb.func(body.finish());
        // export wrapper: reset heap, call body, drop result.
        let mut w = FuncBuilder::new("main", 0, 0);
        w.i64(1024)
            .op(GlobalSet(0))
            .op(Call(body_idx))
            .op(Drop)
            .op(Ret);
        mb.func(w.finish());
        let s = verify_module(&mb.finish()).unwrap();
        assert_eq!(s.result_arity, vec![1, 1, 0]);
    }
}
