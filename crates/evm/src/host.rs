//! Host interface for the EVM baseline (word-granular storage, as on
//! Ethereum).

use crate::u256::U256;
use std::collections::HashMap;

/// Host-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvmHostError {
    /// Storage backend failed.
    Storage(String),
    /// Cross-contract call failed.
    Call(String),
}

impl std::fmt::Display for EvmHostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvmHostError::Storage(m) => write!(f, "storage: {m}"),
            EvmHostError::Call(m) => write!(f, "call: {m}"),
        }
    }
}

impl std::error::Error for EvmHostError {}

/// The environment an EVM contract executes against.
pub trait EvmHost {
    /// Read a storage word (zero if absent).
    fn sload(&mut self, key: &U256) -> Result<U256, EvmHostError>;
    /// Write a storage word.
    fn sstore(&mut self, key: &U256, value: &U256) -> Result<(), EvmHostError>;
    /// Message caller.
    fn caller(&self) -> U256;
    /// Cross-contract call; returns the callee's return data.
    fn call_contract(&mut self, addr: &U256, input: &[u8]) -> Result<Vec<u8>, EvmHostError>;
    /// LOG0 sink.
    fn log(&mut self, data: &[u8]);
    /// Byte-granular storage read (SLOADB): the SDM interface CONFIDE's
    /// EVM shares with CONFIDE-VM.
    fn get_storage_bytes(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, EvmHostError>;
    /// Byte-granular storage write (SSTOREB).
    fn set_storage_bytes(&mut self, key: &[u8], val: &[u8]) -> Result<(), EvmHostError>;
    /// Keccak-256 for SHA3 (hosts may charge crypto cycles).
    fn keccak256(&mut self, data: &[u8]) -> [u8; 32] {
        confide_crypto::keccak256(data)
    }
}

/// In-memory host for tests.
#[derive(Default)]
pub struct MockEvmHost {
    /// Word-granular storage.
    pub storage: HashMap<[u8; 32], U256>,
    /// Byte-granular storage (SLOADB/SSTOREB).
    pub byte_storage: HashMap<Vec<u8>, Vec<u8>>,
    /// Caller identity.
    pub caller: U256,
    /// Captured logs.
    pub logs: Vec<Vec<u8>>,
}

impl EvmHost for MockEvmHost {
    fn sload(&mut self, key: &U256) -> Result<U256, EvmHostError> {
        Ok(self
            .storage
            .get(&key.to_be_bytes())
            .copied()
            .unwrap_or(U256::ZERO))
    }

    fn sstore(&mut self, key: &U256, value: &U256) -> Result<(), EvmHostError> {
        self.storage.insert(key.to_be_bytes(), *value);
        Ok(())
    }

    fn caller(&self) -> U256 {
        self.caller
    }

    fn call_contract(&mut self, _addr: &U256, _input: &[u8]) -> Result<Vec<u8>, EvmHostError> {
        Err(EvmHostError::Call(
            "MockEvmHost has no other contracts".into(),
        ))
    }

    fn log(&mut self, data: &[u8]) {
        self.logs.push(data.to_vec());
    }

    fn get_storage_bytes(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, EvmHostError> {
        Ok(self.byte_storage.get(key).cloned())
    }

    fn set_storage_bytes(&mut self, key: &[u8], val: &[u8]) -> Result<(), EvmHostError> {
        self.byte_storage.insert(key.to_vec(), val.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_storage_reads_zero() {
        let mut h = MockEvmHost::default();
        assert_eq!(h.sload(&U256::from_u64(5)).unwrap(), U256::ZERO);
        h.sstore(&U256::from_u64(5), &U256::from_u64(7)).unwrap();
        assert_eq!(h.sload(&U256::from_u64(5)).unwrap(), U256::from_u64(7));
    }
}
