//! A small EVM assembler with labels — the target of `confide-lang`'s EVM
//! backend and of hand-written test programs.

use crate::opcode as op;
use crate::u256::U256;
use std::collections::HashMap;

/// A symbolic jump destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvmLabel(usize);

/// Assembles EVM bytecode.
#[derive(Default)]
pub struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<u32>>,
    /// Byte positions of 4-byte label placeholders (after a PUSH4).
    fixups: Vec<(usize, EvmLabel)>,
}

impl Asm {
    /// Fresh assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current byte offset.
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Allocate a label.
    pub fn label(&mut self) -> EvmLabel {
        self.labels.push(None);
        EvmLabel(self.labels.len() - 1)
    }

    /// Bind a label here, emitting the required JUMPDEST.
    pub fn bind(&mut self, l: EvmLabel) -> &mut Self {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len() as u32);
        self.code.push(op::JUMPDEST);
        self
    }

    /// Emit a raw opcode byte.
    pub fn op(&mut self, opcode: u8) -> &mut Self {
        self.code.push(opcode);
        self
    }

    /// PUSH a constant with minimal width.
    pub fn push(&mut self, v: U256) -> &mut Self {
        let bytes = v.to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(31);
        let slice = &bytes[first..];
        self.code.push(op::PUSH1 + (slice.len() as u8 - 1));
        self.code.extend_from_slice(slice);
        self
    }

    /// PUSH a u64.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push(U256::from_u64(v))
    }

    /// PUSH exactly 32 bytes (big-endian word).
    pub fn push_word(&mut self, word: &[u8; 32]) -> &mut Self {
        self.code.push(op::PUSH1 + 31);
        self.code.extend_from_slice(word);
        self
    }

    /// PUSH the (not yet known) address of `l` as a 4-byte immediate.
    pub fn push_label(&mut self, l: EvmLabel) -> &mut Self {
        self.code.push(op::PUSH1 + 3); // PUSH4
        self.fixups.push((self.code.len(), l));
        self.code.extend_from_slice(&[0xff; 4]);
        self
    }

    /// Unconditional jump to `l`.
    pub fn jump(&mut self, l: EvmLabel) -> &mut Self {
        self.push_label(l);
        self.code.push(op::JUMP);
        self
    }

    /// Conditional jump: pops condition, jumps if non-zero.
    pub fn jumpi(&mut self, l: EvmLabel) -> &mut Self {
        self.push_label(l);
        self.code.push(op::JUMPI);
        self
    }

    /// DUPn (1-based, per EVM convention).
    pub fn dup(&mut self, n: u8) -> &mut Self {
        debug_assert!((1..=16).contains(&n));
        self.code.push(op::DUP1 + n - 1);
        self
    }

    /// SWAPn (1-based).
    pub fn swap(&mut self, n: u8) -> &mut Self {
        debug_assert!((1..=16).contains(&n));
        self.code.push(op::SWAP1 + n - 1);
        self
    }

    /// Resolve fixups and return the bytecode.
    pub fn finish(mut self) -> Vec<u8> {
        for (pos, l) in self.fixups.drain(..) {
            let target = self.labels[l.0].expect("unbound EVM label");
            self.code[pos..pos + 4].copy_from_slice(&target.to_be_bytes());
        }
        self.code
    }
}

/// Compute the set of valid JUMPDEST offsets for `code` (skipping PUSH
/// immediates, as a real EVM must).
pub fn jumpdests(code: &[u8]) -> HashMap<usize, ()> {
    let mut dests = HashMap::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let opcode = code[pc];
        if opcode == op::JUMPDEST {
            dests.insert(pc, ());
        }
        if (op::PUSH1..=op::PUSH1 + 31).contains(&opcode) {
            pc += (opcode - op::PUSH1) as usize + 1;
        }
        pc += 1;
    }
    dests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_minimal_width() {
        let mut a = Asm::new();
        a.push_u64(0x01);
        a.push_u64(0x1234);
        let code = a.finish();
        assert_eq!(code, vec![op::PUSH1, 0x01, op::PUSH1 + 1, 0x12, 0x34]);
    }

    #[test]
    fn push_zero_is_one_byte_immediate() {
        let mut a = Asm::new();
        a.push_u64(0);
        assert_eq!(a.finish(), vec![op::PUSH1, 0x00]);
    }

    #[test]
    fn labels_patch_to_jumpdest() {
        let mut a = Asm::new();
        let l = a.label();
        a.jump(l);
        a.op(op::INVALID);
        a.bind(l);
        a.op(op::STOP);
        let code = a.finish();
        // Find the JUMPDEST position and check the PUSH4 immediate.
        let dest = code.iter().position(|&b| b == op::JUMPDEST).unwrap();
        let imm = u32::from_be_bytes([code[1], code[2], code[3], code[4]]) as usize;
        assert_eq!(imm, dest);
        assert!(jumpdests(&code).contains_key(&dest));
    }

    #[test]
    fn jumpdest_scan_skips_push_immediates() {
        // PUSH2 0x5b5b embeds fake JUMPDEST bytes that must not count.
        let code = vec![op::PUSH1 + 1, 0x5b, 0x5b, op::JUMPDEST];
        let dests = jumpdests(&code);
        assert!(!dests.contains_key(&1));
        assert!(!dests.contains_key(&2));
        assert!(dests.contains_key(&3));
    }
}
