//! Deploy-time EVM bytecode verification.
//!
//! CONFIDE's deploy path rejects malformed CONFIDE-VM modules before they
//! ever reach the interpreter (`confide_vm::verify_module`); this module
//! gives the EVM engine the same guarantee so `Engine::deploy` treats both
//! VMs uniformly. Four checks run, all deterministic and linear-ish in code
//! size:
//!
//! 1. **Code-size limits** — empty blobs and blobs past
//!    [`VerifyConfig::max_code_size`] (EIP-170's 24 KiB by default) are
//!    refused outright.
//! 2. **Opcode whitelist** — every reachable byte position must hold an
//!    opcode the interpreter implements (plus `INVALID`, the designated
//!    abort). A `PUSH` immediate running past the end of code is a
//!    truncated blob, not an implicit zero-pad.
//! 3. **JUMPDEST analysis** — jump targets that are statically knowable
//!    (a `PUSHn <imm>` feeding the very next `JUMP`/`JUMPI`, the only
//!    shape `confide_lang`'s EVM backend emits for forward control flow)
//!    must land on a `JUMPDEST` that is not inside a push immediate.
//! 4. **Static stack-depth bounds** — an abstract walk from entry tracks
//!    the exact operand-stack depth along every statically reachable path
//!    and rejects definite underflows and >1024-deep growth at deploy.
//!
//! The stack walk follows fallthrough edges and constant-target jumps;
//! paths that continue through a *dynamic* jump (the callee-return idiom:
//! the target was pushed earlier as a return address) end there and stay
//! guarded by the interpreter's runtime `checked_dest`/underflow traps.
//! The verifier therefore never rejects code the interpreter would run —
//! it only rejects code that provably traps on some statically reachable
//! prefix, which is exactly the "garbage at deploy instead of at first
//! invoke" contract the CONFIDE-VM path already honors.

use crate::asm::jumpdests;
use crate::opcode as op;
use std::collections::HashSet;

/// Limits for [`verify_bytecode`].
#[derive(Clone, Debug)]
pub struct VerifyConfig {
    /// Maximum deployable code size in bytes (default: 24 KiB, EIP-170).
    pub max_code_size: usize,
    /// Operand-stack ceiling (default: the interpreter's 1024).
    pub max_stack: usize,
    /// Budget of distinct `(pc, depth)` states the static walk may visit
    /// before giving up in favor of the runtime guards.
    pub max_states: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_code_size: 24 * 1024,
            max_stack: 1024,
            max_states: 1 << 16,
        }
    }
}

/// A reason deploy-time verification refused a blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Zero-length code deploys nothing callable.
    EmptyCode,
    /// Code exceeds [`VerifyConfig::max_code_size`].
    CodeTooLarge {
        /// Actual size in bytes.
        size: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// An opcode the interpreter does not implement.
    UnknownOpcode {
        /// Byte offset of the opcode.
        pc: usize,
        /// The offending byte.
        opcode: u8,
    },
    /// A `PUSHn` whose immediate runs past the end of code.
    TruncatedPush {
        /// Byte offset of the push opcode.
        pc: usize,
        /// Immediate bytes the opcode requires.
        want: usize,
        /// Immediate bytes actually present.
        have: usize,
    },
    /// A constant jump target that is not a valid `JUMPDEST`.
    BadStaticJump {
        /// Byte offset of the jump opcode.
        pc: usize,
        /// The constant destination.
        target: u64,
    },
    /// A statically reachable instruction pops more than the stack holds.
    StackUnderflow {
        /// Byte offset of the instruction.
        pc: usize,
        /// Operands the instruction pops.
        need: usize,
        /// Stack depth on entry to the instruction.
        have: usize,
    },
    /// A statically reachable path grows the stack past the ceiling.
    StackOverflow {
        /// Byte offset of the instruction.
        pc: usize,
        /// Depth the instruction would reach.
        depth: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EmptyCode => f.write_str("empty bytecode"),
            VerifyError::CodeTooLarge { size, max } => {
                write!(f, "code size {size} exceeds limit {max}")
            }
            VerifyError::UnknownOpcode { pc, opcode } => {
                write!(f, "unknown opcode 0x{opcode:02x} at pc {pc}")
            }
            VerifyError::TruncatedPush { pc, want, have } => {
                write!(
                    f,
                    "truncated PUSH at pc {pc}: wants {want} bytes, has {have}"
                )
            }
            VerifyError::BadStaticJump { pc, target } => {
                write!(f, "jump at pc {pc} targets {target}, not a JUMPDEST")
            }
            VerifyError::StackUnderflow { pc, need, have } => {
                write!(
                    f,
                    "instruction at pc {pc} pops {need} with stack depth {have}"
                )
            }
            VerifyError::StackOverflow { pc, depth } => {
                write!(f, "stack would reach depth {depth} at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// `(pops, pushes)` for a whitelisted opcode, `None` for anything the
/// interpreter would trap on with `InvalidOpcode`.
fn arity(opcode: u8) -> Option<(usize, usize)> {
    Some(match opcode {
        op::STOP | op::JUMPDEST | op::INVALID => (0, 0),
        op::ADD
        | op::MUL
        | op::SUB
        | op::DIV
        | op::SDIV
        | op::MOD
        | op::SMOD
        | op::SIGNEXTEND
        | op::LT
        | op::GT
        | op::SLT
        | op::SGT
        | op::EQ
        | op::AND
        | op::OR
        | op::XOR
        | op::BYTE
        | op::SHL
        | op::SHR
        | op::SAR
        | op::SHA3 => (2, 1),
        op::ISZERO | op::NOT | op::CALLDATALOAD | op::MLOAD | op::SLOAD => (1, 1),
        op::CALLER | op::CALLDATASIZE | op::RETURNDATASIZE | op::PC => (0, 1),
        op::CALLDATACOPY | op::RETURNDATACOPY => (3, 0),
        op::POP | op::JUMP => (1, 0),
        op::MSTORE | op::MSTORE8 | op::SSTORE | op::JUMPI | op::LOG0 | op::RETURN | op::REVERT => {
            (2, 0)
        }
        0x60..=0x7f => (0, 1), // PUSH1..32
        0x80..=0x8f => (
            (opcode - op::DUP1) as usize + 1,
            (opcode - op::DUP1) as usize + 2,
        ),
        0x90..=0x9f => (
            (opcode - op::SWAP1) as usize + 2,
            (opcode - op::SWAP1) as usize + 2,
        ),
        op::CALL => (7, 1),
        op::SLOADB => (4, 1),
        op::SSTOREB => (4, 0),
        _ => return None,
    })
}

fn is_terminal(opcode: u8) -> bool {
    matches!(opcode, op::STOP | op::RETURN | op::REVERT | op::INVALID)
}

/// Verify an EVM blob for deployment. See the module docs for the rules.
pub fn verify_bytecode(code: &[u8], config: &VerifyConfig) -> Result<(), VerifyError> {
    if code.is_empty() {
        return Err(VerifyError::EmptyCode);
    }
    if code.len() > config.max_code_size {
        return Err(VerifyError::CodeTooLarge {
            size: code.len(),
            max: config.max_code_size,
        });
    }

    let dests = jumpdests(code);

    // Pass 1: linear scan on instruction boundaries — whitelist, truncated
    // pushes, and the PUSH-feeds-JUMP static target check.
    let mut pc = 0usize;
    let mut pending_const: Option<u64> = None; // value of a PUSH ending at `pc`
    while pc < code.len() {
        let opcode = code[pc];
        if arity(opcode).is_none() {
            return Err(VerifyError::UnknownOpcode { pc, opcode });
        }
        if matches!(opcode, op::JUMP | op::JUMPI) {
            if let Some(target) = pending_const {
                if !dests.contains_key(&(target as usize)) {
                    return Err(VerifyError::BadStaticJump { pc, target });
                }
            }
        }
        pending_const = None;
        if (0x60..=0x7f).contains(&opcode) {
            let n = (opcode - op::PUSH1) as usize + 1;
            let have = code.len().saturating_sub(pc + 1);
            if have < n {
                return Err(VerifyError::TruncatedPush { pc, want: n, have });
            }
            let imm = &code[pc + 1..pc + 1 + n];
            if n <= 8 {
                let mut v = 0u64;
                for b in imm {
                    v = (v << 8) | *b as u64;
                }
                pending_const = Some(v);
            }
            pc += 1 + n;
        } else {
            pc += 1;
        }
    }

    // Pass 2: abstract stack walk from entry. Exact depths along
    // statically reachable paths; dynamic jumps end the path (runtime
    // `checked_dest` takes over there).
    let mut worklist: Vec<(usize, usize)> = vec![(0, 0)];
    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    while let Some((start, depth0)) = worklist.pop() {
        let mut pc = start;
        let mut depth = depth0;
        let mut pending_const: Option<u64> = None;
        loop {
            if pc >= code.len() {
                break; // implicit STOP
            }
            if !visited.insert((pc, depth)) {
                break;
            }
            if visited.len() > config.max_states {
                return Ok(()); // budget exhausted: defer to runtime guards
            }
            let opcode = code[pc];
            let (pops, pushes) = arity(opcode).expect("pass 1 whitelisted every opcode");
            if depth < pops {
                return Err(VerifyError::StackUnderflow {
                    pc,
                    need: pops,
                    have: depth,
                });
            }
            let next_depth = depth - pops + pushes;
            if next_depth > config.max_stack {
                return Err(VerifyError::StackOverflow {
                    pc,
                    depth: next_depth,
                });
            }
            if is_terminal(opcode) {
                break;
            }
            match opcode {
                op::JUMP => {
                    if let Some(t) = pending_const {
                        worklist.push((t as usize, next_depth));
                    }
                    break;
                }
                op::JUMPI => {
                    if let Some(t) = pending_const {
                        worklist.push((t as usize, next_depth));
                    }
                    pending_const = None;
                    depth = next_depth;
                    pc += 1;
                }
                0x60..=0x7f => {
                    let n = (opcode - op::PUSH1) as usize + 1;
                    pending_const = if n <= 8 {
                        let mut v = 0u64;
                        for b in &code[pc + 1..pc + 1 + n] {
                            v = (v << 8) | *b as u64;
                        }
                        Some(v)
                    } else {
                        None
                    };
                    depth = next_depth;
                    pc += 1 + n;
                }
                _ => {
                    pending_const = None;
                    depth = next_depth;
                    pc += 1;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::opcode as op;

    fn cfg() -> VerifyConfig {
        VerifyConfig::default()
    }

    #[test]
    fn empty_and_oversized_blobs_are_rejected() {
        assert_eq!(verify_bytecode(&[], &cfg()), Err(VerifyError::EmptyCode));
        let huge = vec![op::JUMPDEST; 24 * 1024 + 1];
        assert!(matches!(
            verify_bytecode(&huge, &cfg()),
            Err(VerifyError::CodeTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        // 0xcc is outside the implemented subset.
        assert_eq!(
            verify_bytecode(&[op::STOP, 0xcc], &cfg()),
            Err(VerifyError::UnknownOpcode {
                pc: 1,
                opcode: 0xcc
            })
        );
    }

    #[test]
    fn truncated_push_is_rejected() {
        // PUSH4 with only two immediate bytes left.
        assert_eq!(
            verify_bytecode(&[0x63, 0x01, 0x02], &cfg()),
            Err(VerifyError::TruncatedPush {
                pc: 0,
                want: 4,
                have: 2
            })
        );
    }

    #[test]
    fn constant_jump_must_land_on_a_jumpdest() {
        // PUSH1 3; JUMP — pc 3 is STOP, not JUMPDEST.
        let code = vec![0x60, 0x03, op::JUMP, op::STOP];
        assert_eq!(
            verify_bytecode(&code, &cfg()),
            Err(VerifyError::BadStaticJump { pc: 2, target: 3 })
        );
        // Same shape but targeting a real JUMPDEST passes.
        let code = vec![0x60, 0x03, op::JUMP, op::JUMPDEST, op::STOP];
        assert_eq!(verify_bytecode(&code, &cfg()), Ok(()));
    }

    #[test]
    fn jumpdest_inside_push_immediate_does_not_count() {
        // PUSH1 0x5b pushes the byte 0x5b; jumping to its offset is bad.
        let code = vec![0x60, op::JUMPDEST, 0x60, 0x01, op::JUMP, op::STOP];
        assert_eq!(
            verify_bytecode(&code, &cfg()),
            Err(VerifyError::BadStaticJump { pc: 4, target: 1 })
        );
    }

    #[test]
    fn entry_underflow_is_rejected() {
        assert_eq!(
            verify_bytecode(&[op::ADD], &cfg()),
            Err(VerifyError::StackUnderflow {
                pc: 0,
                need: 2,
                have: 0
            })
        );
        // DUP3 with only two pushed words.
        let code = vec![0x60, 0x01, 0x60, 0x02, 0x82, op::STOP];
        assert!(matches!(
            verify_bytecode(&code, &cfg()),
            Err(VerifyError::StackUnderflow { pc: 4, .. })
        ));
    }

    #[test]
    fn overflow_via_unbalanced_loop_is_rejected() {
        // JUMPDEST; PUSH1 0; PUSH1 0; JUMPI-back... make a strictly
        // growing straight line instead: 1025 pushes.
        let mut a = Asm::new();
        for _ in 0..1025 {
            a.push_u64(1);
        }
        a.op(op::STOP);
        assert!(matches!(
            verify_bytecode(&a.finish(), &cfg()),
            Err(VerifyError::StackOverflow { .. })
        ));
    }

    #[test]
    fn dynamic_return_jumps_are_left_to_runtime() {
        // The callee-return idiom: caller pushes a return address, callee
        // jumps to it dynamically (SWAP1; JUMP). Statically unknowable, so
        // the verifier must accept it.
        let mut a = Asm::new();
        let f = a.label();
        let ret = a.label();
        a.push_label(ret).jump(f);
        a.bind(ret).op(op::STOP);
        a.bind(f).push_u64(1).op(op::POP).op(op::JUMP);
        assert_eq!(verify_bytecode(&a.finish(), &cfg()), Ok(()));
    }
}
