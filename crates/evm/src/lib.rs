//! # confide-evm
//!
//! The EVM baseline of the paper's Figure 10: a 256-bit-word, stack-based
//! virtual machine in the Ethereum mould. CONFIDE keeps an EVM "for a
//! traditional smart contract ecosystem using Solidity" (§3.2.1) and the
//! evaluation shows it losing to the Wasm-derived CONFIDE-VM on every
//! workload — not because it is implemented carelessly, but because the
//! architecture is inherently heavier for business-logic contracts:
//!
//! * every value is a 256-bit word ([`u256::U256`] here, four u64 limbs),
//!   so simple counters pay 4× the arithmetic;
//! * memory is byte-addressed but accessed in 32-byte words
//!   (`MLOAD`/`MSTORE`), so string processing costs a word op per byte;
//! * storage is a 32-byte-key → 32-byte-value map, so any structure wider
//!   than a word needs multiple `SLOAD`/`SSTORE` round trips;
//! * the dispatch table is wide (PUSH1..32, DUP1..16, SWAP1..16).
//!
//! The interpreter is complete enough to run the compiled output of
//! `confide-lang`'s EVM backend, which is how the Figure 10 workloads
//! execute on both machines from the same source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod host;
pub mod interp;
pub mod opcode;
pub mod u256;
pub mod verify;

pub use asm::Asm;
pub use host::{EvmHost, MockEvmHost};
pub use interp::{Evm, EvmConfig, EvmOutcome, EvmStats, EvmTrap};
pub use u256::U256;
pub use verify::{verify_bytecode, VerifyConfig, VerifyError};
