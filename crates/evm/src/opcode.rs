//! EVM opcode constants (Ethereum yellow-paper numbering for the subset we
//! implement).

#![allow(missing_docs)]

pub const STOP: u8 = 0x00;
pub const ADD: u8 = 0x01;
pub const MUL: u8 = 0x02;
pub const SUB: u8 = 0x03;
pub const DIV: u8 = 0x04;
pub const SDIV: u8 = 0x05;
pub const MOD: u8 = 0x06;
pub const SMOD: u8 = 0x07;
pub const SIGNEXTEND: u8 = 0x0b;
pub const LT: u8 = 0x10;
pub const GT: u8 = 0x11;
pub const SLT: u8 = 0x12;
pub const SGT: u8 = 0x13;
pub const EQ: u8 = 0x14;
pub const ISZERO: u8 = 0x15;
pub const AND: u8 = 0x16;
pub const OR: u8 = 0x17;
pub const XOR: u8 = 0x18;
pub const NOT: u8 = 0x19;
pub const BYTE: u8 = 0x1a;
pub const SHL: u8 = 0x1b;
pub const SHR: u8 = 0x1c;
pub const SAR: u8 = 0x1d;
pub const SHA3: u8 = 0x20;
pub const CALLER: u8 = 0x33;
pub const CALLDATALOAD: u8 = 0x35;
pub const CALLDATASIZE: u8 = 0x36;
pub const CALLDATACOPY: u8 = 0x37;
pub const RETURNDATASIZE: u8 = 0x3d;
pub const RETURNDATACOPY: u8 = 0x3e;
pub const POP: u8 = 0x50;
pub const MLOAD: u8 = 0x51;
pub const MSTORE: u8 = 0x52;
pub const MSTORE8: u8 = 0x53;
pub const SLOAD: u8 = 0x54;
pub const SSTORE: u8 = 0x55;
pub const JUMP: u8 = 0x56;
pub const JUMPI: u8 = 0x57;
pub const PC: u8 = 0x58;
pub const JUMPDEST: u8 = 0x5b;
pub const PUSH1: u8 = 0x60; // PUSH1..PUSH32 = 0x60..0x7f
pub const DUP1: u8 = 0x80; // DUP1..DUP16 = 0x80..0x8f
pub const SWAP1: u8 = 0x90; // SWAP1..SWAP16 = 0x90..0x9f
pub const LOG0: u8 = 0xa0;
pub const CALL: u8 = 0xf1;
/// Nonstandard: byte-granular storage read through the SDM (CONFIDE's EVM
/// stores state via the same KV interface as CONFIDE-VM; see crate docs).
pub const SLOADB: u8 = 0xf5;
/// Nonstandard: byte-granular storage write through the SDM.
pub const SSTOREB: u8 = 0xf6;
pub const RETURN: u8 = 0xf3;
pub const REVERT: u8 = 0xfd;
pub const INVALID: u8 = 0xfe;

/// Human-readable mnemonic (diagnostics).
pub fn name(op: u8) -> &'static str {
    match op {
        STOP => "STOP",
        ADD => "ADD",
        MUL => "MUL",
        SUB => "SUB",
        DIV => "DIV",
        SDIV => "SDIV",
        MOD => "MOD",
        SMOD => "SMOD",
        SIGNEXTEND => "SIGNEXTEND",
        LT => "LT",
        GT => "GT",
        SLT => "SLT",
        SGT => "SGT",
        EQ => "EQ",
        ISZERO => "ISZERO",
        AND => "AND",
        OR => "OR",
        XOR => "XOR",
        NOT => "NOT",
        BYTE => "BYTE",
        SHL => "SHL",
        SHR => "SHR",
        SAR => "SAR",
        SHA3 => "SHA3",
        CALLER => "CALLER",
        CALLDATALOAD => "CALLDATALOAD",
        CALLDATASIZE => "CALLDATASIZE",
        CALLDATACOPY => "CALLDATACOPY",
        RETURNDATASIZE => "RETURNDATASIZE",
        RETURNDATACOPY => "RETURNDATACOPY",
        POP => "POP",
        MLOAD => "MLOAD",
        MSTORE => "MSTORE",
        MSTORE8 => "MSTORE8",
        SLOAD => "SLOAD",
        SSTORE => "SSTORE",
        JUMP => "JUMP",
        JUMPI => "JUMPI",
        PC => "PC",
        JUMPDEST => "JUMPDEST",
        0x60..=0x7f => "PUSH",
        0x80..=0x8f => "DUP",
        0x90..=0x9f => "SWAP",
        LOG0 => "LOG0",
        CALL => "CALL",
        SLOADB => "SLOADB",
        SSTOREB => "SSTOREB",
        RETURN => "RETURN",
        REVERT => "REVERT",
        INVALID => "INVALID",
        _ => "UNKNOWN",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_core_set() {
        assert_eq!(name(ADD), "ADD");
        assert_eq!(name(0x65), "PUSH");
        assert_eq!(name(0x8f), "DUP");
        assert_eq!(name(0x9f), "SWAP");
        assert_eq!(name(0xcc), "UNKNOWN");
    }
}
