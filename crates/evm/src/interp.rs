//! The EVM interpreter loop.

use crate::asm::jumpdests;
use crate::host::{EvmHost, EvmHostError};
use crate::opcode as op;
use crate::u256::U256;
use std::collections::HashMap;

/// Runtime traps / abnormal terminations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvmTrap {
    /// Pop from an empty stack.
    StackUnderflow,
    /// Stack grew beyond 1024 entries.
    StackOverflow,
    /// Jump to a non-JUMPDEST offset.
    BadJump(u64),
    /// Unknown or unimplemented opcode.
    InvalidOpcode(u8),
    /// Instruction budget exhausted.
    OutOfFuel,
    /// Memory would exceed the configured limit.
    MemoryLimit,
    /// Explicit REVERT with its payload.
    Reverted(Vec<u8>),
    /// Host failure.
    Host(EvmHostError),
}

impl std::fmt::Display for EvmTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvmTrap::StackUnderflow => f.write_str("stack underflow"),
            EvmTrap::StackOverflow => f.write_str("stack overflow"),
            EvmTrap::BadJump(pc) => write!(f, "bad jump destination {pc}"),
            EvmTrap::InvalidOpcode(o) => write!(f, "invalid opcode 0x{o:02x} ({})", op::name(*o)),
            EvmTrap::OutOfFuel => f.write_str("out of fuel"),
            EvmTrap::MemoryLimit => f.write_str("memory limit exceeded"),
            EvmTrap::Reverted(_) => f.write_str("execution reverted"),
            EvmTrap::Host(e) => write!(f, "host error: {e}"),
        }
    }
}

impl std::error::Error for EvmTrap {}

impl From<EvmHostError> for EvmTrap {
    fn from(e: EvmHostError) -> Self {
        EvmTrap::Host(e)
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct EvmConfig {
    /// Maximum instructions retired.
    pub fuel: u64,
    /// Maximum memory bytes.
    pub max_memory: usize,
}

impl Default for EvmConfig {
    fn default() -> Self {
        EvmConfig {
            fuel: 500_000_000,
            max_memory: 16 << 20,
        }
    }
}

/// Counters for the simulation cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvmStats {
    /// Instructions retired.
    pub instret: u64,
    /// Storage/call/log host operations.
    pub host_calls: u64,
    /// Bytes through host operations.
    pub host_bytes: u64,
}

/// A successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvmOutcome {
    /// RETURN payload (empty on STOP).
    pub return_data: Vec<u8>,
    /// Counters.
    pub stats: EvmStats,
}

/// The EVM instance: bytecode plus its precomputed JUMPDEST set.
pub struct Evm {
    code: Vec<u8>,
    dests: HashMap<usize, ()>,
    config: EvmConfig,
}

impl Evm {
    /// Analyze `code` (JUMPDEST scan) and wrap it.
    pub fn new(code: Vec<u8>, config: EvmConfig) -> Evm {
        let dests = jumpdests(&code);
        Evm {
            code,
            dests,
            config,
        }
    }

    /// Execute with `calldata` against `host`.
    pub fn run(&self, calldata: &[u8], host: &mut dyn EvmHost) -> Result<EvmOutcome, EvmTrap> {
        let mut stack: Vec<U256> = Vec::with_capacity(64);
        let mut memory: Vec<u8> = Vec::new();
        let mut return_buf: Vec<u8> = Vec::new(); // RETURNDATA of last CALL
        let mut stats = EvmStats::default();
        let mut fuel = self.config.fuel;
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(EvmTrap::StackUnderflow)?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= 1024 {
                    return Err(EvmTrap::StackOverflow);
                }
                stack.push($v);
            }};
        }

        while pc < self.code.len() {
            if fuel == 0 {
                return Err(EvmTrap::OutOfFuel);
            }
            fuel -= 1;
            stats.instret += 1;
            let opcode = self.code[pc];
            pc += 1;
            match opcode {
                op::STOP => {
                    return Ok(EvmOutcome {
                        return_data: Vec::new(),
                        stats,
                    })
                }
                op::ADD => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.wrapping_add(&b));
                }
                op::MUL => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.wrapping_mul(&b));
                }
                op::SUB => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.wrapping_sub(&b));
                }
                op::DIV => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.div_rem(&b).0);
                }
                op::SDIV => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.sdiv(&b));
                }
                op::MOD => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.div_rem(&b).1);
                }
                op::SMOD => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.srem(&b));
                }
                op::SIGNEXTEND => {
                    let b = pop!();
                    let x = pop!();
                    push!(x.signextend(&b));
                }
                op::LT => {
                    let a = pop!();
                    let b = pop!();
                    push!(bool_word(a.cmp_u(&b) == std::cmp::Ordering::Less));
                }
                op::GT => {
                    let a = pop!();
                    let b = pop!();
                    push!(bool_word(a.cmp_u(&b) == std::cmp::Ordering::Greater));
                }
                op::SLT => {
                    let a = pop!();
                    let b = pop!();
                    push!(bool_word(a.cmp_s(&b) == std::cmp::Ordering::Less));
                }
                op::SGT => {
                    let a = pop!();
                    let b = pop!();
                    push!(bool_word(a.cmp_s(&b) == std::cmp::Ordering::Greater));
                }
                op::EQ => {
                    let a = pop!();
                    let b = pop!();
                    push!(bool_word(a == b));
                }
                op::ISZERO => {
                    let a = pop!();
                    push!(bool_word(a.is_zero()));
                }
                op::AND => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.and(&b));
                }
                op::OR => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.or(&b));
                }
                op::XOR => {
                    let a = pop!();
                    let b = pop!();
                    push!(a.xor(&b));
                }
                op::NOT => {
                    let a = pop!();
                    push!(a.not());
                }
                op::BYTE => {
                    let i = pop!();
                    let x = pop!();
                    let idx = if i.fits_u64() {
                        i.low_u64() as usize
                    } else {
                        32
                    };
                    push!(U256::from_u64(x.byte(idx) as u64));
                }
                op::SHL => {
                    let s = pop!();
                    let v = pop!();
                    let sh = if s.fits_u64() {
                        s.low_u64() as usize
                    } else {
                        256
                    };
                    push!(v.shl(sh));
                }
                op::SHR => {
                    let s = pop!();
                    let v = pop!();
                    let sh = if s.fits_u64() {
                        s.low_u64() as usize
                    } else {
                        256
                    };
                    push!(v.shr(sh));
                }
                op::SAR => {
                    let s = pop!();
                    let v = pop!();
                    let sh = if s.fits_u64() {
                        s.low_u64() as usize
                    } else {
                        256
                    };
                    push!(v.sar(sh));
                }
                op::SHA3 => {
                    let off = pop!();
                    let len = pop!();
                    let (off, len) = (word_usize(&off)?, word_usize(&len)?);
                    self.expand(&mut memory, off, len)?;
                    stats.host_calls += 1;
                    stats.host_bytes += len as u64;
                    let digest = host.keccak256(&memory[off..off + len]);
                    push!(U256::from_be_bytes(&digest));
                }
                op::CALLER => push!(host.caller()),
                op::CALLDATALOAD => {
                    let off = pop!();
                    let off = word_usize(&off)?;
                    let mut word = [0u8; 32];
                    for (i, w) in word.iter_mut().enumerate() {
                        *w = calldata.get(off + i).copied().unwrap_or(0);
                    }
                    push!(U256::from_be_bytes(&word));
                }
                op::CALLDATASIZE => push!(U256::from_u64(calldata.len() as u64)),
                op::CALLDATACOPY => {
                    let dst = pop!();
                    let src = pop!();
                    let len = pop!();
                    let (dst, src, len) = (word_usize(&dst)?, word_usize(&src)?, word_usize(&len)?);
                    self.expand(&mut memory, dst, len)?;
                    for i in 0..len {
                        memory[dst + i] = calldata.get(src + i).copied().unwrap_or(0);
                    }
                }
                op::RETURNDATASIZE => push!(U256::from_u64(return_buf.len() as u64)),
                op::RETURNDATACOPY => {
                    let dst = pop!();
                    let src = pop!();
                    let len = pop!();
                    let (dst, src, len) = (word_usize(&dst)?, word_usize(&src)?, word_usize(&len)?);
                    self.expand(&mut memory, dst, len)?;
                    for i in 0..len {
                        memory[dst + i] = return_buf.get(src + i).copied().unwrap_or(0);
                    }
                }
                op::POP => {
                    pop!();
                }
                op::MLOAD => {
                    let off = pop!();
                    let off = word_usize(&off)?;
                    self.expand(&mut memory, off, 32)?;
                    let mut word = [0u8; 32];
                    word.copy_from_slice(&memory[off..off + 32]);
                    push!(U256::from_be_bytes(&word));
                }
                op::MSTORE => {
                    let off = pop!();
                    let val = pop!();
                    let off = word_usize(&off)?;
                    self.expand(&mut memory, off, 32)?;
                    memory[off..off + 32].copy_from_slice(&val.to_be_bytes());
                }
                op::MSTORE8 => {
                    let off = pop!();
                    let val = pop!();
                    let off = word_usize(&off)?;
                    self.expand(&mut memory, off, 1)?;
                    memory[off] = (val.low_u64() & 0xff) as u8;
                }
                op::SLOAD => {
                    let key = pop!();
                    stats.host_calls += 1;
                    stats.host_bytes += 64;
                    push!(host.sload(&key)?);
                }
                op::SSTORE => {
                    let key = pop!();
                    let val = pop!();
                    stats.host_calls += 1;
                    stats.host_bytes += 64;
                    host.sstore(&key, &val)?;
                }
                op::JUMP => {
                    let dst = pop!();
                    pc = self.checked_dest(&dst)?;
                }
                op::JUMPI => {
                    // EVM order: destination on top, condition beneath.
                    let dst = pop!();
                    let cond = pop!();
                    if !cond.is_zero() {
                        pc = self.checked_dest(&dst)?;
                    }
                }
                op::PC => push!(U256::from_u64(pc as u64 - 1)),
                op::JUMPDEST => {}
                0x60..=0x7f => {
                    let n = (opcode - op::PUSH1) as usize + 1;
                    let end = (pc + n).min(self.code.len());
                    let imm = &self.code[pc..end];
                    push!(U256::from_be_slice(imm));
                    pc += n;
                }
                0x80..=0x8f => {
                    let n = (opcode - op::DUP1) as usize + 1;
                    if stack.len() < n {
                        return Err(EvmTrap::StackUnderflow);
                    }
                    let v = stack[stack.len() - n];
                    push!(v);
                }
                0x90..=0x9f => {
                    let n = (opcode - op::SWAP1) as usize + 1;
                    if stack.len() < n + 1 {
                        return Err(EvmTrap::StackUnderflow);
                    }
                    let top = stack.len() - 1;
                    stack.swap(top, top - n);
                }
                op::LOG0 => {
                    let off = pop!();
                    let len = pop!();
                    let (off, len) = (word_usize(&off)?, word_usize(&len)?);
                    self.expand(&mut memory, off, len)?;
                    stats.host_calls += 1;
                    stats.host_bytes += len as u64;
                    host.log(&memory[off..off + len]);
                }
                op::CALL => {
                    // EVM order (top first): gas, addr, value, argsOff,
                    // argsLen, retOff, retLen.
                    let _gas = pop!();
                    let addr = pop!();
                    let _value = pop!();
                    let args_off = pop!();
                    let args_len = pop!();
                    let ret_off = pop!();
                    let ret_len = pop!();
                    let (args_off, args_len) = (word_usize(&args_off)?, word_usize(&args_len)?);
                    let (ret_off, ret_len) = (word_usize(&ret_off)?, word_usize(&ret_len)?);
                    self.expand(&mut memory, args_off, args_len)?;
                    let input = memory[args_off..args_off + args_len].to_vec();
                    stats.host_calls += 1;
                    stats.host_bytes += input.len() as u64;
                    // Precompile 0x02: SHA-256, as on Ethereum.
                    if addr == U256::from_u64(2) {
                        let digest = confide_crypto::sha256(&input).to_vec();
                        stats.host_bytes += 32;
                        self.expand(&mut memory, ret_off, ret_len)?;
                        let n = digest.len().min(ret_len);
                        memory[ret_off..ret_off + n].copy_from_slice(&digest[..n]);
                        return_buf = digest;
                        push!(U256::ONE);
                        continue;
                    }
                    match host.call_contract(&addr, &input) {
                        Ok(data) => {
                            stats.host_bytes += data.len() as u64;
                            self.expand(&mut memory, ret_off, ret_len)?;
                            let n = data.len().min(ret_len);
                            memory[ret_off..ret_off + n].copy_from_slice(&data[..n]);
                            return_buf = data;
                            push!(U256::ONE);
                        }
                        Err(_) => {
                            return_buf.clear();
                            push!(U256::ZERO);
                        }
                    }
                }
                op::SLOADB => {
                    // Pops (top first): key_off, key_len, dst_off, cap.
                    // Pushes the full value length, or -1 (as 2^256-1) when
                    // absent. Copies min(len, cap) bytes to dst_off.
                    let key_off = pop!();
                    let key_len = pop!();
                    let dst_off = pop!();
                    let cap = pop!();
                    let (key_off, key_len) = (word_usize(&key_off)?, word_usize(&key_len)?);
                    let (dst_off, cap) = (word_usize(&dst_off)?, word_usize(&cap)?);
                    self.expand(&mut memory, key_off, key_len)?;
                    let key = memory[key_off..key_off + key_len].to_vec();
                    stats.host_calls += 1;
                    match host.get_storage_bytes(&key)? {
                        Some(val) => {
                            stats.host_bytes += (key.len() + val.len()) as u64;
                            let n = val.len().min(cap);
                            self.expand(&mut memory, dst_off, n)?;
                            memory[dst_off..dst_off + n].copy_from_slice(&val[..n]);
                            push!(U256::from_u64(val.len() as u64));
                        }
                        None => {
                            stats.host_bytes += key.len() as u64;
                            push!(U256::MAX); // -1
                        }
                    }
                }
                op::SSTOREB => {
                    // Pops (top first): key_off, key_len, val_off, val_len.
                    let key_off = pop!();
                    let key_len = pop!();
                    let val_off = pop!();
                    let val_len = pop!();
                    let (key_off, key_len) = (word_usize(&key_off)?, word_usize(&key_len)?);
                    let (val_off, val_len) = (word_usize(&val_off)?, word_usize(&val_len)?);
                    self.expand(&mut memory, key_off, key_len)?;
                    self.expand(&mut memory, val_off, val_len)?;
                    let key = memory[key_off..key_off + key_len].to_vec();
                    let val = memory[val_off..val_off + val_len].to_vec();
                    stats.host_calls += 1;
                    stats.host_bytes += (key.len() + val.len()) as u64;
                    host.set_storage_bytes(&key, &val)?;
                }
                op::RETURN => {
                    let off = pop!();
                    let len = pop!();
                    let (off, len) = (word_usize(&off)?, word_usize(&len)?);
                    self.expand(&mut memory, off, len)?;
                    return Ok(EvmOutcome {
                        return_data: memory[off..off + len].to_vec(),
                        stats,
                    });
                }
                op::REVERT => {
                    let off = pop!();
                    let len = pop!();
                    let (off, len) = (word_usize(&off)?, word_usize(&len)?);
                    self.expand(&mut memory, off, len)?;
                    return Err(EvmTrap::Reverted(memory[off..off + len].to_vec()));
                }
                other => return Err(EvmTrap::InvalidOpcode(other)),
            }
        }
        // Fell off the end of code: implicit STOP.
        Ok(EvmOutcome {
            return_data: Vec::new(),
            stats,
        })
    }

    fn checked_dest(&self, dst: &U256) -> Result<usize, EvmTrap> {
        if !dst.fits_u64() {
            return Err(EvmTrap::BadJump(u64::MAX));
        }
        let d = dst.low_u64() as usize;
        if self.dests.contains_key(&d) {
            Ok(d)
        } else {
            Err(EvmTrap::BadJump(d as u64))
        }
    }

    fn expand(&self, memory: &mut Vec<u8>, off: usize, len: usize) -> Result<(), EvmTrap> {
        let end = off.checked_add(len).ok_or(EvmTrap::MemoryLimit)?;
        if end > self.config.max_memory {
            return Err(EvmTrap::MemoryLimit);
        }
        if end > memory.len() {
            // Word-aligned growth as on Ethereum.
            memory.resize(end.div_ceil(32) * 32, 0);
        }
        Ok(())
    }
}

fn bool_word(b: bool) -> U256 {
    if b {
        U256::ONE
    } else {
        U256::ZERO
    }
}

fn word_usize(v: &U256) -> Result<usize, EvmTrap> {
    if !v.fits_u64() || v.low_u64() > usize::MAX as u64 {
        return Err(EvmTrap::MemoryLimit);
    }
    Ok(v.low_u64() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::host::MockEvmHost;
    use crate::opcode as op;

    fn run(code: Vec<u8>, calldata: &[u8]) -> Result<EvmOutcome, EvmTrap> {
        let mut host = MockEvmHost::default();
        Evm::new(code, EvmConfig::default()).run(calldata, &mut host)
    }

    fn run_with(
        code: Vec<u8>,
        calldata: &[u8],
        host: &mut MockEvmHost,
    ) -> Result<EvmOutcome, EvmTrap> {
        Evm::new(code, EvmConfig::default()).run(calldata, host)
    }

    /// Return the top-of-stack value via MSTORE(0) + RETURN(0,32).
    fn ret_top(a: &mut Asm) {
        a.push_u64(0).op(op::MSTORE);
        a.push_u64(32).push_u64(0).op(op::RETURN);
    }

    fn word(out: &EvmOutcome) -> U256 {
        let mut w = [0u8; 32];
        w.copy_from_slice(&out.return_data);
        U256::from_be_bytes(&w)
    }

    #[test]
    fn add_mul_return() {
        let mut a = Asm::new();
        a.push_u64(7)
            .push_u64(5)
            .op(op::MUL)
            .push_u64(2)
            .op(op::ADD); // 5*7+2
        ret_top(&mut a);
        let out = run(a.finish(), &[]).unwrap();
        assert_eq!(word(&out), U256::from_u64(37));
    }

    #[test]
    fn stack_ops_dup_swap() {
        let mut a = Asm::new();
        a.push_u64(1).push_u64(2).dup(2).swap(1); // stack: 1 2 ... dup2→1, swap1 → 1 1 2? verify: [1,2] dup2 → [1,2,1]; swap1 → [1,1,2]
        a.op(op::SUB); // 1 - 2 ... wait EVM SUB pops a=top? EVM: a=pop, b=pop, push a-b? Actually stack[top]=2 is `a`... our impl: b=pop, a=pop, a-b.
        ret_top(&mut a);
        let out = run(a.finish(), &[]).unwrap();
        // Stack before SUB (top last): [1, 1, 2]; EVM SUB = top − second = 1.
        assert_eq!(word(&out), U256::from_u64(1));
    }

    #[test]
    fn conditional_jump_selects_branch() {
        // if calldata[0..32] != 0 return 1 else return 2
        let mut a = Asm::new();
        let then = a.label();
        a.push_u64(0).op(op::CALLDATALOAD);
        a.jumpi(then);
        a.push_u64(2);
        ret_top(&mut a);
        a.bind(then);
        a.push_u64(1);
        ret_top(&mut a);
        let code = a.finish();
        let mut arg = [0u8; 32];
        assert_eq!(word(&run(code.clone(), &arg).unwrap()), U256::from_u64(2));
        arg[31] = 1;
        assert_eq!(word(&run(code, &arg).unwrap()), U256::from_u64(1));
    }

    #[test]
    fn jump_to_non_jumpdest_traps() {
        let mut a = Asm::new();
        a.push_u64(0).op(op::JUMP);
        assert!(matches!(run(a.finish(), &[]), Err(EvmTrap::BadJump(0))));
    }

    #[test]
    fn loop_sum_1_to_100() {
        // memory[0] = i, memory[32] = acc — like compiled code would.
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.push_u64(1).push_u64(0).op(op::MSTORE);
        a.push_u64(0).push_u64(32).op(op::MSTORE);
        a.bind(top);
        // if i > 100 goto done
        a.push_u64(100).push_u64(0).op(op::MLOAD).op(op::GT); // i > 100
        a.jumpi(done);
        // acc += i
        a.push_u64(32)
            .op(op::MLOAD)
            .push_u64(0)
            .op(op::MLOAD)
            .op(op::ADD);
        a.push_u64(32).op(op::MSTORE);
        // i += 1
        a.push_u64(0)
            .op(op::MLOAD)
            .push_u64(1)
            .op(op::ADD)
            .push_u64(0)
            .op(op::MSTORE);
        a.jump(top);
        a.bind(done);
        a.push_u64(32).op(op::MLOAD);
        ret_top(&mut a);
        let out = run(a.finish(), &[]).unwrap();
        assert_eq!(word(&out), U256::from_u64(5050));
        // The 256-bit loop costs plenty of instructions — that's the point.
        assert!(out.stats.instret > 1000);
    }

    #[test]
    fn storage_roundtrip_and_counters() {
        let mut a = Asm::new();
        a.push_u64(0xbeef).push_u64(1).op(op::SSTORE);
        a.push_u64(1).op(op::SLOAD);
        ret_top(&mut a);
        let mut host = MockEvmHost::default();
        let out = run_with(a.finish(), &[], &mut host).unwrap();
        assert_eq!(word(&out), U256::from_u64(0xbeef));
        assert_eq!(out.stats.host_calls, 2);
    }

    #[test]
    fn sha3_hashes_memory() {
        let mut a = Asm::new();
        // memory[0..3] = "abc" via MSTORE8
        a.push_u64('a' as u64).push_u64(0).op(op::MSTORE8);
        a.push_u64('b' as u64).push_u64(1).op(op::MSTORE8);
        a.push_u64('c' as u64).push_u64(2).op(op::MSTORE8);
        a.push_u64(3).push_u64(0).op(op::SHA3);
        ret_top(&mut a);
        let out = run(a.finish(), &[]).unwrap();
        assert_eq!(
            confide_crypto::hex(&out.return_data),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn revert_carries_payload() {
        let mut a = Asm::new();
        a.push_u64(0xff).push_u64(0).op(op::MSTORE8);
        a.push_u64(1).push_u64(0).op(op::REVERT);
        assert_eq!(
            run(a.finish(), &[]).unwrap_err(),
            EvmTrap::Reverted(vec![0xff])
        );
    }

    #[test]
    fn calldata_copy_and_size() {
        let mut a = Asm::new();
        a.op(op::CALLDATASIZE); // len
        a.push_u64(0); // src
        a.push_u64(64); // dst
                        // stack now [len, src, dst] top=dst: CALLDATACOPY pops len, src, dst in our impl order
        a.op(op::CALLDATACOPY);
        a.op(op::CALLDATASIZE).push_u64(64).op(op::RETURN);
        let out = run(a.finish(), b"payload!").unwrap();
        assert_eq!(out.return_data, b"payload!");
    }

    #[test]
    fn out_of_fuel() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jump(top);
        let code = a.finish();
        let mut host = MockEvmHost::default();
        let evm = Evm::new(
            code,
            EvmConfig {
                fuel: 100,
                ..EvmConfig::default()
            },
        );
        assert_eq!(evm.run(&[], &mut host).unwrap_err(), EvmTrap::OutOfFuel);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut a = Asm::new();
        a.push_u64(1).push(U256::from_u64(1 << 40)).op(op::MSTORE);
        assert_eq!(run(a.finish(), &[]).unwrap_err(), EvmTrap::MemoryLimit);
    }

    #[test]
    fn invalid_opcode_traps() {
        assert_eq!(
            run(vec![0xef], &[]).unwrap_err(),
            EvmTrap::InvalidOpcode(0xef)
        );
    }

    #[test]
    fn stack_overflow_at_1024() {
        let mut code = Vec::new();
        let mut a = Asm::new();
        a.push_u64(1);
        let push1 = a.finish();
        for _ in 0..1030 {
            code.extend_from_slice(&push1);
        }
        assert_eq!(run(code, &[]).unwrap_err(), EvmTrap::StackOverflow);
    }

    #[test]
    fn implicit_stop_and_explicit_stop() {
        assert!(run(vec![], &[]).unwrap().return_data.is_empty());
        assert!(run(vec![op::STOP], &[]).unwrap().return_data.is_empty());
    }

    #[test]
    fn caller_exposed() {
        let mut a = Asm::new();
        a.op(op::CALLER);
        ret_top(&mut a);
        let mut host = MockEvmHost {
            caller: U256::from_u64(0xabc),
            ..Default::default()
        };
        let out = run_with(a.finish(), &[], &mut host).unwrap();
        assert_eq!(word(&out), U256::from_u64(0xabc));
    }
}
