//! 256-bit unsigned integers: the EVM word, built from four u64 limbs.

/// A 256-bit unsigned integer, little-endian limb order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "0x{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// All bits set.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// From a u64.
    pub const fn from_u64(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }

    /// From a u128.
    pub const fn from_u128(v: u128) -> U256 {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Low 64 bits.
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Low 128 bits.
    pub const fn low_u128(&self) -> u128 {
        self.0[0] as u128 | ((self.0[1] as u128) << 64)
    }

    /// True if the value fits in u64.
    pub fn fits_u64(&self) -> bool {
        self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Parse from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            *limb = u64::from_be_bytes(w);
        }
        U256(limbs)
    }

    /// Serialize to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// From a big-endian slice of at most 32 bytes (EVM PUSH semantics).
    pub fn from_be_slice(bytes: &[u8]) -> U256 {
        debug_assert!(bytes.len() <= 32);
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        U256::from_be_bytes(&buf)
    }

    /// Wrapping addition.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *slot = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        U256(out)
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *slot = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        U256(out)
    }

    /// Wrapping multiplication (low 256 bits of the product).
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 - i {
                let cur = out[i + j] as u128 + self.0[i] as u128 * rhs.0[j] as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        U256(out)
    }

    /// Quotient and remainder. Division by zero yields (0, 0), matching EVM.
    pub fn div_rem(&self, rhs: &U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if rhs.fits_u64() && self.fits_u64() {
            let (q, r) = (self.0[0] / rhs.0[0], self.0[0] % rhs.0[0]);
            return (U256::from_u64(q), U256::from_u64(r));
        }
        // Binary long division, MSB-first.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        for bit in (0..256).rev() {
            remainder = remainder.shl(1);
            if self.bit(bit) {
                remainder.0[0] |= 1;
            }
            if remainder.cmp_u(rhs) != std::cmp::Ordering::Less {
                remainder = remainder.wrapping_sub(rhs);
                quotient.0[bit / 64] |= 1 << (bit % 64);
            }
        }
        (quotient, remainder)
    }

    /// Bit `n` (0 = LSB).
    pub fn bit(&self, n: usize) -> bool {
        (self.0[n / 64] >> (n % 64)) & 1 == 1
    }

    /// Unsigned comparison.
    pub fn cmp_u(&self, rhs: &U256) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&rhs.0[i]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Signed comparison (two's complement over 256 bits).
    pub fn cmp_s(&self, rhs: &U256) -> std::cmp::Ordering {
        let a_neg = self.bit(255);
        let b_neg = rhs.bit(255);
        match (a_neg, b_neg) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => self.cmp_u(rhs),
        }
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Signed division, EVM SDIV semantics (trunc toward zero; /0 = 0).
    pub fn sdiv(&self, rhs: &U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let a_neg = self.bit(255);
        let b_neg = rhs.bit(255);
        let a = if a_neg { self.neg() } else { *self };
        let b = if b_neg { rhs.neg() } else { *rhs };
        let (q, _) = a.div_rem(&b);
        if a_neg != b_neg {
            q.neg()
        } else {
            q
        }
    }

    /// Signed remainder, EVM SMOD semantics (sign of dividend; %0 = 0).
    pub fn srem(&self, rhs: &U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let a_neg = self.bit(255);
        let a = if a_neg { self.neg() } else { *self };
        let b = if rhs.bit(255) { rhs.neg() } else { *rhs };
        let (_, r) = a.div_rem(&b);
        if a_neg {
            r.neg()
        } else {
            r
        }
    }

    /// Bitwise and.
    pub fn and(&self, rhs: &U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }

    /// Bitwise or.
    pub fn or(&self, rhs: &U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }

    /// Bitwise xor.
    pub fn xor(&self, rhs: &U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }

    /// Bitwise not.
    pub fn not(&self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    /// Left shift; shifts ≥ 256 produce zero.
    pub fn shl(&self, shift: usize) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            if i >= limb_shift {
                out[i] = self.0[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
        }
        U256(out)
    }

    /// Logical right shift; shifts ≥ 256 produce zero.
    pub fn shr(&self, shift: usize) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, slot) in out.iter_mut().enumerate() {
            if i + limb_shift < 4 {
                *slot = self.0[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < 4 {
                    *slot |= self.0[i + limb_shift + 1] << (64 - bit_shift);
                }
            }
        }
        U256(out)
    }

    /// Arithmetic right shift (sign-extending), EVM SAR.
    pub fn sar(&self, shift: usize) -> U256 {
        let negative = self.bit(255);
        if shift >= 256 {
            return if negative { U256::MAX } else { U256::ZERO };
        }
        let logical = self.shr(shift);
        if !negative || shift == 0 {
            return logical;
        }
        // Fill the vacated top bits with ones.
        let fill = U256::MAX.shl(256 - shift);
        logical.or(&fill)
    }

    /// EVM BYTE opcode: the `i`-th byte from the big-endian representation
    /// (0 = most significant); ≥32 yields 0.
    pub fn byte(&self, i: usize) -> u8 {
        if i >= 32 {
            return 0;
        }
        self.to_be_bytes()[i]
    }

    /// EVM SIGNEXTEND: treat `self` as a `(b+1)`-byte two's-complement
    /// value and sign-extend it to 256 bits. `b` counts bytes from the
    /// least-significant end; `b >= 31` (including values past u64) is the
    /// identity, matching the yellow paper.
    pub fn signextend(&self, b: &U256) -> U256 {
        if !b.fits_u64() || b.0[0] >= 31 {
            return *self;
        }
        let sign_bit = 8 * (b.0[0] as usize + 1) - 1;
        let mask = U256::MAX.shl(sign_bit + 1); // bits above the sign bit
        if self.bit(sign_bit) {
            self.or(&mask)
        } else {
            self.and(&mask.not())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn be_bytes_round_trip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        let mut one = [0u8; 32];
        one[31] = 1;
        assert_eq!(U256::from_be_bytes(&one), U256::ONE);
    }

    #[test]
    fn from_be_slice_pads_left() {
        assert_eq!(U256::from_be_slice(&[0x12, 0x34]), U256::from_u64(0x1234));
        assert_eq!(U256::from_be_slice(&[]), U256::ZERO);
    }

    #[test]
    fn add_sub_carries_across_limbs() {
        let max_low = U256([u64::MAX, 0, 0, 0]);
        let sum = max_low.wrapping_add(&U256::ONE);
        assert_eq!(sum, U256([0, 1, 0, 0]));
        assert_eq!(sum.wrapping_sub(&U256::ONE), max_low);
        // Full wrap-around.
        assert_eq!(U256::MAX.wrapping_add(&U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_sub(&U256::ONE), U256::MAX);
    }

    #[test]
    fn mul_crosses_limbs() {
        let a = U256::from_u128(u128::MAX);
        let b = U256::from_u64(2);
        assert_eq!(a.wrapping_mul(&b), U256([u64::MAX - 1, u64::MAX, 1, 0]));
    }

    #[test]
    fn div_rem_basics() {
        let (q, r) = U256::from_u64(100).div_rem(&U256::from_u64(7));
        assert_eq!((q.low_u64(), r.low_u64()), (14, 2));
        // Division by zero is (0, 0) per EVM.
        let (q, r) = U256::from_u64(5).div_rem(&U256::ZERO);
        assert!(q.is_zero() && r.is_zero());
        // Wide dividend.
        let big = U256([0, 0, 0, 1]); // 2^192
        let (q, r) = big.div_rem(&U256::from_u64(2));
        assert_eq!(q, U256([0, 0, 1 << 63, 0]));
        assert!(r.is_zero());
    }

    #[test]
    fn signed_ops_match_evm_semantics() {
        let minus_7 = U256::from_u64(7).neg();
        let two = U256::from_u64(2);
        assert_eq!(minus_7.sdiv(&two), U256::from_u64(3).neg()); // trunc toward 0
        assert_eq!(minus_7.srem(&two), U256::ONE.neg()); // sign of dividend
        assert_eq!(minus_7.cmp_s(&two), Ordering::Less);
        assert_eq!(two.cmp_s(&minus_7), Ordering::Greater);
        assert_eq!(minus_7.cmp_u(&two), Ordering::Greater); // unsigned view
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one.shl(64), U256([0, 1, 0, 0]));
        assert_eq!(one.shl(255).shr(255), one);
        assert_eq!(one.shl(256), U256::ZERO);
        assert_eq!(U256::MAX.shr(192), U256([u64::MAX, 0, 0, 0]));
        // SAR on a negative number keeps the sign.
        let minus_8 = U256::from_u64(8).neg();
        assert_eq!(minus_8.sar(2), U256::from_u64(2).neg());
        assert_eq!(minus_8.sar(300), U256::MAX);
        assert_eq!(U256::from_u64(8).sar(2), U256::from_u64(2));
    }

    #[test]
    fn signextend_matches_evm_semantics() {
        // 0xff as a 1-byte value is -1.
        assert_eq!(
            U256::from_u64(0xff).signextend(&U256::ZERO),
            U256::ONE.neg()
        );
        // 0x7f stays positive.
        assert_eq!(
            U256::from_u64(0x7f).signextend(&U256::ZERO),
            U256::from_u64(0x7f)
        );
        // Upper garbage is cleared when the sign bit is 0.
        assert_eq!(U256::from_u64(0xaa01).signextend(&U256::ZERO), U256::ONE);
        // b >= 31 is the identity, even for huge b.
        let x = U256([1, 2, 3, 4]);
        assert_eq!(x.signextend(&U256::from_u64(31)), x);
        assert_eq!(x.signextend(&U256::MAX), x);
    }

    #[test]
    fn byte_indexing_is_big_endian() {
        let v = U256::from_u64(0x0102);
        assert_eq!(v.byte(31), 0x02);
        assert_eq!(v.byte(30), 0x01);
        assert_eq!(v.byte(0), 0);
        assert_eq!(v.byte(99), 0);
    }

    /// Seeded DRBG helpers replacing the former proptest strategies.
    fn rng(tag: u64) -> confide_crypto::HmacDrbg {
        confide_crypto::HmacDrbg::from_u64(0x7525_6000 | tag)
    }

    fn gen_limbs(rng: &mut confide_crypto::HmacDrbg) -> [u64; 4] {
        [rng.gen_u64(), rng.gen_u64(), rng.gen_u64(), rng.gen_u64()]
    }

    #[test]
    fn add_matches_u128() {
        let mut r = rng(1);
        for _ in 0..256 {
            let (a, b) = (r.gen_u64(), r.gen_u64());
            let sum = U256::from_u64(a).wrapping_add(&U256::from_u64(b));
            assert_eq!(sum.low_u128(), a as u128 + b as u128);
        }
    }

    #[test]
    fn mul_matches_u128() {
        let mut r = rng(2);
        for _ in 0..256 {
            let (a, b) = (r.gen_u64(), r.gen_u64());
            let prod = U256::from_u64(a).wrapping_mul(&U256::from_u64(b));
            assert_eq!(prod.low_u128(), a as u128 * b as u128);
        }
    }

    #[test]
    fn div_rem_invariant() {
        let mut rg = rng(3);
        for _ in 0..256 {
            let a = (rg.gen_u64() as u128) << 64 | rg.gen_u64() as u128;
            let b = rg.gen_u64().max(1);
            let (q, r) = U256::from_u128(a).div_rem(&U256::from_u64(b));
            // a == q*b + r and r < b
            let recomposed = q.wrapping_mul(&U256::from_u64(b)).wrapping_add(&r);
            assert_eq!(recomposed, U256::from_u128(a));
            assert!(r.cmp_u(&U256::from_u64(b)) == Ordering::Less);
        }
    }

    #[test]
    fn sub_add_round_trip() {
        let mut r = rng(4);
        for _ in 0..256 {
            let x = U256(gen_limbs(&mut r));
            let y = U256(gen_limbs(&mut r));
            assert_eq!(x.wrapping_sub(&y).wrapping_add(&y), x);
        }
    }

    #[test]
    fn shl_shr_round_trip_when_no_loss() {
        let mut r = rng(5);
        for _ in 0..256 {
            let x = U256::from_u64(r.gen_u64());
            let s = r.gen_range(192) as usize;
            assert_eq!(x.shl(s).shr(s), x);
        }
    }

    #[test]
    fn bytes_round_trip_random() {
        let mut r = rng(6);
        for _ in 0..256 {
            let x = U256(gen_limbs(&mut r));
            assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
        }
    }

    #[test]
    fn not_is_involution() {
        let mut r = rng(7);
        for _ in 0..256 {
            let x = U256(gen_limbs(&mut r));
            assert_eq!(x.not().not(), x);
            assert_eq!(x.xor(&x), U256::ZERO);
        }
    }
}
