//! # confide-contracts
//!
//! The paper's evaluation workloads (§6), written in CCL and compiled to
//! both CONFIDE-VM and EVM bytecode:
//!
//! * [`synthetic`] — the four §6.1 kernels behind Figure 10: string
//!   concatenation (35-KV JSON + 10-byte ID), 4 KB e-notes depository,
//!   100× SHA-256/Keccak crypto hashing, and ~60-KV JSON parsing.
//! * [`abs`] — the Asset-Backed-Securitization transfer contract of
//!   Fig. 9 (authentication → parsing → validation → storage), in two
//!   encodings: JSON (the pre-OPT2 baseline, ~10 attributes parsed by
//!   interpreted code) and a Flatbuffers-style fixed-offset binary layout
//!   (OPT2).
//! * [`scf`] — the Supply-Chain-Finance "Account Receivable" contract
//!   suite of Fig. 8: Gateway → Manager → service contracts (ArAccount,
//!   ArIssue, ArTransfer, ArClear), whose typical transfer flow produces
//!   the Table 1 operation mix (~31 contract calls, ~150 storage reads).
//!
//! Each module exposes the CCL source, compiled-code helpers, input
//! generators with the paper's stated payload shapes, and deployment
//! helpers against a `confide-core` engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abs;
pub mod scf;
pub mod synthetic;

/// Render a 32-byte address as a CCL byte-string literal (`b"\x01..."`).
pub fn ccl_addr_literal(addr: &[u8; 32]) -> String {
    let mut s = String::with_capacity(4 + 32 * 4);
    s.push_str("b\"");
    for b in addr {
        s.push_str(&format!("\\x{b:02x}"));
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_literal_round_trips_through_ccl() {
        let addr = [0xab; 32];
        let lit = ccl_addr_literal(&addr);
        let src = format!("export fn main() {{ ret({lit}); }}");
        let code = confide_lang::build_vm(&src).unwrap();
        let vm = confide_vm::Vm::from_module(
            confide_vm::Module::decode(&code).unwrap(),
            confide_vm::ExecConfig::default(),
        );
        let mut host = confide_vm::MockHost::default();
        let mut mem = Vec::new();
        let out = vm.invoke("main", &[], &mut host, &mut mem).unwrap();
        assert_eq!(out.return_data, addr);
    }
}
