//! The four synthetic workloads of §6.1 (Figure 10).

use confide_crypto::HmacDrbg;

/// (1) **String Concatenation** — "concatenates several strings into one.
/// The parameters are JSON strings containing 35 key-values and a 10-bytes
/// length ID string, and are joined together for later processing."
pub const STRING_CONCAT_SRC: &str = r#"
export fn main() {
    let in_: bytes = input();
    // Input layout: 10-byte ID, then the JSON document.
    let id: bytes = slice(in_, 0, 10);
    let json: bytes = slice(in_, 10, len(in_) - 10);
    // Join id + json + a framing suffix for later processing.
    let joined: bytes = concat3(id, b"|", json);
    let framed: bytes = concat3(b"{\"record\":\"", joined, b"\"}");
    storage_set(concat(b"rec:", id), framed);
    ret(itoa(len(framed)));
}
"#;

/// (2) **E-notes Depository (4 KB)** — "receiving a 4k bytes string with an
/// ID, and map the E-notes to this ID."
pub const ENOTES_SRC: &str = r#"
export fn main() {
    let in_: bytes = input();
    let id: bytes = slice(in_, 0, 10);
    let note: bytes = slice(in_, 10, len(in_) - 10);
    // Integrity fingerprint + depository mapping.
    let digest: bytes = sha256(note);
    storage_set(concat(b"enote:", id), note);
    storage_set(concat(b"digest:", id), to_hex(digest));
    ret(to_hex(digest));
}
"#;

/// (3) **Crypto Hash** — "SHA256 and Keccak are being performed 100 times".
pub const CRYPTO_HASH_SRC: &str = r#"
export fn main() {
    let data: bytes = input();
    let i: int = 0;
    let acc: bytes = data;
    while (i < 100) {
        acc = sha256(acc);
        acc = keccak256(acc);
        i = i + 1;
    }
    ret(to_hex(acc));
}
"#;

/// (4) **JSON parsing** — "The JSON string is about 60 key-values … The
/// platform will parse the JSON string to extract information in the
/// request such as loan info, bank info, and so on."
pub const JSON_PARSE_SRC: &str = r#"
export fn main() {
    let j: bytes = input();
    let loan: bytes = json_get(j, b"loan_id");
    let bank: bytes = json_get(j, b"bank_name");
    let amount: int = json_get_int(j, b"amount");
    let rate: int = json_get_int(j, b"rate_bps");
    let borrower: bytes = json_get(j, b"borrower");
    let term: int = json_get_int(j, b"term_months");
    let status: bytes = json_get(j, b"k29");
    let interest: int = amount * rate * term / 120000;
    let summary: bytes = concat3(
        concat3(loan, b"/", bank),
        b"/",
        concat3(borrower, b"/", itoa(interest))
    );
    storage_set(concat(b"loan:", loan), summary);
    ret(concat(summary, status));
}
"#;

/// Names for reporting, paired with sources.
pub const ALL: [(&str, &str); 4] = [
    ("String Concatenation", STRING_CONCAT_SRC),
    ("E-notes Depository(4KB)", ENOTES_SRC),
    ("Crypto Hash", CRYPTO_HASH_SRC),
    ("JSON Parse", JSON_PARSE_SRC),
];

/// Input for workload (1): 10-byte ID followed by a 35-key JSON document.
pub fn string_concat_input(rng: &mut HmacDrbg) -> Vec<u8> {
    let mut input = id10(rng);
    input.extend_from_slice(&json_document(35, rng));
    input
}

/// Input for workload (2): 10-byte ID followed by 4 KB of note payload.
pub fn enotes_input(rng: &mut HmacDrbg) -> Vec<u8> {
    let mut input = id10(rng);
    let mut note = vec![0u8; 4096];
    rng.fill(&mut note);
    // Keep it printable-ish (an invoice-like document).
    for b in note.iter_mut() {
        *b = b' ' + (*b % 94);
    }
    input.extend_from_slice(&note);
    input
}

/// Input for workload (3): a 64-byte seed to hash repeatedly.
pub fn crypto_hash_input(rng: &mut HmacDrbg) -> Vec<u8> {
    let mut seed = vec![0u8; 64];
    rng.fill(&mut seed);
    seed
}

/// Input for workload (4): a ~60-key JSON request with the named fields
/// the contract extracts.
pub fn json_parse_input(rng: &mut HmacDrbg) -> Vec<u8> {
    let mut doc = String::with_capacity(2048);
    doc.push('{');
    doc.push_str(&format!(
        "\"loan_id\":\"L{:08}\",\"bank_name\":\"bank-{}\",\"amount\":{},\
         \"rate_bps\":{},\"borrower\":\"corp-{}\",\"term_months\":{}",
        rng.gen_range(100_000_000),
        rng.gen_range(50),
        10_000 + rng.gen_range(1_000_000),
        200 + rng.gen_range(600),
        rng.gen_range(10_000),
        6 + rng.gen_range(54),
    ));
    for k in 0..54 {
        doc.push_str(&format!(",\"k{k}\":\"v{}\"", rng.gen_range(100000)));
    }
    doc.push('}');
    doc.into_bytes()
}

fn id10(rng: &mut HmacDrbg) -> Vec<u8> {
    format!("ID{:08}", rng.gen_range(100_000_000)).into_bytes()
}

/// Convenience: the input generator for workload index `i` (order of
/// [`ALL`]).
pub fn input_for(i: usize, rng: &mut HmacDrbg) -> Vec<u8> {
    match i {
        0 => string_concat_input(rng),
        1 => enotes_input(rng),
        2 => crypto_hash_input(rng),
        3 => json_parse_input(rng),
        _ => panic!("workload index out of range"),
    }
}

/// A 35- or 60-key JSON document generator.
pub fn json_document(keys: usize, rng: &mut HmacDrbg) -> Vec<u8> {
    let mut doc = String::with_capacity(keys * 18 + 2);
    doc.push('{');
    for k in 0..keys {
        if k > 0 {
            doc.push(',');
        }
        doc.push_str(&format!("\"key{k:02}\":\"val{}\"", rng.gen_range(100000)));
    }
    doc.push('}');
    doc.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_evm::{Evm, EvmConfig, MockEvmHost};
    use confide_vm::{ExecConfig, MockHost, Module, Vm};

    fn run_vm(src: &str, input: &[u8]) -> (Vec<u8>, u64) {
        let code = confide_lang::build_vm(src).unwrap();
        let vm = Vm::from_module(Module::decode(&code).unwrap(), ExecConfig::default());
        let mut host = MockHost {
            input: input.to_vec(),
            ..MockHost::default()
        };
        let mut mem = Vec::new();
        let out = vm.invoke("main", &[], &mut host, &mut mem).unwrap();
        (out.return_data, out.stats.instret)
    }

    fn run_evm(src: &str, input: &[u8]) -> (Vec<u8>, u64) {
        let code = confide_lang::build_evm(src).unwrap();
        let evm = Evm::new(code, EvmConfig::default());
        let mut host = MockEvmHost::default();
        let out = evm
            .run(&confide_lang::evm_calldata("main", input), &mut host)
            .unwrap();
        (out.return_data, out.stats.instret)
    }

    #[test]
    fn all_workloads_run_on_both_vms_with_same_results() {
        let mut rng = HmacDrbg::from_u64(42);
        for (i, (name, src)) in ALL.iter().enumerate() {
            let input = input_for(i, &mut rng);
            let (vm_out, vm_instrs) = run_vm(src, &input);
            let (evm_out, evm_instrs) = run_evm(src, &input);
            assert_eq!(vm_out, evm_out, "{name}: outputs diverge");
            assert!(!vm_out.is_empty(), "{name}: empty result");
            // The architectural gap Figure 10 shows: the EVM retires far
            // more dispatch work for the same logical program.
            assert!(
                evm_instrs > vm_instrs,
                "{name}: evm {evm_instrs} vs vm {vm_instrs}"
            );
        }
    }

    #[test]
    fn crypto_hash_chains_100_rounds() {
        // Independent reference computation.
        let input = b"fixed seed".to_vec();
        let mut acc = input.clone();
        for _ in 0..100 {
            acc = confide_crypto::sha256(&acc).to_vec();
            acc = confide_crypto::keccak256(&acc).to_vec();
        }
        let (out, _) = run_vm(CRYPTO_HASH_SRC, &input);
        assert_eq!(out, confide_crypto::hex(&acc).into_bytes());
    }

    #[test]
    fn input_shapes_match_paper_parameters() {
        let mut rng = HmacDrbg::from_u64(1);
        let sc = string_concat_input(&mut rng);
        // 10-byte ID + 35 KV JSON.
        assert_eq!(&sc[..2], b"ID");
        assert_eq!(sc[10], b'{');
        let kv_count = sc.iter().filter(|&&b| b == b':').count();
        assert_eq!(kv_count, 35);

        let en = enotes_input(&mut rng);
        assert_eq!(en.len(), 10 + 4096);

        let jp = json_parse_input(&mut rng);
        let kv_count = jp.iter().filter(|&&b| b == b':').count();
        assert_eq!(kv_count, 60);
    }

    #[test]
    fn enotes_persists_note_under_id() {
        let mut rng = HmacDrbg::from_u64(2);
        let input = enotes_input(&mut rng);
        let code = confide_lang::build_vm(ENOTES_SRC).unwrap();
        let vm = Vm::from_module(Module::decode(&code).unwrap(), ExecConfig::default());
        let mut host = MockHost {
            input: input.clone(),
            ..MockHost::default()
        };
        let mut mem = Vec::new();
        vm.invoke("main", &[], &mut host, &mut mem).unwrap();
        let key = [b"enote:".as_slice(), &input[..10]].concat();
        assert_eq!(host.storage[&key], input[10..].to_vec());
    }

    #[test]
    fn json_parse_extracts_and_computes() {
        let input = br#"{"loan_id":"L1","bank_name":"b","amount":120000,"rate_bps":100,"borrower":"c","term_months":12,"k29":"ok"}"#;
        let (out, _) = run_vm(JSON_PARSE_SRC, input);
        // interest = 120000*100*12/120000 = 1200
        assert_eq!(out, b"L1/b/c/1200ok");
    }
}
