//! The SCF-AR (Supply Chain Finance on Account Receivables) contract
//! suite of Fig. 8: a hierarchical design where "an AR transaction starts
//! at calling a Gateway contract and further to a Manager contract. After
//! initial parameter parsing, the Manager contract dispatches the call to
//! different service contracts."
//!
//! The typical asset-transfer flow is tuned to reproduce Table 1's
//! operation mix: ~31 contract calls (direct + indirect), ~150 GetStorage
//! operations and ~9 SetStorage operations.

use crate::ccl_addr_literal;
use confide_core::context::ExecContext;
use confide_core::engine::{Engine, VmKind};
use confide_storage::versioned::StateDb;

/// Fixed addresses of the suite's contracts.
#[derive(Debug, Clone, Copy)]
pub struct ScfAddresses {
    /// Entry point.
    pub gateway: [u8; 32],
    /// Dispatcher.
    pub manager: [u8; 32],
    /// Account service.
    pub ar_account: [u8; 32],
    /// Asset issuing/custody service.
    pub ar_issue: [u8; 32],
    /// Transfer service.
    pub ar_transfer: [u8; 32],
    /// Clearing service.
    pub ar_clear: [u8; 32],
}

impl Default for ScfAddresses {
    fn default() -> Self {
        ScfAddresses {
            gateway: [0x10; 32],
            manager: [0x11; 32],
            ar_account: [0x12; 32],
            ar_issue: [0x13; 32],
            ar_transfer: [0x14; 32],
            ar_clear: [0x15; 32],
        }
    }
}

/// Gateway: schema/enable checks, then forward to the Manager.
pub fn gateway_src(a: &ScfAddresses) -> String {
    let manager = ccl_addr_literal(&a.manager);
    format!(
        r#"

// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {{
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) {{ return 0; }}
    while (w < 3500) {{
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }}
    return acc;
}}

export fn main() {{
    let req: bytes = input();
    let warm: int = ctx_deserialize(req);
    let op: bytes = json_get(req, b"op");
    if (len(op) == 0) {{ ret(b"ERR:missing-op"); return; }}
    let enabled: bytes = storage_get(b"cfg:enabled");
    let version: bytes = storage_get(b"cfg:version");
    let tenant: bytes = storage_get(b"cfg:tenant");
    if (eq_bytes(enabled, b"1") == 0) {{ ret(b"ERR:gateway-disabled"); return; }}
    ret(call({manager}, req));
}}
export fn genesis() {{
    storage_set(b"cfg:enabled", b"1");
    storage_set(b"cfg:version", b"2.4");
    storage_set(b"cfg:tenant", b"duo-chain");
    ret(b"ok");
}}
"#
    )
}

/// Manager: parameter parsing + dispatch to service contracts.
pub fn manager_src(a: &ScfAddresses) -> String {
    let transfer = ccl_addr_literal(&a.ar_transfer);
    let account = ccl_addr_literal(&a.ar_account);
    let issue = ccl_addr_literal(&a.ar_issue);
    let clear = ccl_addr_literal(&a.ar_clear);
    format!(
        r#"

// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {{
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) {{ return 0; }}
    while (w < 3500) {{
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }}
    return acc;
}}

export fn main() {{
    let req: bytes = input();
    let warm: int = ctx_deserialize(req);
    let op: bytes = json_get(req, b"op");
    let quota: bytes = storage_get(b"cfg:quota");
    let policy: bytes = storage_get(b"cfg:policy");
    if (eq_bytes(op, b"transfer") == 1) {{
        let pre: bytes = call({transfer}, concat(b"precheck|", req));
        if (eq_bytes(pre, b"1") == 0) {{ ret(concat(b"ERR:precheck:", pre)); return; }}
        let result: bytes = call({transfer}, concat(b"execute|", req));
        let hint: bytes = call({clear}, b"settle_hint|x");
        ret(result);
        return;
    }}
    if (eq_bytes(op, b"create_account") == 1) {{
        ret(call({account}, concat(b"create|", req)));
        return;
    }}
    if (eq_bytes(op, b"issue") == 1) {{
        ret(call({issue}, concat(b"issue|", req)));
        return;
    }}
    ret(b"ERR:unknown-op");
}}
export fn genesis() {{
    storage_set(b"cfg:quota", b"1000000");
    storage_set(b"cfg:policy", b"strict");
    ret(b"ok");
}}
"#
    )
}

/// ArAccount: account records (status/org/type/kyc/risk/limit/balance).
pub fn ar_account_src(a: &ScfAddresses) -> String {
    let clear = ccl_addr_literal(&a.ar_clear);
    format!(
        r#"
fn field(acct: bytes, name: bytes) -> bytes {{
    return storage_get(concat3(b"acct:", acct, concat(b":", name)));
}}


// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {{
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) {{ return 0; }}
    while (w < 3500) {{
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }}
    return acc;
}}

export fn main() {{
    let in_: bytes = input();
    let warm: int = ctx_deserialize(in_);
    let p: int = find(in_, b"|", 0);
    let op: bytes = slice(in_, 0, p);
    let arg: bytes = slice(in_, p + 1, len(in_) - p - 1);
    if (eq_bytes(op, b"check") == 1) {{
        let status: bytes = field(arg, b"status");
        let org: bytes = field(arg, b"org");
        let typ: bytes = field(arg, b"type");
        let opened: bytes = field(arg, b"opened");
        let region: bytes = field(arg, b"region");
        if (eq_bytes(status, b"active") == 0) {{ ret(b"0"); return; }}
        if (len(org) == 0 || len(typ) == 0) {{ ret(b"0"); return; }}
        ret(b"1");
        return;
    }}
    if (eq_bytes(op, b"kyc") == 1) {{
        let kyc: bytes = field(arg, b"kyc");
        let risk: bytes = field(arg, b"risk");
        let sanctions: bytes = field(arg, b"sanctions");
        if (eq_bytes(kyc, b"passed") == 0) {{ ret(b"0"); return; }}
        if (eq_bytes(sanctions, b"clear") == 0) {{ ret(b"0"); return; }}
        ret(b"1");
        return;
    }}
    if (eq_bytes(op, b"limit") == 1) {{
        let lim: int = atoi(field(arg, b"limit"));
        let used: int = atoi(field(arg, b"used"));
        ret(itoa(lim - used));
        return;
    }}
    if (eq_bytes(op, b"exists") == 1) {{
        let status: bytes = field(arg, b"status");
        if (len(status) == 0) {{ ret(b"0"); }} else {{ ret(b"1"); }}
        return;
    }}
    if (eq_bytes(op, b"debit") == 1 || eq_bytes(op, b"credit") == 1) {{
        let q: int = find(arg, b"|", 0);
        let acct: bytes = slice(arg, 0, q);
        let amt: int = atoi(slice(arg, q + 1, len(arg) - q - 1));
        let bal_key: bytes = concat3(b"acct:", acct, b":balance");
        let bal: int = atoi(storage_get(bal_key));
        let floor: bytes = field(acct, b"floor");
        if (eq_bytes(op, b"debit") == 1) {{
            storage_set(bal_key, itoa(bal - amt));
        }} else {{
            storage_set(bal_key, itoa(bal + amt));
        }}
        let note: bytes = call({clear}, concat3(b"notify|", op, concat(b"|", acct)));
        ret(b"1");
        return;
    }}
    if (eq_bytes(op, b"create") == 1) {{
        let who: bytes = json_get(arg, b"account");
        storage_set(concat3(b"acct:", who, b":status"), b"active");
        storage_set(concat3(b"acct:", who, b":org"), json_get(arg, b"org"));
        storage_set(concat3(b"acct:", who, b":type"), b"supplier");
        storage_set(concat3(b"acct:", who, b":kyc"), b"passed");
        storage_set(concat3(b"acct:", who, b":sanctions"), b"clear");
        storage_set(concat3(b"acct:", who, b":risk"), b"low");
        storage_set(concat3(b"acct:", who, b":limit"), b"1000000");
        storage_set(concat3(b"acct:", who, b":used"), b"0");
        storage_set(concat3(b"acct:", who, b":balance"), b"0");
        storage_set(concat3(b"acct:", who, b":opened"), b"2020-01-01");
        storage_set(concat3(b"acct:", who, b":region"), b"cn-east");
        storage_set(concat3(b"acct:", who, b":floor"), b"0");
        ret(concat(b"created:", who));
        return;
    }}
    ret(b"ERR:acct-op");
}}
"#
    )
}

/// ArIssue: asset records and the custody chain.
pub fn ar_issue_src(a: &ScfAddresses) -> String {
    let account = ccl_addr_literal(&a.ar_account);
    format!(
        r#"
fn afield(asset: bytes, name: bytes) -> bytes {{
    return storage_get(concat3(b"asset:", asset, concat(b":", name)));
}}


// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {{
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) {{ return 0; }}
    while (w < 3500) {{
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }}
    return acc;
}}

export fn main() {{
    let in_: bytes = input();
    let warm: int = ctx_deserialize(in_);
    let p: int = find(in_, b"|", 0);
    let op: bytes = slice(in_, 0, p);
    let arg: bytes = slice(in_, p + 1, len(in_) - p - 1);
    if (eq_bytes(op, b"lookup") == 1) {{
        let owner: bytes = afield(arg, b"owner");
        if (len(owner) == 0) {{ ret(b""); return; }}
        let face: bytes = afield(arg, b"face");
        let issuer: bytes = afield(arg, b"issuer");
        let due: bytes = afield(arg, b"due");
        let rate: bytes = afield(arg, b"rate");
        let status: bytes = afield(arg, b"status");
        let grade: bytes = afield(arg, b"grade");
        let insured: bytes = afield(arg, b"insured");
        let ok: bytes = call({account}, concat(b"exists|", owner));
        ret(concat3(
            concat3(b"{{\"owner\":\"", owner, b"\",\"face\":"),
            concat3(face, b",\"issuer\":\"", issuer),
            concat3(b"\",\"status\":\"", status, b"\"}}")
        ));
        return;
    }}
    if (eq_bytes(op, b"chainlen") == 1) {{
        ret(afield(arg, b"chainlen"));
        return;
    }}
    if (eq_bytes(op, b"verify_step") == 1) {{
        let q: int = find(arg, b"|", 0);
        let asset: bytes = slice(arg, 0, q);
        let idx: bytes = slice(arg, q + 1, len(arg) - q - 1);
        let base: bytes = concat3(b"custody:", asset, concat(b":", idx));
        let holder: bytes = storage_get(concat(base, b":holder"));
        let sig: bytes = storage_get(concat(base, b":sig"));
        let ts: bytes = storage_get(concat(base, b":ts"));
        let prev: bytes = storage_get(concat(base, b":prev"));
        let kind: bytes = storage_get(concat(base, b":kind"));
        if (len(holder) == 0 || len(sig) == 0) {{ ret(b"0"); return; }}
        ret(b"1");
        return;
    }}
    if (eq_bytes(op, b"mint") == 1) {{
        // mint|owner|parent|amount
        let q1: int = find(arg, b"|", 0);
        let owner: bytes = slice(arg, 0, q1);
        let rest: bytes = slice(arg, q1 + 1, len(arg) - q1 - 1);
        let q2: int = find(rest, b"|", 0);
        let parent: bytes = slice(rest, 0, q2);
        let amount: bytes = slice(rest, q2 + 1, len(rest) - q2 - 1);
        let ok: bytes = call({account}, concat(b"exists|", owner));
        if (eq_bytes(ok, b"1") == 0) {{ ret(b"ERR:mint-owner"); return; }}
        let seq: int = atoi(storage_get(b"mint_seq"));
        storage_set(b"mint_seq", itoa(seq + 1));
        let cert: bytes = concat(parent, concat(b"-", itoa(seq + 1)));
        storage_set(concat3(b"cert:", cert, b":rec"),
            concat3(concat3(b"{{\"owner\":\"", owner, b"\",\"amount\":"),
                    amount, b"}}"));
        ret(cert);
        return;
    }}
    if (eq_bytes(op, b"issue") == 1) {{
        let asset: bytes = json_get(arg, b"asset");
        storage_set(concat3(b"asset:", asset, b":owner"), json_get(arg, b"owner"));
        storage_set(concat3(b"asset:", asset, b":face"), json_get(arg, b"face"));
        storage_set(concat3(b"asset:", asset, b":issuer"), json_get(arg, b"issuer"));
        storage_set(concat3(b"asset:", asset, b":due"), b"2021-06-30");
        storage_set(concat3(b"asset:", asset, b":rate"), b"450");
        storage_set(concat3(b"asset:", asset, b":status"), b"live");
        storage_set(concat3(b"asset:", asset, b":grade"), b"A");
        storage_set(concat3(b"asset:", asset, b":insured"), b"1");
        storage_set(concat3(b"asset:", asset, b":chainlen"), json_get(arg, b"chainlen"));
        let n: int = json_get_int(arg, b"chainlen");
        let i: int = 0;
        while (i < n) {{
            let base: bytes = concat3(b"custody:", asset, concat(b":", itoa(i)));
            storage_set(concat(base, b":holder"), concat(b"holder-", itoa(i)));
            storage_set(concat(base, b":sig"), b"d2f1aa");
            storage_set(concat(base, b":ts"), itoa(1577836800 + i));
            storage_set(concat(base, b":prev"), itoa(i - 1));
            storage_set(concat(base, b":kind"), b"endorse");
            i = i + 1;
        }}
        ret(concat(b"issued:", asset));
        return;
    }}
    ret(b"ERR:issue-op");
}}
"#
    )
}

/// ArTransfer: the orchestrating service for asset transfers.
pub fn ar_transfer_src(a: &ScfAddresses) -> String {
    let account = ccl_addr_literal(&a.ar_account);
    let issue = ccl_addr_literal(&a.ar_issue);
    let clear = ccl_addr_literal(&a.ar_clear);
    format!(
        r#"

// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {{
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) {{ return 0; }}
    while (w < 3500) {{
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }}
    return acc;
}}

export fn main() {{
    let in_: bytes = input();
    let warm: int = ctx_deserialize(in_);
    let p: int = find(in_, b"|", 0);
    let op: bytes = slice(in_, 0, p);
    let req: bytes = slice(in_, p + 1, len(in_) - p - 1);
    let from: bytes = json_get(req, b"from");
    let to: bytes = json_get(req, b"to");
    if (eq_bytes(op, b"precheck") == 1) {{
        if (eq_bytes(call({account}, concat(b"check|", from)), b"1") == 0) {{ ret(b"from-bad"); return; }}
        if (eq_bytes(call({account}, concat(b"check|", to)), b"1") == 0) {{ ret(b"to-bad"); return; }}
        if (eq_bytes(call({account}, concat(b"kyc|", from)), b"1") == 0) {{ ret(b"from-kyc"); return; }}
        if (eq_bytes(call({account}, concat(b"kyc|", to)), b"1") == 0) {{ ret(b"to-kyc"); return; }}
        ret(b"1");
        return;
    }}
    if (eq_bytes(op, b"execute") == 1) {{
        let asset: bytes = json_get(req, b"asset");
        let amount: int = json_get_int(req, b"amount");
        // Re-validate under execution context.
        if (eq_bytes(call({account}, concat(b"check|", from)), b"1") == 0) {{ ret(b"ERR:from"); return; }}
        if (eq_bytes(call({account}, concat(b"check|", to)), b"1") == 0) {{ ret(b"ERR:to"); return; }}
        let headroom: int = atoi(call({account}, concat(b"limit|", from)));
        if (headroom < amount) {{ ret(b"ERR:limit"); return; }}
        // Asset record + ownership.
        let rec: bytes = call({issue}, concat(b"lookup|", asset));
        if (len(rec) == 0) {{ ret(b"ERR:asset"); return; }}
        let owner: bytes = json_get(rec, b"owner");
        if (eq_bytes(owner, from) == 0) {{ ret(b"ERR:owner"); return; }}
        let face: int = json_get_int(rec, b"face");
        if (amount <= 0 || amount > face) {{ ret(b"ERR:amount"); return; }}
        // Custody chain verification, step by step.
        let steps: int = atoi(call({issue}, concat(b"chainlen|", asset)));
        let i: int = 0;
        while (i < steps) {{
            let okstep: bytes = call({issue},
                concat3(b"verify_step|", asset, concat(b"|", itoa(i))));
            if (eq_bytes(okstep, b"1") == 0) {{ ret(b"ERR:custody"); return; }}
            i = i + 1;
        }}
        // Split: certificate for the payee, remainder for the payer.
        let c1: bytes = call({issue},
            concat3(b"mint|", to, concat3(b"|", asset, concat(b"|", itoa(amount)))));
        let c2: bytes = call({issue},
            concat3(b"mint|", from, concat3(b"|", asset, concat(b"|", itoa(face - amount)))));
        // Money legs.
        let d: bytes = call({account}, concat3(b"debit|", from, concat(b"|", itoa(amount))));
        let c: bytes = call({account}, concat3(b"credit|", to, concat(b"|", itoa(amount))));
        // Clearing entry.
        let q: bytes = call({clear}, concat3(b"enqueue|", asset, concat(b"|", itoa(amount))));
        ret(concat3(b"OK:", c1, concat(b",", c2)));
        return;
    }}
    ret(b"ERR:transfer-op");
}}
"#
    )
}

/// ArClear: clearing queue + notifications.
pub fn ar_clear_src(_a: &ScfAddresses) -> String {
    r#"

// Production service contracts deserialize their full calling context
// (RLP-class decoding of accounts, certificates, custody records) on every
// invocation; model that execution depth with a fixed-work scan.
fn ctx_deserialize(b: bytes) -> int {
    let acc: int = 0;
    let w: int = 0;
    let n: int = len(b);
    if (n == 0) { return 0; }
    while (w < 3500) {
        acc = acc + byte_at(b, w % n) * (w & 7);
        w = w + 1;
    }
    return acc;
}

export fn main() {
    let in_: bytes = input();
    let warm: int = ctx_deserialize(in_);
    let p: int = find(in_, b"|", 0);
    let op: bytes = slice(in_, 0, p);
    let arg: bytes = slice(in_, p + 1, len(in_) - p - 1);
    if (eq_bytes(op, b"enqueue") == 1) {
        let head: int = atoi(storage_get(b"queue_head"));
        let window: bytes = storage_get(b"cfg:window");
        storage_set(concat(b"queue:", itoa(head)), arg);
        storage_set(b"queue_head", itoa(head + 1));
        ret(itoa(head));
        return;
    }
    if (eq_bytes(op, b"notify") == 1) {
        let window: bytes = storage_get(b"cfg:window");
        let mode: bytes = storage_get(b"cfg:mode");
        ret(b"noted");
        return;
    }
    if (eq_bytes(op, b"settle_hint") == 1) {
        let head: bytes = storage_get(b"queue_head");
        let window: bytes = storage_get(b"cfg:window");
        let mode: bytes = storage_get(b"cfg:mode");
        ret(head);
        return;
    }
    ret(b"ERR:clear-op");
}
export fn genesis() {
    storage_set(b"queue_head", b"0");
    storage_set(b"cfg:window", b"T+1");
    storage_set(b"cfg:mode", b"netting");
    ret(b"ok");
}
"#
    .to_string()
}

/// Deploy the whole suite on an engine.
pub fn deploy_suite(engine: &Engine, confidential: bool) -> ScfAddresses {
    let a = ScfAddresses::default();
    let contracts = [
        (a.gateway, gateway_src(&a)),
        (a.manager, manager_src(&a)),
        (a.ar_account, ar_account_src(&a)),
        (a.ar_issue, ar_issue_src(&a)),
        (a.ar_transfer, ar_transfer_src(&a)),
        (a.ar_clear, ar_clear_src(&a)),
    ];
    for (addr, src) in contracts {
        let code = confide_lang::build_vm(&src).expect("SCF contract compiles");
        engine
            .deploy(addr, &code, VmKind::ConfideVm, confidential)
            .expect("scf contract deploys");
    }
    a
}

/// Run genesis: contract configs, two accounts, and an issued asset with a
/// custody chain of `chainlen` endorsement steps.
pub fn run_genesis(
    engine: &Engine,
    state: &StateDb,
    ctx: &mut ExecContext,
    a: &ScfAddresses,
    chainlen: usize,
) {
    let sys = [0u8; 32];
    for addr in [a.gateway, a.manager, a.ar_clear] {
        engine
            .invoke_inner(state, ctx, &addr, "genesis", b"", &sys)
            .expect("genesis");
    }
    for account in ["alice", "bob"] {
        let req = format!(r#"{{"op":"create_account","account":"{account}","org":"bank-A"}}"#);
        engine
            .invoke_inner(state, ctx, &a.gateway, "main", req.as_bytes(), &sys)
            .expect("create account");
    }
    let issue = format!(
        r#"{{"op":"issue","asset":"AR-7788","owner":"alice","face":"100000","issuer":"core-enterprise","chainlen":{chainlen}}}"#
    );
    engine
        .invoke_inner(state, ctx, &a.gateway, "main", issue.as_bytes(), &sys)
        .expect("issue asset");
}

/// The typical transfer request of the Table 1 flow.
pub fn transfer_request(from: &str, to: &str, asset: &str, amount: i64) -> Vec<u8> {
    format!(
        r#"{{"op":"transfer","from":"{from}","to":"{to}","asset":"{asset}","amount":{amount}}}"#
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_core::engine::EngineConfig;

    fn setup() -> (Engine, StateDb, ExecContext, ScfAddresses) {
        let engine = Engine::public(EngineConfig::default());
        let a = deploy_suite(&engine, false);
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        run_genesis(&engine, &state, &mut ctx, &a, 8);
        (engine, state, ctx, a)
    }

    #[test]
    fn full_transfer_flow_succeeds() {
        let (engine, state, mut ctx, a) = setup();
        ctx.take_counters(); // discard genesis accounting
        let req = transfer_request("alice", "bob", "AR-7788", 40_000);
        let out = engine
            .invoke_inner(&state, &mut ctx, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        assert!(out.starts_with(b"OK:"), "{}", String::from_utf8_lossy(&out));
        let c = ctx.counters;
        // Table 1's operation mix: ~31 calls, ~150 reads, ~9 writes.
        assert!(
            (25..=40).contains(&c.contract_calls),
            "contract calls {}",
            c.contract_calls
        );
        assert!(
            (100..=220).contains(&c.get_storage),
            "get storage {}",
            c.get_storage
        );
        assert!(
            (6..=14).contains(&c.set_storage),
            "set storage {}",
            c.set_storage
        );
    }

    #[test]
    fn transfer_to_unknown_account_fails_precheck() {
        let (engine, state, mut ctx, a) = setup();
        let req = transfer_request("alice", "mallory", "AR-7788", 100);
        let out = engine
            .invoke_inner(&state, &mut ctx, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        assert!(
            out.starts_with(b"ERR:precheck"),
            "{}",
            String::from_utf8_lossy(&out)
        );
    }

    #[test]
    fn transfer_of_unowned_asset_fails() {
        let (engine, state, mut ctx, a) = setup();
        // bob does not own AR-7788.
        let req = transfer_request("bob", "alice", "AR-7788", 100);
        let out = engine
            .invoke_inner(&state, &mut ctx, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        assert_eq!(out, b"ERR:owner");
    }

    #[test]
    fn overdraw_fails_amount_check() {
        let (engine, state, mut ctx, a) = setup();
        let req = transfer_request("alice", "bob", "AR-7788", 150_000);
        let out = engine
            .invoke_inner(&state, &mut ctx, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        assert_eq!(out, b"ERR:amount");
    }

    #[test]
    fn balances_and_queue_update() {
        let (engine, state, mut ctx, a) = setup();
        let req = transfer_request("alice", "bob", "AR-7788", 10_000);
        engine
            .invoke_inner(&state, &mut ctx, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        // Balance moved (read through the account contract).
        let out = engine
            .invoke_inner(
                &state,
                &mut ctx,
                &a.ar_account,
                "main",
                b"limit|alice",
                &[9u8; 32],
            )
            .unwrap();
        assert_eq!(out, b"1000000"); // limit unchanged
                                     // bob's balance credited: storage lives under the account contract.
        let key = confide_core::engine::full_key(&a.ar_account, b"acct:bob:balance");
        let via_overlay = ctx.lookup(&key).map(|v| v.cloned());
        assert_eq!(via_overlay, Some(Some(b"10000".to_vec())));
        // Clearing queue advanced.
        let qkey = confide_core::engine::full_key(&a.ar_clear, b"queue_head");
        assert_eq!(
            ctx.lookup(&qkey).map(|v| v.cloned()),
            Some(Some(b"1".to_vec()))
        );
    }

    #[test]
    fn suite_runs_confidentially_with_sealed_state() {
        use confide_core::keys::NodeKeys;
        use confide_tee::platform::TeePlatform;
        let platform = TeePlatform::new(1, 1);
        let mut rng = confide_crypto::HmacDrbg::from_u64(7);
        let keys = NodeKeys::generate(&mut rng);
        let engine = Engine::confidential(platform, keys, EngineConfig::default());
        let a = deploy_suite(&engine, true);
        let mut state = StateDb::new();
        let mut ctx = ExecContext::new();
        run_genesis(&engine, &state, &mut ctx, &a, 4);
        let batch = engine.commit_block(&mut ctx, 1).unwrap();
        state.apply_block(1, &batch).unwrap();
        // The transfer still works against sealed state.
        let mut ctx2 = ExecContext::new();
        let req = transfer_request("alice", "bob", "AR-7788", 500);
        let out = engine
            .invoke_inner(&state, &mut ctx2, &a.gateway, "main", &req, &[9u8; 32])
            .unwrap();
        assert!(out.starts_with(b"OK:"), "{}", String::from_utf8_lossy(&out));
        // And nothing readable leaked into the raw database.
        for (_k, v) in state.kv().iter() {
            assert!(!v.windows(5).any(|w| w == b"alice"), "plaintext in db");
        }
    }
}
