//! The ABS (Asset-Backed Securitization) transfer contract of Fig. 9.
//!
//! "The 'Transfer Asset' operation of ABS includes four steps,
//! authentication, asset parsing, asset validation and asset storage. …
//! Asset information is encoded into a string … which contains about 10
//! attributes. … Asset validation contains three operators, inclusion,
//! numeric comparison and string comparison. … Typical size of the storage
//! is about 1k bytes."
//!
//! Two encodings of the same contract realise OPT2:
//!
//! * [`abs_json_src`] — attributes arrive as JSON and are parsed by
//!   interpreted byte-scanning code (the §6.4 "about 450K instructions"
//!   problem, scaled to our kernel).
//! * [`abs_fb_src`] — attributes arrive in a Flatbuffers-style fixed-offset
//!   binary layout: every field is read by direct offset arithmetic, no
//!   scanning.

use confide_crypto::HmacDrbg;

/// Shared validation + storage tail (string-templated into both variants).
const ABS_TAIL: &str = r#"
    // --- Step 3: validation (inclusion, numeric compare, string compare) ---
    // Inclusion: institution must be in the on-chain whitelist.
    let inst_ok: int = storage_has(concat(b"inst:", institution));
    if (inst_ok == 0) { ret(b"ERR:institution"); return; }
    // Numeric comparison: 0 < amount <= pool ceiling.
    let ceiling: int = atoi(storage_get(b"pool_ceiling"));
    if (amount <= 0 || amount > ceiling) { ret(b"ERR:amount"); return; }
    // String comparison: repay mode must be an accepted value.
    let mode_ok: int = 0;
    if (eq_bytes(repay_mode, b"equal-principal") == 1) { mode_ok = 1; }
    if (eq_bytes(repay_mode, b"bullet") == 1) { mode_ok = 1; }
    if (eq_bytes(repay_mode, b"interest-first") == 1) { mode_ok = 1; }
    if (mode_ok == 0) { ret(b"ERR:repay-mode"); return; }

    // --- Step 4: storage (~1 KB record) ---
    let record: bytes = concat3(
        concat3(b"{\"asset\":\"", asset_id, b"\",\"class\":\""),
        concat3(asset_class, b"\",\"inst\":\"", institution),
        concat3(b"\",\"mode\":\"", repay_mode, b"\",")
    );
    let record2: bytes = concat3(
        concat3(b"\"amount\":", itoa(amount), b",\"rating\":\""),
        concat3(rating, b"\",\"originator\":\"", originator),
        concat3(b"\",\"maturity\":", itoa(maturity), b",")
    );
    let record3: bytes = concat3(
        concat3(b"\"coupon_bps\":", itoa(coupon), b",\"tranche\":\""),
        concat3(tranche, b"\",\"blob\":\"", blob),
        b"\"}"
    );
    let full: bytes = concat3(record, record2, record3);
    // Risk scorecard: the production ABS contract evaluates a deep rule
    // set over the parsed asset record; model its execution depth with
    // several scoring passes over the record bytes.
    let score: int = 0;
    let r: int = 0;
    while (r < 16) {
        let i2: int = 0;
        while (i2 < len(full)) {
            score = score + byte_at(full, i2) * (r + 1);
            i2 = i2 + 1;
        }
        r = r + 1;
    }
    storage_set(concat(b"score:", asset_id), itoa(score));
    storage_set(concat(b"asset:", asset_id), full);
    // Update the per-institution position (read-modify-write).
    let pos_key: bytes = concat(b"pos:", institution);
    let pos: int = atoi(storage_get(pos_key));
    storage_set(pos_key, itoa(pos + amount));
    ret(concat(b"OK:", asset_id));
"#;

/// ABS transfer, JSON-encoded attributes (pre-OPT2 baseline).
pub fn abs_json_src() -> String {
    format!(
        r#"
export fn transfer() {{
    let in_: bytes = input();
    // --- Step 1: authentication ---
    let who: bytes = to_hex(sender());
    let auth: int = storage_has(concat(b"acct:", who));
    if (auth == 0) {{ ret(b"ERR:auth"); return; }}
    // --- Step 2: asset parsing (JSON, ~10 attributes) ---
    let asset_id: bytes = json_get(in_, b"asset_id");
    let asset_class: bytes = json_get(in_, b"asset_class");
    let institution: bytes = json_get(in_, b"institution");
    let repay_mode: bytes = json_get(in_, b"repay_mode");
    let amount: int = json_get_int(in_, b"amount");
    let rating: bytes = json_get(in_, b"rating");
    let originator: bytes = json_get(in_, b"originator");
    let maturity: int = json_get_int(in_, b"maturity");
    let coupon: int = json_get_int(in_, b"coupon_bps");
    let tranche: bytes = json_get(in_, b"tranche");
    let blob: bytes = json_get(in_, b"blob");
    {ABS_TAIL}
}}
"#
    )
}

/// ABS transfer, Flatbuffers-style fixed-offset binary attributes (OPT2).
///
/// Layout (little-endian u32 lengths, fields in fixed order):
/// `[amount i64][maturity i64][coupon i64]` then 8 length-prefixed byte
/// fields: asset_id, asset_class, institution, repay_mode, rating,
/// originator, tranche, blob.
pub fn abs_fb_src() -> String {
    format!(
        r#"
fn fb_len(in_: bytes, off: int) -> int {{
    return byte_at(in_, off)
        | (byte_at(in_, off + 1) << 8)
        | (byte_at(in_, off + 2) << 16)
        | (byte_at(in_, off + 3) << 24);
}}

export fn transfer() {{
    let in_: bytes = input();
    // --- Step 1: authentication ---
    let who: bytes = to_hex(sender());
    let auth: int = storage_has(concat(b"acct:", who));
    if (auth == 0) {{ ret(b"ERR:auth"); return; }}
    // --- Step 2: asset parsing (fixed offsets, no scanning) ---
    let amount: int = b2i(slice(in_, 0, 8));
    let maturity: int = b2i(slice(in_, 8, 8));
    let coupon: int = b2i(slice(in_, 16, 8));
    let off: int = 24;
    let n0: int = fb_len(in_, off);
    let asset_id: bytes = slice(in_, off + 4, n0);
    off = off + 4 + n0;
    let n1: int = fb_len(in_, off);
    let asset_class: bytes = slice(in_, off + 4, n1);
    off = off + 4 + n1;
    let n2: int = fb_len(in_, off);
    let institution: bytes = slice(in_, off + 4, n2);
    off = off + 4 + n2;
    let n3: int = fb_len(in_, off);
    let repay_mode: bytes = slice(in_, off + 4, n3);
    off = off + 4 + n3;
    let n4: int = fb_len(in_, off);
    let rating: bytes = slice(in_, off + 4, n4);
    off = off + 4 + n4;
    let n5: int = fb_len(in_, off);
    let originator: bytes = slice(in_, off + 4, n5);
    off = off + 4 + n5;
    let n6: int = fb_len(in_, off);
    let tranche: bytes = slice(in_, off + 4, n6);
    off = off + 4 + n6;
    let n7: int = fb_len(in_, off);
    let blob: bytes = slice(in_, off + 4, n7);
    {ABS_TAIL}
}}
"#
    )
}

/// Attribute values of one ABS transfer request.
#[derive(Debug, Clone)]
pub struct AbsRequest {
    /// Asset identifier.
    pub asset_id: String,
    /// Asset class label.
    pub asset_class: String,
    /// Institution (must be whitelisted).
    pub institution: String,
    /// Repayment mode (accepted set of three).
    pub repay_mode: String,
    /// Principal amount.
    pub amount: i64,
    /// Rating label.
    pub rating: String,
    /// Originator name.
    pub originator: String,
    /// Maturity in months.
    pub maturity: i64,
    /// Coupon in basis points.
    pub coupon_bps: i64,
    /// Tranche label.
    pub tranche: String,
    /// Free-form payload padding the record to ~1 KB.
    pub blob: String,
}

impl AbsRequest {
    /// A realistic randomized request.
    pub fn random(rng: &mut HmacDrbg) -> AbsRequest {
        let modes = ["equal-principal", "bullet", "interest-first"];
        let classes = ["auto-loan", "receivable", "mortgage", "consumer"];
        let ratings = ["AAA", "AA+", "A", "BBB"];
        let blob: String = (0..500)
            .map(|_| (b'a' + (rng.gen_range(26) as u8)) as char)
            .collect();
        AbsRequest {
            asset_id: format!("AST{:010}", rng.gen_range(10_000_000_000)),
            asset_class: classes[rng.gen_range(classes.len() as u64) as usize].into(),
            institution: format!("inst-{:02}", rng.gen_range(8)),
            repay_mode: modes[rng.gen_range(modes.len() as u64) as usize].into(),
            amount: 1_000 + rng.gen_range(500_000) as i64,
            rating: ratings[rng.gen_range(ratings.len() as u64) as usize].into(),
            originator: format!("originator-{}", rng.gen_range(100)),
            maturity: 6 + rng.gen_range(120) as i64,
            coupon_bps: 150 + rng.gen_range(500) as i64,
            tranche: format!("T{}", 1 + rng.gen_range(4)),
            blob,
        }
    }

    /// JSON encoding (pre-OPT2 wire format). Mirrors the production request
    /// shape: envelope metadata and the large opaque payload come first, so
    /// an interpreted scan for each business field traverses most of the
    /// document — the §6.4 "about 450K instructions" parsing profile.
    pub fn to_json(&self) -> Vec<u8> {
        let mut doc = String::with_capacity(3500);
        doc.push('{');
        doc.push_str(&format!("\"blob\":\"{}\"", self.blob));
        for k in 0..8 {
            doc.push_str(&format!(",\"meta{k:02}\":\"m{k}\""));
        }
        doc.push_str(&format!(
            ",\"asset_id\":\"{}\",\"asset_class\":\"{}\",\"institution\":\"{}\",\"repay_mode\":\"{}\",\"amount\":{},\"rating\":\"{}\",\"originator\":\"{}\",\"maturity\":{},\"coupon_bps\":{},\"tranche\":\"{}\"}}",
            self.asset_id,
            self.asset_class,
            self.institution,
            self.repay_mode,
            self.amount,
            self.rating,
            self.originator,
            self.maturity,
            self.coupon_bps,
            self.tranche,
        ));
        doc.into_bytes()
    }

    /// Flatbuffers-style fixed-offset binary encoding (OPT2 wire format).
    pub fn to_fb(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1200);
        out.extend_from_slice(&self.amount.to_le_bytes());
        out.extend_from_slice(&self.maturity.to_le_bytes());
        out.extend_from_slice(&self.coupon_bps.to_le_bytes());
        for field in [
            &self.asset_id,
            &self.asset_class,
            &self.institution,
            &self.repay_mode,
            &self.rating,
            &self.originator,
            &self.tranche,
            &self.blob,
        ] {
            out.extend_from_slice(&(field.len() as u32).to_le_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out
    }
}

/// Genesis state an ABS contract needs: whitelisted institutions, a pool
/// ceiling, and the sender's account. Keys are contract-relative.
pub fn genesis_state(sender_hex: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries = vec![
        (b"pool_ceiling".to_vec(), b"100000000".to_vec()),
        (format!("acct:{sender_hex}").into_bytes(), b"1".to_vec()),
    ];
    for i in 0..8 {
        entries.push((format!("inst:inst-{i:02}").into_bytes(), b"1".to_vec()));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_vm::{ExecConfig, MockHost, Module, Vm};

    fn run(src: &str, input: &[u8], sender: [u8; 32]) -> (Vec<u8>, MockHost, u64) {
        let code = confide_lang::build_vm(src).unwrap();
        let vm = Vm::from_module(Module::decode(&code).unwrap(), ExecConfig::default());
        let mut host = MockHost {
            input: input.to_vec(),
            sender,
            ..MockHost::default()
        };
        for (k, v) in genesis_state(&confide_crypto::hex(&sender)) {
            host.storage.insert(k, v);
        }
        let mut mem = Vec::new();
        let out = vm.invoke("transfer", &[], &mut host, &mut mem).unwrap();
        (out.return_data, host, out.stats.instret)
    }

    #[test]
    fn json_and_fb_variants_agree() {
        let mut rng = HmacDrbg::from_u64(3);
        let req = AbsRequest::random(&mut rng);
        let sender = [5u8; 32];
        let (out_json, host_json, instr_json) = run(&abs_json_src(), &req.to_json(), sender);
        let (out_fb, host_fb, instr_fb) = run(&abs_fb_src(), &req.to_fb(), sender);
        assert_eq!(out_json, out_fb);
        assert_eq!(out_json, format!("OK:{}", req.asset_id).into_bytes());
        // Same stored record.
        let key = format!("asset:{}", req.asset_id).into_bytes();
        assert_eq!(host_json.storage[&key], host_fb.storage[&key]);
        // The ~1 KB storage shape of §6.1.
        let stored = &host_json.storage[&key];
        assert!((600..1400).contains(&stored.len()), "{}", stored.len()); // ~1 KB per §6.1
                                                                          // OPT2's point: fixed-offset parsing retires far fewer instructions.
        assert!(
            instr_json > 2 * instr_fb,
            "json {instr_json} vs fb {instr_fb}"
        );
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let mut rng = HmacDrbg::from_u64(3);
        let sender = [5u8; 32];
        // Unknown institution.
        let mut req = AbsRequest::random(&mut rng);
        req.institution = "inst-99".into();
        let (out, _, _) = run(&abs_json_src(), &req.to_json(), sender);
        assert_eq!(out, b"ERR:institution");
        // Amount over ceiling.
        let mut req = AbsRequest::random(&mut rng);
        req.amount = 200_000_000;
        let (out, _, _) = run(&abs_json_src(), &req.to_json(), sender);
        assert_eq!(out, b"ERR:amount");
        // Bad repay mode.
        let mut req = AbsRequest::random(&mut rng);
        req.repay_mode = "whenever".into();
        let (out, _, _) = run(&abs_fb_src(), &req.to_fb(), sender);
        assert_eq!(out, b"ERR:repay-mode");
    }

    #[test]
    fn unauthenticated_sender_rejected() {
        let mut rng = HmacDrbg::from_u64(3);
        let req = AbsRequest::random(&mut rng);
        let code = confide_lang::build_vm(&abs_json_src()).unwrap();
        let vm = Vm::from_module(Module::decode(&code).unwrap(), ExecConfig::default());
        let mut host = MockHost {
            input: req.to_json(),
            sender: [9u8; 32], // no acct: entry
            ..MockHost::default()
        };
        let mut mem = Vec::new();
        let out = vm.invoke("transfer", &[], &mut host, &mut mem).unwrap();
        assert_eq!(out.return_data, b"ERR:auth");
    }

    #[test]
    fn position_accumulates_across_transfers() {
        let mut rng = HmacDrbg::from_u64(4);
        let mut req = AbsRequest::random(&mut rng);
        req.institution = "inst-01".into();
        req.amount = 100;
        let sender = [5u8; 32];
        let code = confide_lang::build_vm(&abs_fb_src()).unwrap();
        let vm = Vm::from_module(Module::decode(&code).unwrap(), ExecConfig::default());
        let mut host = MockHost {
            sender,
            ..MockHost::default()
        };
        for (k, v) in genesis_state(&confide_crypto::hex(&sender)) {
            host.storage.insert(k, v);
        }
        for i in 0..3 {
            req.asset_id = format!("AST{i:010}");
            host.input = req.to_fb();
            let mut mem = Vec::new();
            vm.invoke("transfer", &[], &mut host, &mut mem).unwrap();
        }
        assert_eq!(host.storage[&b"pos:inst-01"[..].to_vec()], b"300");
    }
}
