//! The CCLe codegen tool of paper Fig. 5: compile a `.ccle` schema file
//! and emit Rust data-model definitions.
//!
//! ```text
//! ccle-gen <schema.ccle> [out.rs]
//! ```
//!
//! With no output path, the generated source is written to stdout. Pass
//! `--check` as the second argument to only validate the schema.

#![forbid(unsafe_code)]
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(schema_path) = args.first() else {
        eprintln!("usage: ccle-gen <schema.ccle> [out.rs | --check]");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(schema_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccle-gen: cannot read {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match confide_ccle::parse_schema(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccle-gen: {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let confidential_fields: usize = schema
        .tables
        .iter()
        .flat_map(|t| &t.fields)
        .filter(|f| f.confidential)
        .count();
    eprintln!(
        "ccle-gen: {} tables, root `{}`, {} confidential field(s)",
        schema.tables.len(),
        schema.root_type,
        confidential_fields
    );
    match args.get(1).map(String::as_str) {
        Some("--check") => ExitCode::SUCCESS,
        Some(out_path) => {
            let generated = confide_ccle::codegen::generate_rust(&schema);
            if let Err(e) = std::fs::write(out_path, generated) {
                eprintln!("ccle-gen: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("ccle-gen: wrote {out_path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{}", confide_ccle::codegen::generate_rust(&schema));
            ExitCode::SUCCESS
        }
    }
}
