//! # confide-ccle
//!
//! The Confidential Smart Contract Language Extension (CCLe) of paper §4:
//! a Flatbuffers-style IDL extended with two attributes —
//!
//! * `confidential` — marks a field (primitive or composite) as sensitive.
//!   Composite types are "parsed recursively, and all the primitive data in
//!   it will be set confidential".
//! * `map` — declares a vector-of-tables field as a key:value map, the
//!   `account:asset` shape financial contracts live on.
//!
//! The paper's Listing 1 parses verbatim (see the tests).
//!
//! The payoff (§4): instead of encrypting whole contract states, only the
//! *sensitive fields* are sealed — public fields remain readable by
//! third-party auditors without any key sharing, and encryption cost
//! scales with the confidential fraction of the state (Figure 12 OPT2's
//! companion effect).
//!
//! * [`schema`] / [`parser`] — the IDL model and its parser.
//! * [`value`] — dynamic values conforming to a schema.
//! * [`codec`] — schema-driven encode/decode with **field-level
//!   AES-256-GCM**: confidential subtrees are sealed with AAD binding
//!   (contract identity ‖ field path), D-Protocol formula (3); decoding
//!   without the key yields an audit view with opaque
//!   [`value::Value::Encrypted`] leaves.
//! * [`codegen`] — the §4 "codegen tool": emits Rust struct definitions
//!   from a schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod codegen;
pub mod parser;
pub mod schema;
pub mod value;

pub use codec::{decode, decode_public, encode, EncryptionContext};
pub use parser::parse_schema;
pub use schema::{ConfidentialKeys, Field, FieldType, ScalarType, Schema, SchemaError, Table};
pub use value::Value;
