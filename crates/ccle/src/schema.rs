//! The CCLe schema model and its validation rules.

use std::collections::HashMap;

/// Scalar field types (the Flatbuffers-ish set the paper's examples use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    /// `bool`
    Bool,
    /// `byte` (i8)
    Byte,
    /// `ubyte` (u8)
    UByte,
    /// `short` (i16)
    Short,
    /// `ushort` (u16)
    UShort,
    /// `int` (i32)
    Int,
    /// `uint` (u32)
    UInt,
    /// `long` (i64)
    Long,
    /// `ulong` (u64)
    ULong,
}

impl ScalarType {
    /// Parse a scalar type name.
    pub fn from_name(name: &str) -> Option<ScalarType> {
        Some(match name {
            "bool" => ScalarType::Bool,
            "byte" => ScalarType::Byte,
            "ubyte" => ScalarType::UByte,
            "short" => ScalarType::Short,
            "ushort" => ScalarType::UShort,
            "int" => ScalarType::Int,
            "uint" => ScalarType::UInt,
            "long" => ScalarType::Long,
            "ulong" => ScalarType::ULong,
            _ => return None,
        })
    }

    /// Whether the scalar is signed.
    pub fn is_signed(&self) -> bool {
        matches!(
            self,
            ScalarType::Byte | ScalarType::Short | ScalarType::Int | ScalarType::Long
        )
    }
}

/// A field's type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// A scalar.
    Scalar(ScalarType),
    /// UTF-8 string.
    Str,
    /// A nested table by name.
    Table(String),
    /// `[T]` — vector of `T`.
    Vector(Box<FieldType>),
}

/// A table field with its CCLe attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Type.
    pub ty: FieldType,
    /// `(confidential)` attribute.
    pub confidential: bool,
    /// `(map)` attribute — key:value semantics over a vector of tables.
    pub map: bool,
    /// `(access("role"))` attribute — the §4 "data access control"
    /// extension: this confidential field is sealed under a *role-derived*
    /// subkey of `k_states`, so the role key can be released to a class of
    /// parties (e.g. auditors) without exposing anything else.
    pub access_role: Option<String>,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

impl Table {
    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A parsed and validated schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Declared attributes (e.g. "map", "confidential").
    pub attributes: Vec<String>,
    /// Tables by declaration order.
    pub tables: Vec<Table>,
    /// The root table name.
    pub root_type: String,
}

impl Schema {
    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// The root table.
    pub fn root(&self) -> &Table {
        self.table(&self.root_type).expect("validated root")
    }

    /// Validate structural rules; called by the parser.
    pub fn validate(&self) -> Result<(), SchemaError> {
        let names: HashMap<&str, &Table> =
            self.tables.iter().map(|t| (t.name.as_str(), t)).collect();
        if names.len() != self.tables.len() {
            return Err(SchemaError::DuplicateTable);
        }
        if !names.contains_key(self.root_type.as_str()) {
            return Err(SchemaError::UnknownRoot(self.root_type.clone()));
        }
        for t in &self.tables {
            let mut seen = std::collections::HashSet::new();
            for f in &t.fields {
                if !seen.insert(&f.name) {
                    return Err(SchemaError::DuplicateField(t.name.clone(), f.name.clone()));
                }
                check_type(&f.ty, &names, t, f)?;
                if f.map {
                    // map requires a vector of tables whose element table has
                    // a string first field (the key).
                    match &f.ty {
                        FieldType::Vector(inner) => match inner.as_ref() {
                            FieldType::Table(name) => {
                                let elem = names
                                    .get(name.as_str())
                                    .ok_or_else(|| SchemaError::UnknownTable(name.clone()))?;
                                match elem.fields.first().map(|f| &f.ty) {
                                    Some(FieldType::Str) => {}
                                    _ => {
                                        return Err(SchemaError::BadMapKey(
                                            t.name.clone(),
                                            f.name.clone(),
                                        ))
                                    }
                                }
                            }
                            _ => {
                                return Err(SchemaError::BadMapField(
                                    t.name.clone(),
                                    f.name.clone(),
                                ))
                            }
                        },
                        _ => return Err(SchemaError::BadMapField(t.name.clone(), f.name.clone())),
                    }
                }
                if (f.map && !self.attributes.iter().any(|a| a == "map"))
                    || (f.confidential && !self.attributes.iter().any(|a| a == "confidential"))
                    || (f.access_role.is_some() && !self.attributes.iter().any(|a| a == "access"))
                {
                    return Err(SchemaError::UndeclaredAttribute(f.name.clone()));
                }
                if f.access_role.is_some() && !f.confidential {
                    return Err(SchemaError::AccessOnPublicField(
                        t.name.clone(),
                        f.name.clone(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The set of contract storage keys a schema marks confidential.
///
/// CCL contracts address storage with flat byte keys following two idioms
/// (see `crates/contracts`): an **exact** key equal to the field name
/// (`pool_ceiling`, `cfg:enabled`) for singleton fields, and a **prefix**
/// key `"{field}:"` (`acct:alice`, `score:asset-7`) for `map` fields keyed
/// per entry. [`Schema::confidential_keys`] derives both forms for every
/// `(confidential)` field so static analysis (the `cclc --lint`
/// confidentiality-flow pass) can classify a `storage_get`/`storage_set`
/// key expression without executing the contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfidentialKeys {
    exact: Vec<String>,
    prefixes: Vec<String>,
}

impl ConfidentialKeys {
    /// No confidential fields at all.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }

    /// Exact confidential key names.
    pub fn exact(&self) -> &[String] {
        &self.exact
    }

    /// Confidential key prefixes (each ends with `:`).
    pub fn prefixes(&self) -> &[String] {
        &self.prefixes
    }

    /// Whether a fully-known storage key holds confidential data.
    pub fn key_is_confidential(&self, key: &[u8]) -> bool {
        self.exact.iter().any(|e| e.as_bytes() == key)
            || self.prefixes.iter().any(|p| key.starts_with(p.as_bytes()))
    }

    /// Whether a key *known only by prefix* (e.g. the literal first operand
    /// of `concat(b"score:", id)`) may address confidential data. True when
    /// the prefix extends a confidential prefix, or is itself a prefix of
    /// any confidential key/prefix — the conservative direction for a
    /// linter deciding whether a read is a taint source.
    pub fn prefix_overlaps_confidential(&self, prefix: &[u8]) -> bool {
        self.prefixes
            .iter()
            .any(|p| prefix.starts_with(p.as_bytes()) || p.as_bytes().starts_with(prefix))
            || self.exact.iter().any(|e| e.as_bytes().starts_with(prefix))
    }

    fn add(&mut self, name: &str) {
        if !self.exact.iter().any(|e| e == name) {
            self.exact.push(name.to_string());
            self.prefixes.push(format!("{name}:"));
        }
    }
}

impl Schema {
    /// Derive the confidential storage-key map (see [`ConfidentialKeys`]).
    ///
    /// Walks every table reachable from the root. A `(confidential)`
    /// composite field marks its whole subtree confidential, matching the
    /// codec's recursive sealing ("parsed recursively, and all the
    /// primitive data in it will be set confidential").
    pub fn confidential_keys(&self) -> ConfidentialKeys {
        let mut keys = ConfidentialKeys::default();
        let mut visited = std::collections::HashSet::new();
        self.walk_confidential(&self.root_type, false, &mut keys, &mut visited);
        keys
    }

    fn walk_confidential(
        &self,
        table: &str,
        inherited: bool,
        keys: &mut ConfidentialKeys,
        visited: &mut std::collections::HashSet<(String, bool)>,
    ) {
        if !visited.insert((table.to_string(), inherited)) {
            return;
        }
        let Some(t) = self.table(table) else { return };
        for f in &t.fields {
            let conf = inherited || f.confidential;
            if conf {
                keys.add(&f.name);
            }
            match &f.ty {
                FieldType::Table(inner) => self.walk_confidential(inner, conf, keys, visited),
                FieldType::Vector(inner) => {
                    if let FieldType::Table(inner) = inner.as_ref() {
                        self.walk_confidential(inner, conf, keys, visited)
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_type(
    ty: &FieldType,
    names: &HashMap<&str, &Table>,
    t: &Table,
    f: &Field,
) -> Result<(), SchemaError> {
    match ty {
        FieldType::Scalar(_) | FieldType::Str => Ok(()),
        FieldType::Table(name) => {
            if names.contains_key(name.as_str()) {
                Ok(())
            } else {
                Err(SchemaError::UnknownTable(name.clone()))
            }
        }
        FieldType::Vector(inner) => {
            if matches!(inner.as_ref(), FieldType::Vector(_)) {
                Err(SchemaError::NestedVector(t.name.clone(), f.name.clone()))
            } else {
                check_type(inner, names, t, f)
            }
        }
    }
}

/// Schema validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two tables with the same name.
    DuplicateTable,
    /// A field declared twice in one table.
    DuplicateField(String, String),
    /// A field references an undefined table.
    UnknownTable(String),
    /// `root_type` names an undefined table.
    UnknownRoot(String),
    /// `map` on a non-vector-of-tables field.
    BadMapField(String, String),
    /// `map` element table's first field is not a string key.
    BadMapKey(String, String),
    /// `[[T]]` is not supported.
    NestedVector(String, String),
    /// `map`/`confidential` used without an `attribute` declaration.
    UndeclaredAttribute(String),
    /// `access` on a field that is not `confidential`.
    AccessOnPublicField(String, String),
    /// Parser-level syntax error with line info.
    Syntax(String, usize),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::DuplicateTable => f.write_str("duplicate table name"),
            SchemaError::DuplicateField(t, fld) => write!(f, "duplicate field {t}.{fld}"),
            SchemaError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            SchemaError::UnknownRoot(n) => write!(f, "root_type `{n}` is not defined"),
            SchemaError::BadMapField(t, fld) => {
                write!(f, "map attribute on {t}.{fld} requires [Table] type")
            }
            SchemaError::BadMapKey(t, fld) => write!(
                f,
                "map element of {t}.{fld} must have a string first field as key"
            ),
            SchemaError::NestedVector(t, fld) => write!(f, "nested vectors at {t}.{fld}"),
            SchemaError::UndeclaredAttribute(fld) => {
                write!(f, "attribute on `{fld}` not declared via `attribute`")
            }
            SchemaError::AccessOnPublicField(t, fld) => {
                write!(f, "access attribute on non-confidential field {t}.{fld}")
            }
            SchemaError::Syntax(msg, line) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> Schema {
        Schema {
            attributes: vec!["map".into(), "confidential".into()],
            tables: vec![Table {
                name: "Root".into(),
                fields: vec![Field {
                    name: "x".into(),
                    ty: FieldType::Scalar(ScalarType::ULong),
                    confidential: false,
                    map: false,
                    access_role: None,
                }],
            }],
            root_type: "Root".into(),
        }
    }

    #[test]
    fn minimal_validates() {
        minimal().validate().unwrap();
    }

    #[test]
    fn unknown_root_rejected() {
        let mut s = minimal();
        s.root_type = "Nope".into();
        assert_eq!(s.validate(), Err(SchemaError::UnknownRoot("Nope".into())));
    }

    #[test]
    fn unknown_table_reference_rejected() {
        let mut s = minimal();
        s.tables[0].fields.push(Field {
            name: "t".into(),
            ty: FieldType::Table("Missing".into()),
            confidential: false,
            map: false,
            access_role: None,
        });
        assert_eq!(
            s.validate(),
            Err(SchemaError::UnknownTable("Missing".into()))
        );
    }

    #[test]
    fn map_requires_vector_of_tables_with_string_key() {
        let mut s = minimal();
        s.tables[0].fields.push(Field {
            name: "m".into(),
            ty: FieldType::Scalar(ScalarType::Int),
            confidential: false,
            map: true,
            access_role: None,
        });
        assert!(matches!(s.validate(), Err(SchemaError::BadMapField(..))));
    }

    #[test]
    fn undeclared_attribute_rejected() {
        let mut s = minimal();
        s.attributes.clear();
        s.tables[0].fields[0].confidential = true;
        assert!(matches!(
            s.validate(),
            Err(SchemaError::UndeclaredAttribute(_))
        ));
    }

    #[test]
    fn confidential_keys_cover_exact_and_map_prefix_forms() {
        let s = crate::parse_schema(
            r#"
            attribute "confidential";
            attribute "map";
            table Position { account: string; amount: ulong(confidential); }
            table Root {
                pool_ceiling: ulong;
                score: [Position](map, confidential);
                inst: [Position](map);
            }
            root_type Root;
            "#,
        )
        .unwrap();
        let keys = s.confidential_keys();
        // `score` is confidential (and recursively, its element fields).
        assert!(keys.key_is_confidential(b"score:asset-7"));
        assert!(keys.key_is_confidential(b"amount"));
        assert!(keys.key_is_confidential(b"account:alice")); // inherited via score
                                                             // `pool_ceiling` and `inst` are public.
        assert!(!keys.key_is_confidential(b"pool_ceiling"));
        assert!(!keys.key_is_confidential(b"inst:bank-1"));
        // Prefix-overlap is conservative in both directions.
        assert!(keys.prefix_overlaps_confidential(b"score:"));
        assert!(keys.prefix_overlaps_confidential(b"sco"));
        assert!(!keys.prefix_overlaps_confidential(b"inst:"));
    }

    #[test]
    fn empty_schema_has_no_confidential_keys() {
        assert!(minimal().confidential_keys().is_empty());
    }

    #[test]
    fn scalar_names() {
        assert_eq!(ScalarType::from_name("ulong"), Some(ScalarType::ULong));
        assert_eq!(ScalarType::from_name("ubyte"), Some(ScalarType::UByte));
        assert_eq!(ScalarType::from_name("float"), None);
        assert!(ScalarType::Long.is_signed());
        assert!(!ScalarType::ULong.is_signed());
    }
}
