//! Dynamic values conforming to a CCLe schema.

use crate::schema::*;

/// A dynamic value. Tables are field-name → value maps; `map`-attributed
/// fields use [`Value::Map`] with string keys ("inserted in the runtime",
/// paper Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer (ubyte/ushort/uint/ulong).
    UInt(u64),
    /// Signed integer (byte/short/int/long).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// A table instance: (field name, value) pairs in schema order.
    Table(Vec<(String, Value)>),
    /// A plain vector.
    Vector(Vec<Value>),
    /// A `map` field: string key → table value, insertion order.
    Map(Vec<(String, Value)>),
    /// A confidential subtree present only in ciphertext (the audit view —
    /// what a reader *without* `k_states` sees).
    Encrypted(Vec<u8>),
}

impl Value {
    /// Table field lookup.
    pub fn get(&self, field: &str) -> Option<&Value> {
        match self {
            Value::Table(fields) => fields.iter().find(|(n, _)| n == field).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Map entry lookup.
    pub fn get_key(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable map entry lookup.
    pub fn get_key_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Map(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a map entry.
    pub fn insert_key(&mut self, key: &str, value: Value) {
        if let Value::Map(entries) = self {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
    }

    /// As u64, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// As str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether any [`Value::Encrypted`] leaf remains (audit view check).
    pub fn has_encrypted(&self) -> bool {
        match self {
            Value::Encrypted(_) => true,
            Value::Table(fs) => fs.iter().any(|(_, v)| v.has_encrypted()),
            Value::Vector(vs) => vs.iter().any(|v| v.has_encrypted()),
            Value::Map(es) => es.iter().any(|(_, v)| v.has_encrypted()),
            _ => false,
        }
    }
}

/// Check that `value` conforms to `ty` within `schema`. `Encrypted` leaves
/// are accepted anywhere a confidential field is expected.
pub fn conforms(schema: &Schema, ty: &FieldType, value: &Value) -> bool {
    match (ty, value) {
        (_, Value::Encrypted(_)) => true,
        (FieldType::Scalar(s), Value::UInt(_)) => !s.is_signed(),
        (FieldType::Scalar(s), Value::Int(_)) => s.is_signed(),
        (FieldType::Scalar(ScalarType::Bool), Value::Bool(_)) => true,
        (FieldType::Str, Value::Str(_)) => true,
        (FieldType::Table(name), Value::Table(fields)) => {
            let Some(table) = schema.table(name) else {
                return false;
            };
            fields.len() == table.fields.len()
                && table.fields.iter().zip(fields).all(|(f, (n, v))| {
                    &f.name == n
                        && if f.map {
                            matches!(v, Value::Map(_) | Value::Encrypted(_))
                                && map_conforms(schema, &f.ty, v)
                        } else {
                            conforms(schema, &f.ty, v)
                        }
                })
        }
        (FieldType::Vector(inner), Value::Vector(items)) => {
            items.iter().all(|v| conforms(schema, inner, v))
        }
        _ => false,
    }
}

fn map_conforms(schema: &Schema, ty: &FieldType, value: &Value) -> bool {
    let FieldType::Vector(inner) = ty else {
        return false;
    };
    match value {
        Value::Encrypted(_) => true,
        Value::Map(entries) => entries.iter().all(|(_, v)| conforms(schema, inner, v)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            attribute "map";
            attribute "confidential";
            table Asset { asset_id: string; amount: ulong(confidential); }
            table Account {
              user_id: string;
              assets: [Asset](map);
            }
            root_type Account;
            "#,
        )
        .unwrap()
    }

    fn account() -> Value {
        Value::Table(vec![
            ("user_id".into(), Value::Str("u1".into())),
            (
                "assets".into(),
                Value::Map(vec![(
                    "bond-1".into(),
                    Value::Table(vec![
                        ("asset_id".into(), Value::Str("bond-1".into())),
                        ("amount".into(), Value::UInt(500)),
                    ]),
                )]),
            ),
        ])
    }

    #[test]
    fn conforming_value_accepted() {
        let s = schema();
        assert!(conforms(
            &s,
            &FieldType::Table("Account".into()),
            &account()
        ));
    }

    #[test]
    fn wrong_scalar_signedness_rejected() {
        let s = schema();
        let mut v = account();
        if let Value::Table(fs) = &mut v {
            fs[0].1 = Value::Int(-1); // user_id should be Str
        }
        assert!(!conforms(&s, &FieldType::Table("Account".into()), &v));
    }

    #[test]
    fn map_accessors() {
        let v = account();
        let assets = v.get("assets").unwrap().clone();
        assert!(assets.get_key("bond-1").is_some());
        assert!(assets.get_key("bond-2").is_none());
        if let Some(assets) = v.get("assets") {
            assert_eq!(
                assets.get_key("bond-1").unwrap().get("amount").unwrap(),
                &Value::UInt(500)
            );
        }
        // insert + update
        let assets = Value::Map(vec![]);
        let mut m = assets;
        m.insert_key("k", Value::UInt(1));
        m.insert_key("k", Value::UInt(2));
        assert_eq!(m.get_key("k"), Some(&Value::UInt(2)));
    }

    #[test]
    fn encrypted_leaf_conforms_anywhere() {
        let s = schema();
        let v = Value::Table(vec![
            ("user_id".into(), Value::Str("u".into())),
            ("assets".into(), Value::Encrypted(vec![1, 2, 3])),
        ]);
        assert!(conforms(&s, &FieldType::Table("Account".into()), &v));
        assert!(v.has_encrypted());
        assert!(!account().has_encrypted());
    }
}
