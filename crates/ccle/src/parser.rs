//! Parser for the CCLe schema language (Flatbuffers-IDL shaped, extended
//! with the `confidential` and `map` field attributes of paper §4).

use crate::schema::*;
use crate::SchemaError;

/// Parse CCLe schema source.
pub fn parse_schema(src: &str) -> Result<Schema, SchemaError> {
    let mut p = P {
        toks: tokenize(src)?,
        pos: 0,
    };
    let mut attributes = Vec::new();
    let mut tables = Vec::new();
    let mut root_type = None;
    while !p.at_end() {
        match p.peek_word() {
            Some("attribute") => {
                p.bump();
                let name = p.expect_string()?;
                p.expect_punct(";")?;
                attributes.push(name);
            }
            Some("table") => {
                p.bump();
                tables.push(p.table()?);
            }
            Some("root_type") => {
                p.bump();
                let name = p.expect_ident()?;
                p.expect_punct(";")?;
                root_type = Some(name);
            }
            other => {
                return Err(SchemaError::Syntax(
                    format!("expected `attribute`, `table` or `root_type`, got {other:?}"),
                    p.line(),
                ))
            }
        }
    }
    let schema = Schema {
        attributes,
        tables,
        root_type: root_type.ok_or_else(|| SchemaError::Syntax("missing root_type".into(), 0))?,
    };
    schema.validate()?;
    Ok(schema)
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Word(String),
    Str(String),
    Punct(char),
}

fn tokenize(src: &str) -> Result<Vec<(T, usize)>, SchemaError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SchemaError::Syntax("unterminated string".into(), line));
                }
                out.push((T::Str(src[start..j].to_string()), line));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((T::Word(src[start..i].to_string()), line));
            }
            c @ (b'{' | b'}' | b'[' | b']' | b'(' | b')' | b':' | b';' | b',') => {
                out.push((T::Punct(c as char), line));
                i += 1;
            }
            other => {
                return Err(SchemaError::Syntax(
                    format!("unexpected character `{}`", other as char),
                    line,
                ))
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(T, usize)>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.1)
    }

    fn peek_word(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some((T::Word(w), _)) => Some(w),
            _ => None,
        }
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn expect_ident(&mut self) -> Result<String, SchemaError> {
        let line = self.line();
        match self.toks.get(self.pos) {
            Some((T::Word(w), _)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => Err(SchemaError::Syntax(
                format!("expected identifier, got {other:?}"),
                line,
            )),
        }
    }

    fn expect_string(&mut self) -> Result<String, SchemaError> {
        let line = self.line();
        match self.toks.get(self.pos) {
            Some((T::Str(s), _)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(SchemaError::Syntax(
                format!("expected string, got {other:?}"),
                line,
            )),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), SchemaError> {
        let line = self.line();
        let want = p.chars().next().unwrap();
        match self.toks.get(self.pos) {
            Some((T::Punct(c), _)) if *c == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(SchemaError::Syntax(
                format!("expected `{p}`, got {other:?}"),
                line,
            )),
        }
    }

    fn eat_punct(&mut self, p: char) -> bool {
        if matches!(self.toks.get(self.pos), Some((T::Punct(c), _)) if *c == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn table(&mut self) -> Result<Table, SchemaError> {
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct('}') {
            fields.push(self.field()?);
        }
        Ok(Table { name, fields })
    }

    fn field(&mut self) -> Result<Field, SchemaError> {
        let name = self.expect_ident()?;
        self.expect_punct(":")?;
        let ty = self.field_type()?;
        let mut confidential = false;
        let mut map = false;
        let mut access_role = None;
        if self.eat_punct('(') {
            loop {
                let attr = self.expect_ident()?;
                match attr.as_str() {
                    "confidential" => confidential = true,
                    "map" => map = true,
                    "access" => {
                        self.expect_punct("(")?;
                        access_role = Some(self.expect_string()?);
                        self.expect_punct(")")?;
                    }
                    other => {
                        return Err(SchemaError::Syntax(
                            format!("unknown attribute `{other}`"),
                            self.line(),
                        ))
                    }
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct(";")?;
        Ok(Field {
            name,
            ty,
            confidential,
            map,
            access_role,
        })
    }

    fn field_type(&mut self) -> Result<FieldType, SchemaError> {
        if self.eat_punct('[') {
            let inner = self.field_type()?;
            self.expect_punct("]")?;
            return Ok(FieldType::Vector(Box::new(inner)));
        }
        let name = self.expect_ident()?;
        if name == "string" {
            return Ok(FieldType::Str);
        }
        if let Some(s) = ScalarType::from_name(&name) {
            return Ok(FieldType::Scalar(s));
        }
        Ok(FieldType::Table(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 1 from the paper, verbatim.
    pub const LISTING_1: &str = r#"
attribute "map";
attribute "confidential";
table Demo {
  owner: string;
  admin: [Administrator];
  account_map: [Account](map);
}
table Administrator {
  identity: string;
  name: string;
}
table Account {
  user_id: string;
  organization: string(confidential);
  asset_map: [Asset](map, confidential);
}
table Asset {
  type: ubyte;
  amount: ulong;
}
root_type Demo;
"#;

    #[test]
    fn paper_listing_1_parses() {
        // The paper's Asset map key is the asset `type`; our map rule wants
        // a string first field, so give Asset a string key the way the
        // runtime inserts them ("inserted in the runtime", Fig. 4).
        let src = LISTING_1.replace("table Asset {", "table Asset {\n  asset_id: string;");
        let s = parse_schema(&src).unwrap();
        assert_eq!(s.root_type, "Demo");
        assert_eq!(s.tables.len(), 4);
        let account = s.table("Account").unwrap();
        assert!(account.field("organization").unwrap().confidential);
        let asset_map = account.field("asset_map").unwrap();
        assert!(asset_map.confidential && asset_map.map);
        let owner = s.root().field("owner").unwrap();
        assert!(!owner.confidential);
    }

    #[test]
    fn attributes_must_be_declared() {
        let src = r#"
            table T { x: int(confidential); }
            root_type T;
        "#;
        assert!(matches!(
            parse_schema(src),
            Err(SchemaError::UndeclaredAttribute(_))
        ));
    }

    #[test]
    fn missing_root_type_is_error() {
        assert!(parse_schema("table T { x: int; }").is_err());
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let s = parse_schema("// header\ntable T { // inline\n  x: long; }\nroot_type T;").unwrap();
        assert_eq!(
            s.tables[0].fields[0].ty,
            FieldType::Scalar(ScalarType::Long)
        );
    }

    #[test]
    fn vector_and_table_types() {
        let s = parse_schema(
            "table A { s: string; }\ntable B { items: [A]; names: [string]; }\nroot_type B;",
        )
        .unwrap();
        let b = s.table("B").unwrap();
        assert_eq!(
            b.field("items").unwrap().ty,
            FieldType::Vector(Box::new(FieldType::Table("A".into())))
        );
        assert_eq!(
            b.field("names").unwrap().ty,
            FieldType::Vector(Box::new(FieldType::Str))
        );
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = parse_schema("table T {\n  x ; \n}\nroot_type T;").unwrap_err();
        match err {
            SchemaError::Syntax(_, line) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }
}
