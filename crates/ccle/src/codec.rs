//! Schema-driven serialization with field-level encryption.
//!
//! The encoding is a compact schema-driven TLV (the wire role Flatbuffers
//! plays in the paper). Encryption granularity follows §4: the *topmost*
//! `confidential` field is the sealing unit — everything beneath it is
//! encrypted wholesale ("the composite data types will be parsed
//! recursively, and all the primitive data in it will be set
//! confidential"). Every sealed blob is bound by AAD to the contract
//! context **and the field path**, so a malicious host cannot splice the
//! ciphertext of one field (or one contract) into another — D-Protocol
//! formula (3) with path separation.

use crate::schema::*;
use crate::value::{conforms, Value};
use confide_crypto::drbg::HmacDrbg;
use confide_crypto::gcm::AesGcm;
use std::collections::HashMap;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended early.
    Truncated,
    /// Unknown tag or tag inconsistent with the schema position.
    BadTag(u8),
    /// Value does not conform to the schema.
    Mismatch(String),
    /// AEAD failure (wrong key, tampered blob, or spliced field path).
    Crypto,
    /// Encoding confidential plaintext without a key context.
    MissingKey,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::BadTag(t) => write!(f, "bad tag {t}"),
            CodecError::Mismatch(m) => write!(f, "schema mismatch: {m}"),
            CodecError::Crypto => f.write_str("field decryption failed"),
            CodecError::MissingKey => f.write_str("confidential field but no key context"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Key + AAD context for sealing/opening confidential fields.
///
/// The full (enclave-side) context holds `k_states` and can derive every
/// role subkey; a [`EncryptionContext::role_only`] context holds one
/// role's subkey — the §4 "data access control" extension: release
/// `role_key(k_states, "auditor")` to the audit firm and they can open
/// exactly the fields marked `access("auditor")`, nothing else.
pub struct EncryptionContext {
    /// Master key cipher (None for role-only contexts).
    gcm: Option<AesGcm>,
    /// k_states, kept to derive role subkeys lazily.
    master: Option<[u8; 32]>,
    /// Role subkey ciphers available to this holder.
    role_gcms: HashMap<String, AesGcm>,
    /// Base AAD: contract identity, owner, security version (formula (3)).
    aad: Vec<u8>,
    rng: HmacDrbg,
}

impl EncryptionContext {
    /// Build from the consortium state root key `k_states` and the
    /// contract-scoped AAD. `nonce_seed` feeds the nonce DRBG.
    pub fn new(k_states: &[u8; 32], aad: &[u8], nonce_seed: u64) -> EncryptionContext {
        EncryptionContext {
            gcm: Some(AesGcm::new(k_states).expect("32-byte key")),
            master: Some(*k_states),
            role_gcms: HashMap::new(),
            aad: aad.to_vec(),
            rng: HmacDrbg::new(&[&nonce_seed.to_le_bytes()[..], aad].concat()),
        }
    }

    /// Derive the subkey for `role` — what the enclave releases to a class
    /// of authorized parties.
    pub fn role_key(k_states: &[u8; 32], role: &str) -> [u8; 32] {
        confide_crypto::hkdf::derive_key32(role.as_bytes(), k_states, b"confide/ccle/role-key-v1")
    }

    /// A context holding only one role's subkey: can open (and re-seal)
    /// exactly the fields marked `access(role)`.
    pub fn role_only(
        role: &str,
        role_key: &[u8; 32],
        aad: &[u8],
        nonce_seed: u64,
    ) -> EncryptionContext {
        let mut role_gcms = HashMap::new();
        role_gcms.insert(
            role.to_string(),
            AesGcm::new(role_key).expect("32-byte role key"),
        );
        EncryptionContext {
            gcm: None,
            master: None,
            role_gcms,
            aad: aad.to_vec(),
            rng: HmacDrbg::new(&[&nonce_seed.to_le_bytes()[..], aad, role.as_bytes()].concat()),
        }
    }

    /// The cipher for a field's protection domain, deriving role subkeys
    /// from the master on demand. `None` when this holder lacks the key.
    fn cipher_for(&mut self, role: Option<&str>) -> Option<&AesGcm> {
        match role {
            None => self.gcm.as_ref(),
            Some(r) => {
                if !self.role_gcms.contains_key(r) {
                    let master = self.master?;
                    let key = Self::role_key(&master, r);
                    self.role_gcms
                        .insert(r.to_string(), AesGcm::new(&key).expect("role key"));
                }
                self.role_gcms.get(r)
            }
        }
    }

    fn field_aad(&self, path: &str) -> Vec<u8> {
        let mut aad = Vec::with_capacity(self.aad.len() + path.len() + 1);
        aad.extend_from_slice(&self.aad);
        aad.push(0);
        aad.extend_from_slice(path.as_bytes());
        aad
    }

    fn seal(
        &mut self,
        path: &str,
        role: Option<&str>,
        plain: &[u8],
    ) -> Result<Vec<u8>, CodecError> {
        let nonce = self.rng.gen_nonce();
        let aad = self.field_aad(path);
        let Some(gcm) = self.cipher_for(role) else {
            return Err(CodecError::MissingKey);
        };
        let mut blob = Vec::with_capacity(12 + plain.len() + 16);
        blob.extend_from_slice(&nonce);
        blob.extend_from_slice(&gcm.seal(&nonce, &aad, plain));
        Ok(blob)
    }

    /// Ok(Some(plain)) on success, Ok(None) when this holder lacks the
    /// key for the field's domain, Err on tamper/wrong key.
    fn open(
        &mut self,
        path: &str,
        role: Option<&str>,
        blob: &[u8],
    ) -> Result<Option<Vec<u8>>, CodecError> {
        if blob.len() < 12 {
            return Err(CodecError::Truncated);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&blob[..12]);
        let aad = self.field_aad(path);
        let Some(gcm) = self.cipher_for(role) else {
            return Ok(None);
        };
        gcm.open(&nonce, &aad, &blob[12..])
            .map(Some)
            .map_err(|_| CodecError::Crypto)
    }
}

// ---- varint helpers (LEB128) ----

fn write_u(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_u(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 70 {
            return Err(CodecError::BadTag(b));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---- tags ----
const TAG_UINT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_TABLE: u8 = 4;
const TAG_VECTOR: u8 = 5;
const TAG_MAP: u8 = 6;
const TAG_ENCRYPTED: u8 = 7;

/// Encode `value` (which must conform to `schema`'s root) with
/// confidential fields sealed through `ctx`. Pass `None` only when the
/// value's confidential positions already hold [`Value::Encrypted`] blobs
/// (re-serializing an audit view).
pub fn encode(
    schema: &Schema,
    value: &Value,
    mut ctx: Option<&mut EncryptionContext>,
) -> Result<Vec<u8>, CodecError> {
    let root_ty = FieldType::Table(schema.root_type.clone());
    if !conforms(schema, &root_ty, value) {
        return Err(CodecError::Mismatch("root value".into()));
    }
    let mut out = Vec::with_capacity(256);
    encode_node(
        schema,
        &root_ty,
        false,
        None,
        value,
        &schema.root_type.clone(),
        &mut ctx,
        &mut out,
        false,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
// `role` is threaded through unchanged so nested sealed tables derive the
// same role subkey as their parent — intentional recursion-only use.
#[allow(clippy::only_used_in_recursion)]
fn encode_node(
    schema: &Schema,
    ty: &FieldType,
    is_map: bool,
    role: Option<&str>,
    value: &Value,
    path: &str,
    ctx: &mut Option<&mut EncryptionContext>,
    out: &mut Vec<u8>,
    inside_sealed: bool,
) -> Result<(), CodecError> {
    if let Value::Encrypted(blob) = value {
        // Pass an existing ciphertext through unchanged.
        out.push(TAG_ENCRYPTED);
        write_u(out, blob.len() as u64);
        out.extend_from_slice(blob);
        return Ok(());
    }
    match (ty, value) {
        (FieldType::Scalar(_), Value::UInt(v)) => {
            out.push(TAG_UINT);
            write_u(out, *v);
        }
        (FieldType::Scalar(ScalarType::Bool), Value::Bool(b)) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        (FieldType::Scalar(_), Value::Int(v)) => {
            out.push(TAG_INT);
            write_u(out, zigzag(*v));
        }
        (FieldType::Str, Value::Str(s)) => {
            out.push(TAG_STR);
            write_u(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        (FieldType::Table(name), Value::Table(fields)) => {
            let table = schema
                .table(name)
                .ok_or_else(|| CodecError::Mismatch(format!("unknown table {name}")))?;
            out.push(TAG_TABLE);
            write_u(out, fields.len() as u64);
            for (field, (_, v)) in table.fields.iter().zip(fields) {
                let child_path = format!("{path}.{}", field.name);
                if field.confidential && !inside_sealed && !matches!(v, Value::Encrypted(_)) {
                    // Topmost confidential field: seal the plain encoding
                    // of the whole subtree, under the field's protection
                    // domain (master key, or a role subkey).
                    let field_role = field.access_role.as_deref();
                    let mut plain = Vec::new();
                    encode_node(
                        schema,
                        &field.ty,
                        field.map,
                        field_role,
                        v,
                        &child_path,
                        ctx,
                        &mut plain,
                        true,
                    )?;
                    let Some(c) = ctx.as_deref_mut() else {
                        return Err(CodecError::MissingKey);
                    };
                    let blob = c.seal(&child_path, field_role, &plain)?;
                    out.push(TAG_ENCRYPTED);
                    write_u(out, blob.len() as u64);
                    out.extend_from_slice(&blob);
                } else {
                    encode_node(
                        schema,
                        &field.ty,
                        field.map,
                        field.access_role.as_deref(),
                        v,
                        &child_path,
                        ctx,
                        out,
                        inside_sealed,
                    )?;
                }
            }
        }
        (FieldType::Vector(inner), Value::Map(entries)) if is_map => {
            out.push(TAG_MAP);
            write_u(out, entries.len() as u64);
            for (key, v) in entries {
                write_u(out, key.len() as u64);
                out.extend_from_slice(key.as_bytes());
                encode_node(schema, inner, false, role, v, path, ctx, out, inside_sealed)?;
            }
        }
        (FieldType::Vector(inner), Value::Vector(items)) => {
            out.push(TAG_VECTOR);
            write_u(out, items.len() as u64);
            for v in items {
                encode_node(schema, inner, false, role, v, path, ctx, out, inside_sealed)?;
            }
        }
        (t, v) => {
            return Err(CodecError::Mismatch(format!(
                "at {path}: type {t:?} vs value {v:?}"
            )))
        }
    }
    Ok(())
}

/// Decode with `ctx`: confidential fields whose keys the context holds
/// are opened and verified; fields in protection domains the holder lacks
/// remain [`Value::Encrypted`] (a role-only auditor sees exactly their
/// slice of the state).
pub fn decode(schema: &Schema, bytes: &[u8], ctx: &EncryptionContext) -> Result<Value, CodecError> {
    // Cloning the key material into a scratch context lets role subkeys be
    // derived lazily during decoding without mutating the caller's ctx.
    let mut scratch = EncryptionContext {
        gcm: ctx.gcm.clone(),
        master: ctx.master,
        role_gcms: ctx.role_gcms.clone(),
        aad: ctx.aad.clone(),
        rng: ctx.rng.clone(),
    };
    decode_inner(schema, bytes, Some(&mut scratch))
}

/// Decode the public (audit) view: confidential fields come back as
/// [`Value::Encrypted`] leaves — readable structure, opaque secrets.
pub fn decode_public(schema: &Schema, bytes: &[u8]) -> Result<Value, CodecError> {
    decode_inner(schema, bytes, None)
}

fn decode_inner(
    schema: &Schema,
    bytes: &[u8],
    mut ctx: Option<&mut EncryptionContext>,
) -> Result<Value, CodecError> {
    let mut pos = 0usize;
    let root_ty = FieldType::Table(schema.root_type.clone());
    let v = decode_node(
        schema,
        &root_ty,
        false,
        None,
        bytes,
        &mut pos,
        &schema.root_type.clone(),
        &mut ctx,
    )?;
    if pos != bytes.len() {
        return Err(CodecError::Truncated);
    }
    Ok(v)
}

#[allow(clippy::too_many_arguments)]
fn decode_node(
    schema: &Schema,
    ty: &FieldType,
    is_map: bool,
    role: Option<&str>,
    buf: &[u8],
    pos: &mut usize,
    path: &str,
    ctx: &mut Option<&mut EncryptionContext>,
) -> Result<Value, CodecError> {
    let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_ENCRYPTED => {
            let len = read_u(buf, pos)? as usize;
            let blob = buf
                .get(*pos..*pos + len)
                .ok_or(CodecError::Truncated)?
                .to_vec();
            *pos += len;
            match ctx.as_deref_mut() {
                Some(c) => match c.open(path, role, &blob)? {
                    Some(plain) => {
                        let mut inner_pos = 0usize;
                        let v = decode_node(
                            schema,
                            ty,
                            is_map,
                            role,
                            &plain,
                            &mut inner_pos,
                            path,
                            ctx,
                        )?;
                        if inner_pos != plain.len() {
                            return Err(CodecError::Truncated);
                        }
                        Ok(v)
                    }
                    // The holder lacks this protection domain's key.
                    None => Ok(Value::Encrypted(blob)),
                },
                None => Ok(Value::Encrypted(blob)),
            }
        }
        TAG_UINT => {
            let v = read_u(buf, pos)?;
            Ok(Value::UInt(v))
        }
        TAG_INT => {
            let v = read_u(buf, pos)?;
            Ok(Value::Int(unzigzag(v)))
        }
        TAG_BOOL => {
            let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
            *pos += 1;
            Ok(Value::Bool(b != 0))
        }
        TAG_STR => {
            let len = read_u(buf, pos)? as usize;
            let s = buf.get(*pos..*pos + len).ok_or(CodecError::Truncated)?;
            *pos += len;
            Ok(Value::Str(
                String::from_utf8(s.to_vec()).map_err(|_| CodecError::Mismatch("utf8".into()))?,
            ))
        }
        TAG_TABLE => {
            let FieldType::Table(name) = ty else {
                return Err(CodecError::Mismatch(format!("unexpected table at {path}")));
            };
            let table = schema
                .table(name)
                .ok_or_else(|| CodecError::Mismatch(format!("unknown table {name}")))?;
            let count = read_u(buf, pos)? as usize;
            if count != table.fields.len() {
                return Err(CodecError::Mismatch(format!(
                    "table {name}: {count} fields on wire, schema has {}",
                    table.fields.len()
                )));
            }
            let mut fields = Vec::with_capacity(count);
            for field in &table.fields {
                let child_path = format!("{path}.{}", field.name);
                let field_role = field.access_role.as_deref().or(role);
                let v = decode_node(
                    schema,
                    &field.ty,
                    field.map,
                    field_role,
                    buf,
                    pos,
                    &child_path,
                    ctx,
                )?;
                fields.push((field.name.clone(), v));
            }
            Ok(Value::Table(fields))
        }
        TAG_VECTOR => {
            let FieldType::Vector(inner) = ty else {
                return Err(CodecError::Mismatch(format!("unexpected vector at {path}")));
            };
            let count = read_u(buf, pos)? as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(decode_node(
                    schema, inner, false, role, buf, pos, path, ctx,
                )?);
            }
            Ok(Value::Vector(items))
        }
        TAG_MAP => {
            let FieldType::Vector(inner) = ty else {
                return Err(CodecError::Mismatch(format!("unexpected map at {path}")));
            };
            if !is_map {
                return Err(CodecError::Mismatch(format!("map tag at non-map {path}")));
            }
            let count = read_u(buf, pos)? as usize;
            let mut entries = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let klen = read_u(buf, pos)? as usize;
                let key = buf.get(*pos..*pos + klen).ok_or(CodecError::Truncated)?;
                let key = String::from_utf8(key.to_vec())
                    .map_err(|_| CodecError::Mismatch("utf8 key".into()))?;
                *pos += klen;
                let v = decode_node(schema, inner, false, role, buf, pos, path, ctx)?;
                entries.push((key, v));
            }
            Ok(Value::Map(entries))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    fn paper_schema() -> Schema {
        parse_schema(
            r#"
            attribute "map";
            attribute "confidential";
            table Demo {
              owner: string;
              admin: [Administrator];
              account_map: [Account](map);
            }
            table Administrator {
              identity: string;
              name: string;
            }
            table Account {
              user_id: string;
              organization: string(confidential);
              asset_map: [Asset](map, confidential);
            }
            table Asset {
              asset_id: string;
              type: ubyte;
              amount: ulong;
            }
            root_type Demo;
            "#,
        )
        .unwrap()
    }

    fn demo_value() -> Value {
        let asset = |id: &str, ty: u64, amount: u64| {
            Value::Table(vec![
                ("asset_id".into(), Value::Str(id.into())),
                ("type".into(), Value::UInt(ty)),
                ("amount".into(), Value::UInt(amount)),
            ])
        };
        let account = |uid: &str, org: &str, assets: Vec<(String, Value)>| {
            Value::Table(vec![
                ("user_id".into(), Value::Str(uid.into())),
                ("organization".into(), Value::Str(org.into())),
                ("asset_map".into(), Value::Map(assets)),
            ])
        };
        Value::Table(vec![
            ("owner".into(), Value::Str("consortium-admin".into())),
            (
                "admin".into(),
                Value::Vector(vec![Value::Table(vec![
                    ("identity".into(), Value::Str("0xadmin".into())),
                    ("name".into(), Value::Str("ops".into())),
                ])]),
            ),
            (
                "account_map".into(),
                Value::Map(vec![
                    (
                        "alice".into(),
                        account(
                            "alice",
                            "bank-A",
                            vec![("ar-1".into(), asset("ar-1", 1, 1000))],
                        ),
                    ),
                    (
                        "bob".into(),
                        account("bob", "bank-B", vec![("ar-2".into(), asset("ar-2", 2, 50))]),
                    ),
                ]),
            ),
        ])
    }

    fn ctx() -> EncryptionContext {
        EncryptionContext::new(&[7u8; 32], b"contract:demo|owner:anyone|sv:1", 42)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let schema = paper_schema();
        let value = demo_value();
        let mut c = ctx();
        let bytes = encode(&schema, &value, Some(&mut c)).unwrap();
        let back = decode(&schema, &bytes, &c).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn audit_view_shows_public_hides_confidential() {
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        let public = decode_public(&schema, &bytes).unwrap();
        // Public fields readable.
        assert_eq!(
            public.get("owner").unwrap().as_str(),
            Some("consortium-admin")
        );
        let alice = public.get("account_map").unwrap().get_key("alice").unwrap();
        assert_eq!(alice.get("user_id").unwrap().as_str(), Some("alice"));
        // Confidential fields opaque.
        assert!(matches!(
            alice.get("organization").unwrap(),
            Value::Encrypted(_)
        ));
        assert!(matches!(
            alice.get("asset_map").unwrap(),
            Value::Encrypted(_)
        ));
        assert!(public.has_encrypted());
    }

    #[test]
    fn audit_view_reencodes_and_still_decrypts() {
        // A node without keys can re-serialize state (e.g. to move it)
        // without breaking the ciphertexts.
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        let public = decode_public(&schema, &bytes).unwrap();
        let re = encode(&schema, &public, None).unwrap();
        let back = decode(&schema, &re, &c).unwrap();
        assert_eq!(back, demo_value());
    }

    #[test]
    fn confidential_without_key_fails() {
        let schema = paper_schema();
        assert_eq!(
            encode(&schema, &demo_value(), None).unwrap_err(),
            CodecError::MissingKey
        );
    }

    #[test]
    fn wrong_key_fails_open() {
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        let wrong = EncryptionContext::new(&[8u8; 32], b"contract:demo|owner:anyone|sv:1", 42);
        assert_eq!(
            decode(&schema, &bytes, &wrong).unwrap_err(),
            CodecError::Crypto
        );
    }

    #[test]
    fn contract_aad_mismatch_fails() {
        // Same key, different contract AAD — splicing across contracts.
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        let other = EncryptionContext::new(&[7u8; 32], b"contract:OTHER|owner:x|sv:1", 42);
        assert_eq!(
            decode(&schema, &bytes, &other).unwrap_err(),
            CodecError::Crypto
        );
    }

    #[test]
    fn field_path_splicing_detected() {
        // Move the ciphertext of `organization` into `asset_map` — the
        // path-bound AAD must reject it even under the right key.
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        let mut public = decode_public(&schema, &bytes).unwrap();
        // Swap the two encrypted blobs inside alice.
        let (org, assets) = {
            let alice = public.get("account_map").unwrap().get_key("alice").unwrap();
            (
                alice.get("organization").unwrap().clone(),
                alice.get("asset_map").unwrap().clone(),
            )
        };
        if let Value::Table(fields) = &mut public {
            if let Some((_, Value::Map(accounts))) =
                fields.iter_mut().find(|(n, _)| n == "account_map")
            {
                if let Some((_, Value::Table(alice))) =
                    accounts.iter_mut().find(|(k, _)| k == "alice")
                {
                    for (n, v) in alice.iter_mut() {
                        if n == "organization" {
                            *v = assets.clone();
                        } else if n == "asset_map" {
                            *v = org.clone();
                        }
                    }
                }
            }
        }
        let spliced = encode(&schema, &public, None).unwrap();
        assert_eq!(
            decode(&schema, &spliced, &c).unwrap_err(),
            CodecError::Crypto
        );
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let schema = paper_schema();
        let mut c = ctx();
        let mut bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        // Flip a late byte (inside some ciphertext).
        let n = bytes.len();
        bytes[n - 3] ^= 1;
        assert!(decode(&schema, &bytes, &c).is_err());
    }

    #[test]
    fn only_sensitive_fields_pay_encryption() {
        // The public part of the encoding is identical across two values
        // differing only in confidential content? Not byte-identical (blob
        // sizes differ) — but a fully-public schema encodes with no
        // ciphertext at all.
        let schema = parse_schema("table T { a: ulong; b: string; }\nroot_type T;").unwrap();
        let v = Value::Table(vec![
            ("a".into(), Value::UInt(5)),
            ("b".into(), Value::Str("public".into())),
        ]);
        let bytes = encode(&schema, &v, None).unwrap();
        assert!(!bytes.contains(&TAG_ENCRYPTED));
        assert_eq!(decode_public(&schema, &bytes).unwrap(), v);
    }

    #[test]
    fn signed_scalars_round_trip() {
        let schema = parse_schema("table T { a: long; b: int; }\nroot_type T;").unwrap();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let val = Value::Table(vec![
                ("a".into(), Value::Int(v)),
                (
                    "b".into(),
                    Value::Int(v.clamp(i32::MIN as i64, i32::MAX as i64)),
                ),
            ]);
            let bytes = encode(&schema, &val, None).unwrap();
            assert_eq!(decode_public(&schema, &bytes).unwrap(), val);
        }
    }

    #[test]
    fn truncation_rejected() {
        let schema = paper_schema();
        let mut c = ctx();
        let bytes = encode(&schema, &demo_value(), Some(&mut c)).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_public(&schema, &bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage too.
        let mut extended = bytes;
        extended.push(0);
        assert!(decode_public(&schema, &extended).is_err());
    }

    #[test]
    fn nonces_are_unique_per_seal() {
        let schema = parse_schema(
            "attribute \"confidential\";\ntable T { s: string(confidential); }\nroot_type T;",
        )
        .unwrap();
        let v = Value::Table(vec![("s".into(), Value::Str("same".into()))]);
        let mut c = EncryptionContext::new(&[1u8; 32], b"aad", 1);
        let b1 = encode(&schema, &v, Some(&mut c)).unwrap();
        let b2 = encode(&schema, &v, Some(&mut c)).unwrap();
        assert_ne!(b1, b2, "re-encryption must not repeat ciphertexts");
        assert_eq!(
            decode(&schema, &b1, &c).unwrap(),
            decode(&schema, &b2, &c).unwrap()
        );
    }

    // ---- §4 extension: access("role") attribute ----

    fn access_schema() -> Schema {
        parse_schema(
            r#"
            attribute "confidential";
            attribute "access";
            table Deal {
              deal_id: string;
              price: ulong(confidential);
              audit_note: string(confidential, access("auditor"));
              regulator_flag: string(confidential, access("regulator"));
            }
            root_type Deal;
            "#,
        )
        .unwrap()
    }

    fn deal() -> Value {
        Value::Table(vec![
            ("deal_id".into(), Value::Str("D-100".into())),
            ("price".into(), Value::UInt(42_000)),
            ("audit_note".into(), Value::Str("checked by KPMG".into())),
            ("regulator_flag".into(), Value::Str("reported".into())),
        ])
    }

    #[test]
    fn role_holder_sees_exactly_their_fields() {
        let schema = access_schema();
        let k_states = [3u8; 32];
        let mut full = EncryptionContext::new(&k_states, b"contract:deals", 7);
        let wire = encode(&schema, &deal(), Some(&mut full)).unwrap();

        // The enclave (master key) sees everything.
        let all = decode(&schema, &wire, &full).unwrap();
        assert_eq!(all, deal());

        // The auditor holds only the auditor role key.
        let auditor_key = EncryptionContext::role_key(&k_states, "auditor");
        let auditor = EncryptionContext::role_only("auditor", &auditor_key, b"contract:deals", 8);
        let view = decode(&schema, &wire, &auditor).unwrap();
        assert_eq!(view.get("deal_id").unwrap().as_str(), Some("D-100"));
        assert_eq!(
            view.get("audit_note").unwrap().as_str(),
            Some("checked by KPMG"),
            "the auditor's field opens"
        );
        assert!(matches!(view.get("price").unwrap(), Value::Encrypted(_)));
        assert!(matches!(
            view.get("regulator_flag").unwrap(),
            Value::Encrypted(_)
        ));
    }

    #[test]
    fn wrong_role_key_cannot_forge_another_domain() {
        let schema = access_schema();
        let k_states = [3u8; 32];
        let mut full = EncryptionContext::new(&k_states, b"contract:deals", 7);
        let wire = encode(&schema, &deal(), Some(&mut full)).unwrap();
        // A malicious auditor registering their key under the regulator
        // role name gets an AEAD failure, not data.
        let auditor_key = EncryptionContext::role_key(&k_states, "auditor");
        let mallory = EncryptionContext::role_only("regulator", &auditor_key, b"contract:deals", 9);
        assert_eq!(
            decode(&schema, &wire, &mallory).unwrap_err(),
            CodecError::Crypto
        );
    }

    #[test]
    fn access_requires_confidential_and_declared_attribute() {
        assert!(matches!(
            parse_schema(
                "attribute \"confidential\";\nattribute \"access\";\ntable T { x: int(access(\"a\")); }\nroot_type T;",
            ),
            Err(crate::SchemaError::AccessOnPublicField(..))
        ));
        assert!(matches!(
            parse_schema(
                "attribute \"confidential\";\ntable T { x: int(confidential, access(\"a\")); }\nroot_type T;",
            ),
            Err(crate::SchemaError::UndeclaredAttribute(_))
        ));
    }

    #[test]
    fn role_keys_are_independent_per_role() {
        let k = [9u8; 32];
        assert_ne!(
            EncryptionContext::role_key(&k, "auditor"),
            EncryptionContext::role_key(&k, "regulator")
        );
        // And not equal to the master.
        assert_ne!(EncryptionContext::role_key(&k, "auditor"), k);
    }
}
