//! Parallel-execution scheduling (§6.2's 4-way / 6-way smart-contract
//! parallel execution).
//!
//! Transactions with the same conflict key (same account hot-spot, same
//! contract partition) must run serially; independent groups run on
//! different worker threads. Assignment is longest-processing-time-first
//! — a standard 4/3-approximation that models a work-stealing executor
//! well.
//!
//! Since PR 4 this module is no longer simulation-only: the same
//! [`assign`] that prices makespans in the PBFT simulator drives the
//! *real* worker pool in `confide_core::node::ConfideNode::
//! execute_block_parallel`, and [`conflict_groups`] is the union-find
//! grouping the executor applies to measured read/write sets. The model
//! and the system measure the same thing.
//!
//! This is exactly why the paper sees "no further improvement when the
//! number of thread increases to 6": once the biggest conflict group
//! dominates, extra workers idle.

/// Scheduling failures on untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// A schedule over zero workers was requested.
    ZeroThreads,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ZeroThreads => f.write_str("schedule requested for 0 threads"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Makespan (cycles) of executing `txs` = (cycles, conflict_key) pairs on
/// `threads` workers with per-group serialization. An empty workload is
/// `Ok(0)`; zero workers is a typed error, never a panic (the thread
/// count can come from untrusted config).
pub fn makespan(txs: &[(u64, u64)], threads: usize) -> Result<u64, SchedError> {
    if threads == 0 {
        return Err(SchedError::ZeroThreads);
    }
    if txs.is_empty() {
        return Ok(0);
    }
    // Group totals, in first-seen-key order. A HashMap's iteration order
    // would hand `assign` the same load multiset in a process-dependent
    // permutation; the makespan value survives that, but the group→worker
    // mapping would differ across replicas. First-seen order keeps the
    // whole schedule byte-identical on every node.
    let mut index_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut loads: Vec<u64> = Vec::new();
    for (cycles, key) in txs {
        match index_of.get(key) {
            Some(&i) => loads[i] += cycles,
            None => {
                index_of.insert(*key, loads.len());
                loads.push(*cycles);
            }
        }
    }
    let assignment = assign(&loads, threads)?;
    Ok(worker_loads(&assignment, &loads)
        .into_iter()
        .max()
        .unwrap_or(0))
}

/// LPT assignment of conflict-group loads onto `threads` workers: heaviest
/// group first, onto the least-loaded worker. Returns, per worker, the
/// indices into `loads` it executes (in descending-load order). This is
/// the schedule the real block executor hands to its worker pool.
///
/// Deterministic: ties (equal loads, equal worker fill) break toward the
/// lower group index / lower worker index, so every replica computes the
/// identical schedule.
pub fn assign(loads: &[u64], threads: usize) -> Result<Vec<Vec<usize>>, SchedError> {
    if threads == 0 {
        return Err(SchedError::ZeroThreads);
    }
    let mut order: Vec<usize> = (0..loads.len()).collect();
    // Descending by load, ascending by index on ties.
    order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
    let mut workers: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut fill = vec![0u64; threads];
    for g in order {
        let w = fill
            .iter()
            .enumerate()
            .min_by_key(|&(i, &c)| (c, i))
            .map(|(i, _)| i)
            .expect("threads > 0");
        fill[w] += loads[g];
        workers[w].push(g);
    }
    Ok(workers)
}

/// Total load per worker under `assignment` (as produced by [`assign`]).
pub fn worker_loads(assignment: &[Vec<usize>], loads: &[u64]) -> Vec<u64> {
    assignment
        .iter()
        .map(|groups| {
            groups
                .iter()
                .map(|&g| loads.get(g).copied().unwrap_or(0))
                .sum()
        })
        .collect()
}

/// Union-find grouping of transactions by overlapping read/write sets:
/// two transactions conflict (must serialize, in submission order) when
/// either touches a key the other *writes*. `touched[i]` / `written[i]`
/// are transaction `i`'s read∪write and write key sets.
///
/// Returns the conflict groups ordered by their smallest member index,
/// each group's members ascending — the serial-equivalent execution
/// order within a group is exactly submission order.
pub fn conflict_groups(
    touched: &[std::collections::BTreeSet<Vec<u8>>],
    written: &[std::collections::BTreeSet<Vec<u8>>],
) -> Vec<Vec<usize>> {
    let n = touched.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            // Root at the smaller index so group identity is the first tx.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    };
    // Writer index per key: the first writer claims the key; every later
    // toucher of the key unions with it (and a later writer re-claims,
    // keeping the chain connected).
    let mut owner: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
    for (i, keys) in written.iter().enumerate() {
        for key in keys {
            if let Some(&w) = owner.get(key.as_slice()) {
                union(&mut parent, w, i);
            }
            owner.insert(key.as_slice(), i);
        }
    }
    for (i, keys) in touched.iter().enumerate() {
        for key in keys {
            if let Some(&w) = owner.get(key.as_slice()) {
                union(&mut parent, w, i);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_thread_is_total_sum() {
        let txs: Vec<(u64, u64)> = (0..10).map(|i| (100, i)).collect();
        assert_eq!(makespan(&txs, 1), Ok(1000));
    }

    #[test]
    fn independent_txs_scale_with_threads() {
        let txs: Vec<(u64, u64)> = (0..8).map(|i| (100, i)).collect();
        assert_eq!(makespan(&txs, 4), Ok(200));
        assert_eq!(makespan(&txs, 8), Ok(100));
    }

    #[test]
    fn conflicting_txs_serialize() {
        // All in one group: threads don't help.
        let txs: Vec<(u64, u64)> = (0..8).map(|_| (100, 42)).collect();
        assert_eq!(makespan(&txs, 1), Ok(800));
        assert_eq!(makespan(&txs, 8), Ok(800));
    }

    #[test]
    fn saturation_mirrors_paper_shape() {
        // A workload with ~4 effective conflict groups: 1→4 threads helps
        // (~2x or better), 4→6 threads doesn't — Figure 11's pattern.
        let mut txs = Vec::new();
        for i in 0..100u64 {
            txs.push((1000, i % 4));
        }
        let t1 = makespan(&txs, 1).unwrap();
        let t4 = makespan(&txs, 4).unwrap();
        let t6 = makespan(&txs, 6).unwrap();
        assert!(t1 >= 2 * t4, "t1={t1} t4={t4}");
        assert_eq!(t4, t6, "no benefit past the conflict-group count");
    }

    #[test]
    fn empty_block_is_zero() {
        assert_eq!(makespan(&[], 4), Ok(0));
    }

    #[test]
    fn zero_threads_is_a_typed_error_not_a_panic() {
        assert_eq!(makespan(&[(100, 1)], 0), Err(SchedError::ZeroThreads));
        assert_eq!(makespan(&[], 0), Err(SchedError::ZeroThreads));
        assert_eq!(assign(&[5], 0), Err(SchedError::ZeroThreads));
    }

    #[test]
    fn lpt_balances_uneven_groups() {
        // Groups 9, 5, 4, 3, 3 on 2 workers: LPT → {9,3} vs {5,4,3} = 12.
        let txs = vec![(9, 0), (5, 1), (4, 2), (3, 3), (3, 4)];
        assert_eq!(makespan(&txs, 2), Ok(12));
    }

    #[test]
    fn assign_covers_every_group_exactly_once() {
        let loads = vec![9, 5, 4, 3, 3, 0, 7];
        let assignment = assign(&loads, 3).unwrap();
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..loads.len()).collect::<Vec<_>>());
        // Makespan of the concrete assignment matches the model.
        let ms = worker_loads(&assignment, &loads).into_iter().max().unwrap();
        let txs: Vec<(u64, u64)> = loads
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u64))
            .collect();
        assert_eq!(makespan(&txs, 3).unwrap(), ms);
    }

    #[test]
    fn makespan_bounds_hold_on_randomized_workloads() {
        // Deterministic pseudo-random workloads: the LPT makespan must lie
        // between max(longest group, ceil(total/threads)) and the serial
        // total, and shrink monotonically in the thread count.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = (next() % 40 + 1) as usize;
            let txs: Vec<(u64, u64)> = (0..n).map(|_| (next() % 10_000 + 1, next() % 8)).collect();
            let total: u64 = txs.iter().map(|t| t.0).sum();
            let mut group_tot: std::collections::HashMap<u64, u64> = Default::default();
            for (c, k) in &txs {
                *group_tot.entry(*k).or_insert(0) += c;
            }
            let biggest = group_tot.values().copied().max().unwrap();
            let mut prev = u64::MAX;
            for threads in 1..=8usize {
                let ms = makespan(&txs, threads).unwrap();
                let lower = biggest.max(total.div_ceil(threads as u64));
                assert!(ms >= lower, "ms {ms} below bound {lower}");
                assert!(ms <= total, "ms {ms} above serial {total}");
                assert!(ms <= prev, "makespan grew with more threads");
                prev = ms;
            }
            assert_eq!(makespan(&txs, 1).unwrap(), total);
        }
    }

    #[test]
    fn all_equal_costs_break_ties_deterministically() {
        // Regression: with every group load equal, the schedule must be the
        // exact round-robin dictated by (load desc, group index asc) →
        // least-loaded-worker (fill, worker index asc) tie-breaking, and it
        // must come out byte-identical on every call — no hash-order or
        // allocation-order leakage.
        let loads = vec![100u64; 7];
        let expected = vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]];
        for _ in 0..10 {
            assert_eq!(assign(&loads, 3).unwrap(), expected);
        }
        // The makespan path groups by key before assigning; with all-equal
        // per-tx costs and distinct keys it must agree with the direct
        // assignment and stay stable across repeated evaluations.
        let txs: Vec<(u64, u64)> = (0..7).map(|i| (100, 0xdead_beef + i * 17)).collect();
        let first = makespan(&txs, 3).unwrap();
        assert_eq!(first, 300);
        for _ in 0..10 {
            assert_eq!(makespan(&txs, 3).unwrap(), first);
        }
    }

    fn set(keys: &[&[u8]]) -> BTreeSet<Vec<u8>> {
        keys.iter().map(|k| k.to_vec()).collect()
    }

    #[test]
    fn conflict_groups_split_independent_txs() {
        let touched = vec![set(&[b"a"]), set(&[b"b"]), set(&[b"c"])];
        let written = touched.clone();
        assert_eq!(
            conflict_groups(&touched, &written),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn conflict_groups_merge_on_read_write_overlap() {
        // tx0 writes k; tx1 only reads k; tx2 independent; tx3 reads what
        // tx2 writes. Read-read sharing (tx4, tx5 on r) does NOT merge.
        let touched = vec![
            set(&[b"k"]),
            set(&[b"k", b"x"]),
            set(&[b"m"]),
            set(&[b"m", b"y"]),
            set(&[b"r"]),
            set(&[b"r"]),
        ];
        let written = vec![
            set(&[b"k"]),
            set(&[b"x"]),
            set(&[b"m"]),
            set(&[b"y"]),
            set(&[]),
            set(&[]),
        ];
        assert_eq!(
            conflict_groups(&touched, &written),
            vec![vec![0, 1], vec![2, 3], vec![4], vec![5]]
        );
    }

    #[test]
    fn conflict_groups_chain_through_shared_writer() {
        // w-w chain: tx0 and tx2 write k, tx1 reads k → all one group.
        let touched = vec![set(&[b"k"]), set(&[b"k"]), set(&[b"k"])];
        let written = vec![set(&[b"k"]), set(&[]), set(&[b"k"])];
        assert_eq!(conflict_groups(&touched, &written), vec![vec![0, 1, 2]]);
    }
}
