//! Parallel-execution scheduling (§6.2's 4-way / 6-way smart-contract
//! parallel execution).
//!
//! Transactions with the same conflict key (same account hot-spot, same
//! contract partition) must run serially; independent groups run on
//! different worker threads. The makespan is computed with longest-
//! processing-time-first assignment — a standard 4/3-approximation that
//! models a work-stealing executor well.
//!
//! This is exactly why the paper sees "no further improvement when the
//! number of thread increases to 6": once the biggest conflict group
//! dominates, extra workers idle.

/// Makespan (cycles) of executing `txs` = (cycles, conflict_key) pairs on
/// `threads` workers with per-group serialization.
pub fn makespan(txs: &[(u64, u64)], threads: usize) -> u64 {
    assert!(threads > 0);
    if txs.is_empty() {
        return 0;
    }
    // Group totals.
    let mut groups: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (cycles, key) in txs {
        *groups.entry(*key).or_insert(0) += cycles;
    }
    let mut loads: Vec<u64> = groups.into_values().collect();
    // LPT: biggest groups first onto the least-loaded worker.
    loads.sort_unstable_by(|a, b| b.cmp(a));
    let mut workers = vec![0u64; threads];
    for load in loads {
        let min = workers.iter_mut().min().expect("threads > 0");
        *min += load;
    }
    workers.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_is_total_sum() {
        let txs: Vec<(u64, u64)> = (0..10).map(|i| (100, i)).collect();
        assert_eq!(makespan(&txs, 1), 1000);
    }

    #[test]
    fn independent_txs_scale_with_threads() {
        let txs: Vec<(u64, u64)> = (0..8).map(|i| (100, i)).collect();
        assert_eq!(makespan(&txs, 4), 200);
        assert_eq!(makespan(&txs, 8), 100);
    }

    #[test]
    fn conflicting_txs_serialize() {
        // All in one group: threads don't help.
        let txs: Vec<(u64, u64)> = (0..8).map(|_| (100, 42)).collect();
        assert_eq!(makespan(&txs, 1), 800);
        assert_eq!(makespan(&txs, 8), 800);
    }

    #[test]
    fn saturation_mirrors_paper_shape() {
        // A workload with ~4 effective conflict groups: 1→4 threads helps
        // (~2x or better), 4→6 threads doesn't — Figure 11's pattern.
        let mut txs = Vec::new();
        for i in 0..100u64 {
            txs.push((1000, i % 4));
        }
        let t1 = makespan(&txs, 1);
        let t4 = makespan(&txs, 4);
        let t6 = makespan(&txs, 6);
        assert!(t1 >= 2 * t4, "t1={t1} t4={t4}");
        assert_eq!(t4, t6, "no benefit past the conflict-group count");
    }

    #[test]
    fn empty_block_is_zero() {
        assert_eq!(makespan(&[], 4), 0);
    }

    #[test]
    fn lpt_balances_uneven_groups() {
        // Groups 9, 5, 4, 3, 3 on 2 workers: LPT → {9,3} vs {5,4,3} = 12.
        let txs = vec![(9, 0), (5, 1), (4, 2), (3, 3), (3, 4)];
        assert_eq!(makespan(&txs, 2), 12);
    }
}
