//! PBFT ordering consensus over the discrete-event simulator.
//!
//! The fault-free three-phase protocol with its genuine O(n²) message
//! complexity — the quantity that, multiplied by inter-zone latency,
//! produces Figure 11's two-zone degradation. Execution and persistence
//! are pipelined per node exactly as §5.2/Fig. 7 describe: transactions are
//! pre-verified in parallel on arrival (the P1–P5 pipeline), ordered in
//! batches, then executed in-order with the configured parallelism.

use crate::sched::makespan;
use crate::types::{SimTx, TxClass};
use confide_sim::event::{EventQueue, SimTime, MS};
use confide_sim::network::{DiskModel, NetworkModel, Zone};
use confide_tee::meter::CostModel;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Chain/experiment configuration.
pub struct ChainConfig {
    /// Number of nodes (3f+1 recommended).
    pub nodes: usize,
    /// Zone of each node (len == nodes).
    pub zone_of: Vec<Zone>,
    /// Block size limit in bytes (paper §6.1: 4 KB).
    pub block_max_bytes: usize,
    /// Max transactions per block.
    pub block_max_txs: usize,
    /// Parallel execution ways (§6.2: 1/4/6).
    pub threads: usize,
    /// Enable the §5.2 pre-verification pipeline (OPT3).
    pub preverify: bool,
    /// Verification worker slots per node.
    pub verify_workers: usize,
    /// Client→node submission latency.
    pub client_latency: SimTime,
    /// Primary's batch flush interval.
    pub flush_interval: SimTime,
    /// Per-block fixed overhead cycles (assembly, root computation).
    pub block_overhead_cycles: u64,
    /// PBFT watermark: maximum proposals in flight beyond the primary's
    /// last committed sequence (consensus back-pressure).
    pub max_inflight: u64,
    /// Cost model for cycles→time conversion.
    pub model: CostModel,
}

impl ChainConfig {
    /// The paper's default setting: n nodes, one zone, 4 KB blocks.
    pub fn local(nodes: usize) -> ChainConfig {
        ChainConfig {
            nodes,
            zone_of: vec![Zone(0); nodes],
            block_max_bytes: 4096,
            block_max_txs: 64,
            threads: 1,
            preverify: true,
            verify_workers: 8,
            client_latency: 2 * MS,
            flush_interval: 5 * MS,
            block_overhead_cycles: 400_000,
            max_inflight: 4,
            model: CostModel::default(),
        }
    }

    /// Two-zone split at ratio 1:2 (§6.2 Shanghai:Beijing).
    pub fn two_zone(nodes: usize) -> ChainConfig {
        let mut cfg = Self::local(nodes);
        cfg.zone_of = (0..nodes)
            .map(|i| if i < nodes / 3 { Zone(0) } else { Zone(1) })
            .collect();
        cfg
    }
}

/// Aggregate results of one simulated run.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Transactions committed (executed on node 0).
    pub committed_txs: usize,
    /// Blocks executed.
    pub blocks: usize,
    /// Simulated duration, first submission → last execution (ns).
    pub duration_ns: SimTime,
    /// Throughput in transactions/second.
    pub tps: f64,
    /// Mean block execution time (ns).
    pub avg_block_exec_ns: f64,
    /// Mean block persistence (disk write) time (ns).
    pub avg_block_write_ns: f64,
    /// Mean propose→commit consensus latency at node 0 (ns).
    pub avg_consensus_latency_ns: f64,
    /// Total protocol messages delivered.
    pub messages: u64,
}

#[derive(Debug, Clone)]
enum Msg {
    PrePrepare { seq: u64, txs: Vec<usize> },
    Prepare { seq: u64, from: usize },
    Commit { seq: u64, from: usize },
}

#[derive(Debug)]
enum Ev {
    ClientSend {
        tx: usize,
    },
    TxArrive {
        node: usize,
        tx: usize,
    },
    TxVerified {
        node: usize,
        tx: usize,
    },
    Deliver {
        to: usize,
        msg: Msg,
    },
    Flush,
    ExecDone {
        node: usize,
        seq: u64,
    },
    #[allow(dead_code)]
    DiskDone {
        node: usize,
        seq: u64,
    },
}

#[derive(Default)]
struct NodeState {
    pool: Vec<usize>,
    pool_bytes: usize,
    verify_slots: Vec<SimTime>,
    preprepared: HashMap<u64, Vec<usize>>,
    prepares: HashMap<u64, HashSet<usize>>,
    commits: HashMap<u64, HashSet<usize>>,
    sent_commit: HashSet<u64>,
    committed: BTreeMap<u64, Vec<usize>>,
    last_executed: u64,
    executing: bool,
    proposed_at: HashMap<u64, SimTime>,
    committed_at: HashMap<u64, SimTime>,
}

/// The simulator.
pub struct ChainSim {
    config: ChainConfig,
    network: NetworkModel,
    disk: DiskModel,
    txs: Vec<SimTx>,
    queue: EventQueue<Ev>,
    nodes: Vec<NodeState>,
    next_seq: u64,
    flush_pending: bool,
    messages: u64,
    exec_times: Vec<SimTime>,
    disk_times: Vec<SimTime>,
    first_send: Option<SimTime>,
    last_exec: SimTime,
    committed_txs: usize,
}

impl ChainSim {
    /// Build a simulator.
    pub fn new(config: ChainConfig, network: NetworkModel) -> ChainSim {
        assert_eq!(config.zone_of.len(), config.nodes);
        let nodes = (0..config.nodes)
            .map(|_| NodeState {
                verify_slots: vec![0; config.verify_workers.max(1)],
                ..NodeState::default()
            })
            .collect();
        ChainSim {
            config,
            network,
            disk: DiskModel::cloud_ssd(),
            txs: Vec::new(),
            queue: EventQueue::new(),
            nodes,
            next_seq: 1, // sequences are 1-based; last_executed == 0 means none
            flush_pending: false,
            messages: 0,
            exec_times: Vec::new(),
            disk_times: Vec::new(),
            first_send: None,
            last_exec: 0,
            committed_txs: 0,
        }
    }

    fn quorum(&self) -> usize {
        // Shared with the wire protocol in `crates/consensus`, so the model
        // and the real cluster can never disagree on quorum arithmetic.
        confide_consensus::quorum(self.config.nodes)
    }

    /// The committed block log of `node`: `(seq, tx indices)` in sequence
    /// order. Used by the sim-vs-wire differential test to compare the
    /// ordering this model produces against the real `Replica`'s.
    pub fn committed_blocks(&self, node: usize) -> Vec<(u64, Vec<usize>)> {
        self.nodes[node]
            .committed
            .iter()
            .map(|(seq, txs)| (*seq, txs.clone()))
            .collect()
    }

    /// Submit transactions at given times and run to quiescence.
    pub fn run(&mut self, arrivals: Vec<(SimTime, SimTx)>) -> ChainReport {
        for (t, tx) in arrivals {
            let id = self.txs.len();
            self.txs.push(tx);
            self.queue.schedule_at(t, Ev::ClientSend { tx: id });
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        let duration = self
            .last_exec
            .saturating_sub(self.first_send.unwrap_or(0))
            .max(1);
        let blocks = self.exec_times.len();
        let node0 = &self.nodes[0];
        let latencies: Vec<SimTime> = node0
            .committed_at
            .iter()
            .filter_map(|(seq, t)| node0.proposed_at.get(seq).map(|p| t - p))
            .collect();
        ChainReport {
            committed_txs: self.committed_txs,
            blocks,
            duration_ns: duration,
            tps: self.committed_txs as f64 / (duration as f64 / 1e9),
            avg_block_exec_ns: mean(&self.exec_times),
            avg_block_write_ns: mean(&self.disk_times),
            avg_consensus_latency_ns: mean(&latencies),
            messages: self.messages,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ClientSend { tx } => {
                self.first_send.get_or_insert(now);
                let size = self.txs[tx].size_bytes;
                for node in 0..self.config.nodes {
                    // Public-network submission to each node independently;
                    // the client sits with zone 0, so nodes in other zones
                    // receive the body over the shared inter-zone pipe.
                    let at = self
                        .network
                        .send_at(now, Zone(0), self.config.zone_of[node], size)
                        + self.config.client_latency;
                    self.queue.schedule_at(at, Ev::TxArrive { node, tx });
                }
            }
            Ev::TxArrive { node, tx } => {
                let cfg_preverify = self.config.preverify;
                let is_confidential = self.txs[tx].class == TxClass::Confidential;
                if cfg_preverify && is_confidential {
                    // P1–P5: batch into the enclave, decrypt + verify on a
                    // parallel worker, then the verified pool.
                    let cycles = self.txs[tx].envelope_cycles + self.txs[tx].verify_cycles;
                    let dur = self.config.model.cycles_to_ns(cycles);
                    let slot = self.nodes[node]
                        .verify_slots
                        .iter_mut()
                        .min()
                        .expect("at least one verify worker");
                    let start = (*slot).max(now);
                    let done = start + dur;
                    *slot = done;
                    self.queue.schedule_at(done, Ev::TxVerified { node, tx });
                } else {
                    // Public txs verify cheaply; without OPT3 the cost
                    // moves into the execution phase.
                    self.queue.schedule_at(now, Ev::TxVerified { node, tx });
                }
            }
            Ev::TxVerified { node, tx } => {
                if node != 0 {
                    return; // replicas just hold the body; primary batches
                }
                let state = &mut self.nodes[0];
                state.pool.push(tx);
                state.pool_bytes += self.txs[tx].size_bytes;
                if state.pool_bytes >= self.config.block_max_bytes
                    || state.pool.len() >= self.config.block_max_txs
                {
                    self.propose(now);
                } else if !self.flush_pending {
                    self.flush_pending = true;
                    self.queue
                        .schedule_in(self.config.flush_interval, Ev::Flush);
                }
            }
            Ev::Flush => {
                self.flush_pending = false;
                if !self.nodes[0].pool.is_empty() {
                    self.propose(now);
                }
            }
            Ev::Deliver { to, msg } => {
                self.messages += 1;
                self.handle_msg(now, to, msg);
            }
            Ev::ExecDone { node, seq } => {
                let block_txs = self.nodes[node].committed[&seq].len();
                self.nodes[node].last_executed = seq;
                self.nodes[node].executing = false;
                if node == 0 {
                    self.committed_txs += block_txs;
                    self.last_exec = now;
                }
                // Persist asynchronously.
                let bytes: usize = self.nodes[node].committed[&seq]
                    .iter()
                    .map(|&t| self.txs[t].size_bytes)
                    .sum::<usize>()
                    + 96;
                let write_ns = self.disk.write(bytes);
                if node == 0 {
                    self.disk_times.push(write_ns);
                }
                self.queue.schedule_in(write_ns, Ev::DiskDone { node, seq });
                self.try_execute(now, node);
            }
            Ev::DiskDone { .. } => {}
        }
    }

    fn propose(&mut self, now: SimTime) {
        // Watermark back-pressure: don't run ahead of commitment.
        let committed = self.nodes[0].committed.len() as u64;
        if self.next_seq.saturating_sub(1) >= committed + self.config.max_inflight {
            return; // retried when the next commit lands at the primary
        }
        // Respect the block size limit even when the pool backed up.
        let take_n = self.nodes[0].pool.len().min(self.config.block_max_txs);
        let txs: Vec<usize> = self.nodes[0].pool.drain(..take_n).collect();
        self.nodes[0].pool_bytes = self.nodes[0]
            .pool
            .iter()
            .map(|&t| self.txs[t].size_bytes)
            .sum();
        if txs.is_empty() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.nodes[0].proposed_at.insert(seq, now);
        // PrePrepare carries ordering metadata (digests); bodies travelled
        // with the client broadcast.
        let size = 96 + 32 * txs.len();
        self.broadcast(now, 0, size, |_| Msg::PrePrepare {
            seq,
            txs: txs.clone(),
        });
        self.handle_msg(now, 0, Msg::PrePrepare { seq, txs });
    }

    fn broadcast(&mut self, now: SimTime, from: usize, size: usize, make: impl Fn(usize) -> Msg) {
        for to in 0..self.config.nodes {
            if to == from {
                continue;
            }
            let at = self.network.send_at(
                now,
                self.config.zone_of[from],
                self.config.zone_of[to],
                size,
            );
            self.queue
                .schedule_at(at, Ev::Deliver { to, msg: make(to) });
        }
    }

    fn handle_msg(&mut self, now: SimTime, node: usize, msg: Msg) {
        match msg {
            Msg::PrePrepare { seq, txs } => {
                self.nodes[node].preprepared.insert(seq, txs);
                self.nodes[node]
                    .prepares
                    .entry(seq)
                    .or_default()
                    .insert(node);
                self.broadcast(now, node, 96, move |_| Msg::Prepare { seq, from: node });
                self.maybe_prepared(now, node, seq);
            }
            Msg::Prepare { seq, from } => {
                self.nodes[node]
                    .prepares
                    .entry(seq)
                    .or_default()
                    .insert(from);
                self.maybe_prepared(now, node, seq);
            }
            Msg::Commit { seq, from } => {
                self.nodes[node]
                    .commits
                    .entry(seq)
                    .or_default()
                    .insert(from);
                self.maybe_committed(now, node, seq);
            }
        }
    }

    fn maybe_prepared(&mut self, now: SimTime, node: usize, seq: u64) {
        let q = self.quorum();
        let state = &mut self.nodes[node];
        let ready = state.preprepared.contains_key(&seq)
            && state.prepares.get(&seq).map_or(0, |s| s.len()) >= q
            && !state.sent_commit.contains(&seq);
        if ready {
            state.sent_commit.insert(seq);
            state.commits.entry(seq).or_default().insert(node);
            self.broadcast(now, node, 96, move |_| Msg::Commit { seq, from: node });
            self.maybe_committed(now, node, seq);
        }
    }

    fn maybe_committed(&mut self, now: SimTime, node: usize, seq: u64) {
        let q = self.quorum();
        let state = &mut self.nodes[node];
        if state.committed.contains_key(&seq) {
            return;
        }
        if !state.sent_commit.contains(&seq) {
            return;
        }
        if state.commits.get(&seq).map_or(0, |s| s.len()) < q {
            return;
        }
        let txs = state.preprepared[&seq].clone();
        state.committed.insert(seq, txs);
        state.committed_at.insert(seq, now);
        self.try_execute(now, node);
        // A commit at the primary may unblock a watermarked proposal —
        // but only a *full* block; partial batches wait for the flush
        // timer (batching, as production submission does per §6.4).
        if node == 0 && self.nodes[0].pool.len() >= self.config.block_max_txs {
            self.propose(now);
        } else if node == 0 && !self.nodes[0].pool.is_empty() && !self.flush_pending {
            self.flush_pending = true;
            self.queue
                .schedule_in(self.config.flush_interval, Ev::Flush);
        }
    }

    fn try_execute(&mut self, now: SimTime, node: usize) {
        if self.nodes[node].executing {
            return;
        }
        // Execute strictly in order: the next sequence after the last one
        // executed, and only once consensus committed it.
        let expected = self.nodes[node].last_executed + 1;
        let Some(txs) = self.nodes[node].committed.get(&expected).cloned() else {
            return;
        };
        self.nodes[node].executing = true;
        let preverify = self.config.preverify;
        let jobs: Vec<(u64, u64)> = txs
            .iter()
            .map(|&t| {
                let tx = &self.txs[t];
                (tx.execution_phase_cycles(preverify), tx.conflict_key)
            })
            .collect();
        // A zero-thread config cannot execute anything; treat it as one
        // worker rather than wedging the simulation.
        let exec_cycles =
            makespan(&jobs, self.config.threads.max(1)).expect("threads clamped to >= 1");
        let cycles = self.config.block_overhead_cycles + exec_cycles;
        let exec_ns = self.config.model.cycles_to_ns(cycles);
        if node == 0 {
            self.exec_times.push(exec_ns);
        }
        self.queue.schedule_at(
            now + exec_ns,
            Ev::ExecDone {
                node,
                seq: expected,
            },
        );
    }
}

fn mean(xs: &[SimTime]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_sim::event::{MS, SEC, US};

    fn workload(n: usize, conflict_groups: u64) -> Vec<(SimTime, SimTx)> {
        (0..n)
            .map(|i| {
                (
                    (i as u64) * 200_000, // 0.2 ms apart
                    SimTx::confidential(
                        512,
                        i as u64 % conflict_groups,
                        2_000_000, // ~0.54 ms execution
                        370_000,
                        814_000,
                        9_000,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn four_node_chain_commits_everything() {
        let cfg = ChainConfig::local(4);
        let mut sim = ChainSim::new(cfg, NetworkModel::lan(1));
        let report = sim.run(workload(100, 16));
        assert_eq!(report.committed_txs, 100);
        assert!(report.blocks > 0);
        assert!(report.tps > 0.0);
        assert!(report.messages > 0);
    }

    #[test]
    fn throughput_stable_with_more_nodes_single_zone() {
        // Figure 11's flat single-zone curves: TPS within a modest band
        // from 4 to 16 nodes on a LAN.
        let tps: Vec<f64> = [4usize, 8, 16]
            .iter()
            .map(|&n| {
                let mut sim = ChainSim::new(ChainConfig::local(n), NetworkModel::lan(1));
                sim.run(workload(200, 32)).tps
            })
            .collect();
        let min = tps.iter().cloned().fold(f64::MAX, f64::min);
        let max = tps.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.6, "{tps:?}");
    }

    #[test]
    fn two_zone_latency_hurts_at_scale() {
        let lan = {
            let mut sim = ChainSim::new(ChainConfig::local(12), NetworkModel::lan(1));
            sim.run(workload(200, 32))
        };
        let wan = {
            let mut sim = ChainSim::new(ChainConfig::two_zone(12), NetworkModel::two_zone(1));
            sim.run(workload(200, 32))
        };
        assert!(
            wan.avg_consensus_latency_ns > 2.0 * lan.avg_consensus_latency_ns,
            "wan {} vs lan {}",
            wan.avg_consensus_latency_ns,
            lan.avg_consensus_latency_ns
        );
        assert!(wan.tps < lan.tps);
    }

    #[test]
    fn parallel_execution_helps_then_saturates() {
        let tps_for = |threads: usize| {
            let mut cfg = ChainConfig::local(4);
            cfg.threads = threads;
            // Execution-bound workload: heavy txs, 4 conflict groups.
            let txs: Vec<(SimTime, SimTx)> = (0..200)
                .map(|i| {
                    (
                        i as u64 * 50_000,
                        SimTx::confidential(512, i as u64 % 4, 8_000_000, 370_000, 814_000, 9_000),
                    )
                })
                .collect();
            ChainSim::new(cfg, NetworkModel::lan(1)).run(txs).tps
        };
        let t1 = tps_for(1);
        let t4 = tps_for(4);
        let t6 = tps_for(6);
        assert!(t4 > 1.5 * t1, "t1={t1} t4={t4}");
        assert!((t6 - t4).abs() / t4 < 0.15, "t4={t4} t6={t6}");
    }

    #[test]
    fn preverification_improves_throughput() {
        let tps_for = |preverify: bool| {
            let mut cfg = ChainConfig::local(4);
            cfg.preverify = preverify;
            ChainSim::new(cfg, NetworkModel::lan(1))
                .run(workload(200, 32))
                .tps
        };
        let with = tps_for(true);
        let without = tps_for(false);
        assert!(with > without, "with={with} without={without}");
    }

    #[test]
    fn consensus_latency_in_sane_range_on_lan() {
        let mut sim = ChainSim::new(ChainConfig::local(4), NetworkModel::lan(1));
        let report = sim.run(workload(50, 8));
        // Three one-way LAN hops plus slack: sub-10ms.
        assert!(report.avg_consensus_latency_ns < 10.0 * MS as f64);
        assert!(report.avg_consensus_latency_ns > 500.0 * US as f64);
    }

    #[test]
    fn block_write_time_matches_disk_model() {
        let mut sim = ChainSim::new(ChainConfig::local(4), NetworkModel::lan(1));
        let report = sim.run(workload(50, 8));
        assert!(
            (5.0 * MS as f64..9.0 * MS as f64).contains(&report.avg_block_write_ns),
            "{}",
            report.avg_block_write_ns
        );
    }

    #[test]
    fn empty_run_is_quiet() {
        let mut sim = ChainSim::new(ChainConfig::local(4), NetworkModel::lan(1));
        let report = sim.run(vec![]);
        assert_eq!(report.committed_txs, 0);
        assert_eq!(report.blocks, 0);
        let _ = SEC; // silence unused-import pedantry in some cfgs
    }

    #[test]
    fn verification_workers_remove_the_preverify_bottleneck() {
        // §5.2: "The two operations can be done in parallel among
        // transactions". With one verify worker, the asymmetric
        // pre-verification (≈0.32 ms/tx) serializes ahead of consensus;
        // with eight, it pipelines away.
        let tps_for = |workers: usize| {
            let mut cfg = ChainConfig::local(4);
            cfg.verify_workers = workers;
            cfg.threads = 4;
            // Cheap execution so verification is the potential bottleneck.
            let txs: Vec<(SimTime, SimTx)> = (0..400)
                .map(|i| {
                    (
                        i * 50_000,
                        SimTx::confidential(512, i % 32, 200_000, 370_000, 814_000, 9_000),
                    )
                })
                .collect();
            ChainSim::new(cfg, NetworkModel::lan(3)).run(txs).tps
        };
        let one = tps_for(1);
        let eight = tps_for(8);
        assert!(
            eight > 1.5 * one,
            "parallel verification should lift throughput: 1 worker {one:.0}, 8 workers {eight:.0}"
        );
    }
}
