//! # confide-chain
//!
//! The minimal modular consortium platform CONFIDE plugs into (DESIGN.md
//! §2): PBFT-style ordering consensus driven by the `confide-sim`
//! discrete-event engine, transaction pools with the pre-verification
//! pipeline of paper §5.2 (Figure 7), and a parallel execution scheduler
//! (the 4-way/6-way execution of §6.2).
//!
//! The consensus is deliberately the *ordering* service only — execution is
//! pluggable (public engine vs. Confidential-Engine), storage is pluggable,
//! matching the paper's "loosely coupling with blockchain platform" design
//! principle (§2.4).
//!
//! Simplifications (documented per DESIGN.md): a fixed primary without
//! view change, and no Byzantine behaviour injection — the evaluation
//! (like the paper's) measures the fault-free path; quorum sizes are the
//! standard 2f+1 so the message complexity is faithful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pbft;
pub mod sched;
pub mod types;

pub use pbft::{ChainConfig, ChainReport, ChainSim};
pub use sched::{assign, conflict_groups, makespan, worker_loads, SchedError};
pub use types::{SimTx, TxClass};
