//! Simulation-level transaction representation.
//!
//! The chain simulator is deliberately agnostic of transaction *content*:
//! the execution layer (confide-core + the benchmarks) measures real
//! per-transaction costs by actually running the contract bytecode, then
//! hands the chain simulator a [`SimTx`] carrying those measured cycle
//! counts. The simulator owns only ordering, networking and scheduling.

/// Public vs confidential classification (the `TYPE=1` flag of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxClass {
    /// Plain transaction, executed in the Public-Engine.
    Public,
    /// Envelope-encrypted transaction for the Confidential-Engine.
    Confidential,
}

/// A transaction as the chain simulator sees it.
#[derive(Debug, Clone)]
pub struct SimTx {
    /// Wire size in bytes (drives network + block packing).
    pub size_bytes: usize,
    /// Classification.
    pub class: TxClass,
    /// Conflict group: transactions sharing a key must execute serially
    /// (same account/contract partition). Drives parallel scheduling.
    pub conflict_key: u64,
    /// Measured execution cost (VM instructions, state crypto, ocalls —
    /// everything that happens inside the engine), in CPU cycles.
    pub exec_cycles: u64,
    /// Cost of the asymmetric envelope open (T-Protocol private-key
    /// decryption), paid at pre-verification or, without OPT3, at
    /// execution.
    pub envelope_cycles: u64,
    /// Cost of signature verification.
    pub verify_cycles: u64,
    /// Cheap symmetric-only body decryption cost (the C3 fast path when
    /// the pre-verification cache holds `k_tx`).
    pub symmetric_cycles: u64,
}

impl SimTx {
    /// A public transaction with the given measured execution cost.
    pub fn public(size_bytes: usize, conflict_key: u64, exec_cycles: u64) -> SimTx {
        SimTx {
            size_bytes,
            class: TxClass::Public,
            conflict_key,
            exec_cycles,
            envelope_cycles: 0,
            verify_cycles: 0,
            symmetric_cycles: 0,
        }
    }

    /// A confidential transaction with T-Protocol costs attached.
    pub fn confidential(
        size_bytes: usize,
        conflict_key: u64,
        exec_cycles: u64,
        envelope_cycles: u64,
        verify_cycles: u64,
        symmetric_cycles: u64,
    ) -> SimTx {
        SimTx {
            size_bytes,
            class: TxClass::Confidential,
            conflict_key,
            exec_cycles,
            envelope_cycles,
            verify_cycles,
            symmetric_cycles,
        }
    }

    /// Execution-phase cost depending on whether pre-verification (§5.2,
    /// OPT3) already paid the asymmetric work.
    pub fn execution_phase_cycles(&self, preverified: bool) -> u64 {
        match self.class {
            TxClass::Public => self.exec_cycles,
            TxClass::Confidential => {
                if preverified {
                    // C2/C3: cache hit — symmetric decrypt only.
                    self.exec_cycles + self.symmetric_cycles
                } else {
                    // Cache miss: full envelope open + verify inline.
                    self.exec_cycles + self.envelope_cycles + self.verify_cycles
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preverification_saves_asymmetric_cost() {
        let tx = SimTx::confidential(512, 1, 1_000_000, 370_000, 814_000, 9_000);
        let fast = tx.execution_phase_cycles(true);
        let slow = tx.execution_phase_cycles(false);
        assert_eq!(fast, 1_009_000);
        assert_eq!(slow, 2_184_000);
        assert!(slow > fast);
    }

    #[test]
    fn public_txs_ignore_crypto_fields() {
        let tx = SimTx::public(256, 0, 500);
        assert_eq!(tx.execution_phase_cycles(true), 500);
        assert_eq!(tx.execution_phase_cycles(false), 500);
    }
}
