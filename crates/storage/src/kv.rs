//! Ordered key-value storage.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A batch of writes applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    /// (key, Some(value)) puts and (key, None) deletes, in order.
    pub ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue a put.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((key.into(), Some(value.into())));
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((key.into(), None));
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total payload bytes (disk-write size input for the I/O model).
    pub fn byte_size(&self) -> usize {
        self.ops
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum()
    }
}

/// An ordered KV store. Blocking, single-version; versioning lives in
/// [`crate::versioned`].
pub trait KvStore: Send {
    /// Point read.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Point write.
    fn put(&mut self, key: &[u8], value: &[u8]);
    /// Delete.
    fn delete(&mut self, key: &[u8]);
    /// All pairs whose key starts with `prefix`, in key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;
    /// Apply a batch atomically.
    fn apply(&mut self, batch: &WriteBatch) {
        for (k, v) in &batch.ops {
            match v {
                Some(v) => self.put(k, v),
                None => self.delete(k),
            }
        }
    }
    /// Number of live keys.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory ordered store backed by a BTreeMap.
#[derive(Debug, Default, Clone)]
pub struct MemKv {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemKv {
    /// Fresh empty store.
    pub fn new() -> MemKv {
        MemKv::default()
    }

    /// Iterate all pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Vec<u8>)> {
        self.map.iter()
    }
}

impl KvStore for MemKv {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.map.insert(key.to_vec(), value.to_vec());
    }

    fn delete(&mut self, key: &[u8]) {
        self.map.remove(key);
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = MemKv::new();
        kv.put(b"a", b"1");
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        kv.delete(b"a");
        assert_eq!(kv.get(b"a"), None);
        assert!(kv.is_empty());
    }

    #[test]
    fn scan_prefix_ordered_and_bounded() {
        let mut kv = MemKv::new();
        kv.put(b"acct:alice", b"1");
        kv.put(b"acct:bob", b"2");
        kv.put(b"asset:x", b"3");
        kv.put(b"acct:carol", b"4");
        let hits = kv.scan_prefix(b"acct:");
        assert_eq!(
            hits.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![&b"acct:alice"[..], b"acct:bob", b"acct:carol"]
        );
        assert!(kv.scan_prefix(b"zz").is_empty());
    }

    #[test]
    fn batch_applies_in_order() {
        let mut kv = MemKv::new();
        let mut batch = WriteBatch::new();
        batch.put(b"k".to_vec(), b"v1".to_vec());
        batch.put(b"k".to_vec(), b"v2".to_vec()); // later op wins
        batch.put(b"gone".to_vec(), b"x".to_vec());
        batch.delete(b"gone".to_vec());
        kv.apply(&batch);
        assert_eq!(kv.get(b"k"), Some(b"v2".to_vec()));
        assert_eq!(kv.get(b"gone"), None);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.byte_size(), 1 + 2 + 1 + 2 + 4 + 1 + 4);
    }
}
