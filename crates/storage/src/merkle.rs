//! Binary Merkle tree over sorted key/value pairs.
//!
//! The tree's root is the state commitment included in block headers; all
//! nodes must agree on it after executing a block ("only the transactions
//! whose results are computed based on the latest states can pass the
//! consensus phase", §3.3). Inclusion proofs back SPV-style consensus
//! reads for clients that do not trust a single node.

use confide_crypto::sha256;

/// Domain-separated leaf hash.
fn leaf_hash(key: &[u8], value: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(1 + 8 + key.len() + value.len());
    buf.push(0x00);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    sha256(&buf)
}

/// Domain-separated interior hash.
fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(65);
    buf.push(0x01);
    buf.extend_from_slice(left);
    buf.extend_from_slice(right);
    sha256(&buf)
}

/// A Merkle tree; retains all levels so proofs are cheap.
pub struct MerkleTree {
    levels: Vec<Vec<[u8; 32]>>,
}

/// The root of an empty tree.
pub fn empty_root() -> [u8; 32] {
    sha256(b"confide-empty-state")
}

impl MerkleTree {
    /// Build from (key, value) pairs. Pairs must already be sorted by key
    /// (as an ordered KV store yields them).
    pub fn build(pairs: &[(Vec<u8>, Vec<u8>)]) -> MerkleTree {
        let leaves: Vec<[u8; 32]> = pairs.iter().map(|(k, v)| leaf_hash(k, v)).collect();
        Self::from_leaves(leaves)
    }

    /// Build from precomputed leaf hashes (e.g. transaction hashes).
    pub fn from_leaves(leaves: Vec<[u8; 32]>) -> MerkleTree {
        let mut levels = vec![leaves];
        while levels.last().map(|l| l.len()).unwrap_or(0) > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [a, b] => next.push(node_hash(a, b)),
                    // Odd node promoted by hashing with itself (bitcoin-style).
                    [a] => next.push(node_hash(a, a)),
                    _ => unreachable!(),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        match self.levels.last().and_then(|l| l.first()) {
            Some(r) => *r,
            None => empty_root(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// Inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            let hash = if sibling < level.len() {
                level[sibling]
            } else {
                level[idx] // odd promotion partner
            };
            path.push((hash, idx.is_multiple_of(2)));
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }
}

/// An inclusion proof: sibling hashes bottom-up, with "leaf is left child"
/// flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Leaf index proven.
    pub index: usize,
    /// (sibling hash, this-node-is-left) per level.
    pub path: Vec<([u8; 32], bool)>,
}

impl MerkleProof {
    /// Verify that `(key, value)` is included under `root`.
    pub fn verify(&self, root: &[u8; 32], key: &[u8], value: &[u8]) -> bool {
        self.verify_leaf(root, leaf_hash(key, value))
    }

    /// Verify a precomputed leaf hash.
    pub fn verify_leaf(&self, root: &[u8; 32], leaf: [u8; 32]) -> bool {
        let mut acc = leaf;
        for (sibling, is_left) in &self.path {
            acc = if *is_left {
                node_hash(&acc, sibling)
            } else {
                node_hash(sibling, &acc)
            };
        }
        &acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = MerkleTree::build(&[]);
        assert_eq!(t.root(), empty_root());
        let t1 = MerkleTree::build(&pairs(1));
        assert_ne!(t1.root(), empty_root());
        assert_eq!(t1.leaf_count(), 1);
    }

    #[test]
    fn root_changes_with_any_value() {
        let base = MerkleTree::build(&pairs(8)).root();
        let mut modified = pairs(8);
        modified[3].1 = b"tampered".to_vec();
        assert_ne!(MerkleTree::build(&modified).root(), base);
        // And with any added key.
        let mut extended = pairs(8);
        extended.push((b"zzz".to_vec(), b"new".to_vec()));
        assert_ne!(MerkleTree::build(&extended).root(), base);
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let ps = pairs(n);
            let t = MerkleTree::build(&ps);
            let root = t.root();
            for (i, (k, v)) in ps.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(proof.verify(&root, k, v), "n={n} i={i}");
                // Wrong value fails.
                assert!(!proof.verify(&root, k, b"wrong"));
            }
            assert!(t.prove(n).is_none());
        }
    }

    #[test]
    fn proof_for_wrong_position_fails() {
        let ps = pairs(6);
        let t = MerkleTree::build(&ps);
        let root = t.root();
        let proof = t.prove(2).unwrap();
        // Using leaf 3's data with leaf 2's proof must fail.
        assert!(!proof.verify(&root, &ps[3].0, &ps[3].1));
    }

    /// Deterministic replacement for the former proptest case: 128 seeded
    /// (size, seed) combinations covering 1..40 leaves.
    #[test]
    fn random_trees_prove_random_leaves() {
        let mut rng = confide_crypto::HmacDrbg::from_u64(0x6d65726b);
        for _ in 0..128 {
            let n = (rng.gen_range(39) + 1) as usize;
            let seed = rng.gen_u64();
            let ps: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                .map(|i| {
                    (
                        format!("k{seed}{i:03}").into_bytes(),
                        seed.wrapping_mul(i as u64 + 1).to_le_bytes().to_vec(),
                    )
                })
                .collect();
            let t = MerkleTree::build(&ps);
            let root = t.root();
            let idx = (seed as usize) % n;
            let proof = t.prove(idx).unwrap();
            assert!(proof.verify(&root, &ps[idx].0, &ps[idx].1));
        }
    }
}
