//! # confide-storage
//!
//! The blockchain storage substrate: CONFIDE is "loosely coupled" with its
//! platform precisely so that "users can even choose their own KV storage"
//! (§2.4); this crate is the KV store + block store the rest of the
//! workspace plugs into.
//!
//! * [`kv`] — the ordered KV abstraction, an in-memory implementation, and
//!   write batches; [`kvlog`] — a write-ahead-log-backed alternative with
//!   CRC framing, crash-consistent recovery and compaction (the "choose
//!   your own KV store" modularity seam of §2.4).
//! * [`merkle`] — a binary Merkle tree over sorted key/value pairs; its
//!   root is the state commitment consensus agrees on, and its proofs back
//!   the "consensus read (e.g. SPV)" escape hatch of §3.3.
//! * [`versioned`] — versioned state: apply per-block batches, compute
//!   state roots, and *detect rollbacks* — the stale-state attack a
//!   malicious host can mount on a TEE (§3.3).
//! * [`blockstore`] — hash-linked block storage with header validation.
//! * [`wal`] — the block-framed write-ahead log: one CRC'd record group
//!   per committed block, terminated by a commit marker, so a torn tail
//!   rolls back to the last *complete block* (the node's durable-commit
//!   seam).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockstore;
pub mod kv;
pub mod kvlog;
pub mod merkle;
pub mod versioned;
pub mod wal;
pub mod walfile;

pub use blockstore::{Block, BlockHeader, BlockStore, BlockStoreError};
pub use kv::{KvStore, MemKv, WriteBatch};
pub use kvlog::LogKv;
pub use merkle::{MerkleProof, MerkleTree};
pub use versioned::{StateDb, StateError};
pub use wal::{BlockWal, CertLog, CertRecovery, WalBlock, WalRecovery};
pub use walfile::{GroupCommitStats, WalFile, GROUP_BUCKETS};
