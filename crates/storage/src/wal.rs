//! Block-framed write-ahead log: the durable-commit seam of the node.
//!
//! [`crate::kvlog`] gives record-level torn-tail recovery; a node needs
//! *block*-level atomicity — a crash mid-commit must roll the whole block
//! back, never replay half of its state mutations. This module frames one
//! committed block as a record group over the same CRC'd record format
//! kvlog uses:
//!
//! ```text
//! HEADER(height → encoded header)
//! TX(index → wire bytes)            × block.txs
//! PUT(key → value) | DEL(key)       × state batch ops
//! COMMIT(height → state_root)       ← the commit marker
//! ```
//!
//! Recovery replays a block only when its `COMMIT` marker is intact and
//! matches the group's `HEADER`; anything after the last intact marker —
//! a torn record, a CRC mismatch, a group missing its marker — is
//! discarded. The log itself is a byte buffer (the process's durable
//! artifact is whatever it flushed to disk); `confide-node` appends the
//! buffer incrementally to a file after every sealed block.

use crate::blockstore::BlockHeader;
use crate::kv::WriteBatch;
use crate::kvlog::{append_record, read_record};

const OP_HEADER: u8 = 0x10;
const OP_TX: u8 = 0x11;
const OP_PUT: u8 = 0x12;
const OP_DEL: u8 = 0x13;
const OP_CERT: u8 = 0x1E;
const OP_COMMIT: u8 = 0x1F;

/// One fully committed block recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBlock {
    /// The block header exactly as sealed.
    pub header: BlockHeader,
    /// Raw transaction bytes (the accepted transactions).
    pub txs: Vec<Vec<u8>>,
    /// The state mutations the block committed, in batch order.
    pub batch: WriteBatch,
}

/// Outcome of scanning a log: the committed prefix plus what was cut off.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every block with an intact commit marker, in height order.
    pub blocks: Vec<WalBlock>,
    /// Byte offset of each block's end (just past its commit marker),
    /// parallel to `blocks`. `ends[i]` is the log length that replays
    /// exactly `blocks[..=i]` — the truncation points certificate-gated
    /// repair cuts back to.
    pub ends: Vec<usize>,
    /// Bytes of the committed prefix (everything after is the torn tail).
    pub consumed: usize,
    /// Bytes discarded after the last commit marker (0 on a clean log).
    pub torn_bytes: usize,
}

/// The block-framed WAL. Append-only; every committed block becomes one
/// record group terminated by a commit marker.
#[derive(Default)]
pub struct BlockWal {
    log: Vec<u8>,
}

impl BlockWal {
    /// Fresh empty log.
    pub fn new() -> BlockWal {
        BlockWal::default()
    }

    /// Rebuild a log from recovered bytes, keeping only the committed
    /// prefix (the torn tail, if any, is dropped).
    pub fn from_recovered(log: &[u8]) -> BlockWal {
        let rec = BlockWal::recover(log);
        BlockWal {
            log: log[..rec.consumed].to_vec(),
        }
    }

    /// The raw log bytes (what a file-backed node has on disk).
    pub fn bytes(&self) -> &[u8] {
        &self.log
    }

    /// Total log length — `confide-node` flushes `bytes()[flushed..]`
    /// after each block.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Frame one committed block into the log: header, transactions,
    /// state mutations, commit marker.
    pub fn append_block(&mut self, header: &BlockHeader, txs: &[Vec<u8>], batch: &WriteBatch) {
        append_record(
            &mut self.log,
            OP_HEADER,
            &header.height.to_le_bytes(),
            &header.encode(),
        );
        for (i, tx) in txs.iter().enumerate() {
            append_record(&mut self.log, OP_TX, &(i as u32).to_le_bytes(), tx);
        }
        for (key, value) in &batch.ops {
            match value {
                Some(v) => append_record(&mut self.log, OP_PUT, key, v),
                None => append_record(&mut self.log, OP_DEL, key, &[]),
            }
        }
        append_record(
            &mut self.log,
            OP_COMMIT,
            &header.height.to_le_bytes(),
            &header.state_root,
        );
    }

    /// Scan `log` and return every block whose commit marker is intact.
    /// Never panics: a torn record, a corrupt CRC, an out-of-place op or a
    /// group without its marker ends the committed prefix right there.
    pub fn recover(log: &[u8]) -> WalRecovery {
        let mut blocks = Vec::new();
        let mut ends = Vec::new();
        let mut consumed = 0usize;
        let mut pos = 0usize;
        // The group being accumulated (no commit marker seen yet).
        let mut pending: Option<WalBlock> = None;
        while pos < log.len() {
            let Some((op, key, value, next)) = read_record(log, pos) else {
                break; // torn tail
            };
            match (op, &mut pending) {
                (OP_HEADER, None) => {
                    let Some(header) = decode_header_record(key, value) else {
                        break; // poisoned group: stop here
                    };
                    pending = Some(WalBlock {
                        header,
                        txs: Vec::new(),
                        batch: WriteBatch::new(),
                    });
                }
                (OP_TX, Some(block)) => {
                    // Tx records carry their index; out-of-order means a
                    // corrupted group.
                    let ok = key.len() == 4
                        && u32::from_le_bytes(key.try_into().expect("len checked")) as usize
                            == block.txs.len();
                    if !ok {
                        break;
                    }
                    block.txs.push(value.to_vec());
                }
                (OP_PUT, Some(block)) => {
                    block.batch.put(key.to_vec(), value.to_vec());
                }
                (OP_DEL, Some(block)) => {
                    block.batch.delete(key.to_vec());
                }
                (OP_COMMIT, Some(_)) => {
                    let block = pending.take().expect("matched Some");
                    let matches = key == block.header.height.to_le_bytes()
                        && value == block.header.state_root;
                    if !matches {
                        break;
                    }
                    blocks.push(block);
                    ends.push(next);
                    consumed = next;
                }
                _ => break, // op out of place
            }
            pos = next;
        }
        WalRecovery {
            blocks,
            ends,
            torn_bytes: log.len() - consumed,
            consumed,
        }
    }
}

fn decode_header_record(key: &[u8], value: &[u8]) -> Option<BlockHeader> {
    let header = BlockHeader::decode(value)?;
    if key != header.height.to_le_bytes() {
        return None;
    }
    Some(header)
}

/// Outcome of scanning a certificate sidecar log.
#[derive(Debug)]
pub struct CertRecovery {
    /// `(height, opaque certificate bytes)` in append order.
    pub certs: Vec<(u64, Vec<u8>)>,
    /// Bytes of the intact prefix.
    pub consumed: usize,
    /// Bytes discarded after the last intact record.
    pub torn_bytes: usize,
}

/// Sidecar log of quorum certificates, one CRC'd record per committed
/// height, stored *next to* the block WAL (`<wal>.certs`) rather than in
/// it: different replicas legitimately assemble different 2f+1 vote
/// subsets, so splicing certificates into the block stream would break the
/// byte-identical-WAL invariant that state-sync byte cursors rely on.
///
/// Certificate bytes are opaque here — encoding and verification belong to
/// the consensus crate; storage only promises crash-consistent framing
/// (same record format and torn-tail semantics as [`BlockWal`]).
#[derive(Default)]
pub struct CertLog {
    log: Vec<u8>,
}

impl CertLog {
    /// Fresh empty log.
    pub fn new() -> CertLog {
        CertLog::default()
    }

    /// Rebuild from recovered bytes, keeping only the intact prefix.
    pub fn from_recovered(log: &[u8]) -> CertLog {
        let rec = CertLog::recover(log);
        CertLog {
            log: log[..rec.consumed].to_vec(),
        }
    }

    /// The raw log bytes (flushed incrementally like the block WAL).
    pub fn bytes(&self) -> &[u8] {
        &self.log
    }

    /// Total log length — the flush cursor seam.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when no certificate has been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Append the certificate for `height`.
    pub fn append_cert(&mut self, height: u64, cert: &[u8]) {
        append_record(&mut self.log, OP_CERT, &height.to_le_bytes(), cert);
    }

    /// Scan `log` and return every intact certificate record. Never
    /// panics; a torn or corrupt record ends the prefix right there.
    pub fn recover(log: &[u8]) -> CertRecovery {
        let mut certs = Vec::new();
        let mut consumed = 0usize;
        let mut pos = 0usize;
        while pos < log.len() {
            let Some((op, key, value, next)) = read_record(log, pos) else {
                break;
            };
            if op != OP_CERT || key.len() != 8 {
                break;
            }
            let height = u64::from_le_bytes(key.try_into().expect("len checked"));
            certs.push((height, value.to_vec()));
            consumed = next;
            pos = next;
        }
        CertRecovery {
            certs,
            torn_bytes: log.len() - consumed,
            consumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            height,
            parent: [height as u8; 32],
            state_root: [height as u8 + 1; 32],
            tx_root: [height as u8 + 2; 32],
            timestamp_ns: height * 1_000_000,
        }
    }

    fn sample_wal(blocks: u64) -> BlockWal {
        let mut wal = BlockWal::new();
        for h in 1..=blocks {
            let mut batch = WriteBatch::new();
            batch.put(format!("k{h}").into_bytes(), vec![h as u8; 8]);
            batch.delete(format!("dead{h}").into_bytes());
            wal.append_block(&header(h), &[vec![h as u8, 1], vec![h as u8, 2]], &batch);
        }
        wal
    }

    #[test]
    fn round_trips_every_committed_block() {
        let wal = sample_wal(5);
        let rec = BlockWal::recover(wal.bytes());
        assert_eq!(rec.blocks.len(), 5);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.consumed, wal.len());
        for (i, b) in rec.blocks.iter().enumerate() {
            let h = i as u64 + 1;
            assert_eq!(b.header, header(h));
            assert_eq!(b.txs.len(), 2);
            assert_eq!(b.batch.len(), 2);
        }
    }

    #[test]
    fn truncation_at_every_offset_rolls_back_to_a_block_boundary() {
        let wal = sample_wal(3);
        let full = BlockWal::recover(wal.bytes());
        let boundaries: Vec<usize> = {
            // Reconstruct the per-block committed prefix lengths.
            let mut w = BlockWal::new();
            let mut ends = vec![0usize];
            for b in &full.blocks {
                w.append_block(&b.header, &b.txs, &b.batch);
                ends.push(w.len());
            }
            ends
        };
        for cut in 0..wal.len() {
            let rec = BlockWal::recover(&wal.bytes()[..cut]);
            // Prefix-consistency: exactly the blocks whose marker fits.
            let want = boundaries.iter().filter(|&&e| e > 0 && e <= cut).count();
            assert_eq!(rec.blocks.len(), want, "cut={cut}");
            assert_eq!(&rec.blocks[..], &full.blocks[..want], "cut={cut}");
        }
    }

    #[test]
    fn single_bit_corruption_never_yields_a_wrong_block() {
        let wal = sample_wal(2);
        let full = BlockWal::recover(wal.bytes());
        for byte in 0..wal.len() {
            let mut log = wal.bytes().to_vec();
            log[byte] ^= 0x40;
            let rec = BlockWal::recover(&log);
            // Corruption may shorten the prefix, never alter content.
            assert!(rec.blocks.len() <= full.blocks.len(), "byte={byte}");
            assert_eq!(
                &full.blocks[..rec.blocks.len()],
                &rec.blocks[..],
                "byte={byte}"
            );
        }
    }

    #[test]
    fn from_recovered_drops_the_torn_tail() {
        let wal = sample_wal(2);
        let mut log = wal.bytes().to_vec();
        log.extend_from_slice(&[0x10, 0xFF, 0xEE]); // half a record
        let rebuilt = BlockWal::from_recovered(&log);
        assert_eq!(rebuilt.len(), wal.len());
        assert_eq!(BlockWal::recover(rebuilt.bytes()).blocks.len(), 2);
    }

    #[test]
    fn group_without_marker_is_not_replayed() {
        let mut wal = sample_wal(1);
        // Start a second group by hand, no commit marker.
        let h = header(2);
        crate::kvlog::append_record(&mut wal.log, OP_HEADER, &2u64.to_le_bytes(), &h.encode());
        crate::kvlog::append_record(&mut wal.log, OP_PUT, b"half", b"done");
        let rec = BlockWal::recover(wal.bytes());
        assert_eq!(rec.blocks.len(), 1);
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn cert_log_round_trips_and_survives_torn_tail() {
        let mut certs = CertLog::new();
        certs.append_cert(1, &[0xAA; 40]);
        certs.append_cert(2, &[0xBB; 44]);
        certs.append_cert(3, &[0xCC; 48]);
        let rec = CertLog::recover(certs.bytes());
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(
            rec.certs,
            vec![
                (1, vec![0xAA; 40]),
                (2, vec![0xBB; 44]),
                (3, vec![0xCC; 48]),
            ]
        );
        // Torn tail: every truncation keeps an intact prefix.
        for cut in 0..certs.len() {
            let rec = CertLog::recover(&certs.bytes()[..cut]);
            assert!(rec.certs.len() <= 3, "cut={cut}");
            for (i, (h, _)) in rec.certs.iter().enumerate() {
                assert_eq!(*h, i as u64 + 1, "cut={cut}");
            }
        }
        let rebuilt = CertLog::from_recovered(&certs.bytes()[..certs.len() - 3]);
        assert_eq!(CertLog::recover(rebuilt.bytes()).certs.len(), 2);
    }

    /// Satellite: flip one byte in every record kind (HEADER/TX/PUT/DEL/
    /// COMMIT in the block WAL, CERT in the sidecar) at the head, middle,
    /// and tail of the record. Recovery must never panic and must yield a
    /// strict prefix of the uncorrupted content — corrupt state is never
    /// silently accepted.
    #[test]
    fn corruption_matrix_every_record_kind_and_position() {
        let wal = sample_wal(3);
        let full = BlockWal::recover(wal.bytes());
        assert_eq!(full.blocks.len(), 3);
        // Walk the record stream to find each record's op and extent.
        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some((op, _, _, next)) = crate::kvlog::read_record(wal.bytes(), pos) {
            records.push((op, pos, next));
            pos = next;
        }
        let kinds: std::collections::BTreeSet<u8> = records.iter().map(|(op, _, _)| *op).collect();
        assert_eq!(
            kinds,
            [OP_HEADER, OP_TX, OP_PUT, OP_DEL, OP_COMMIT]
                .into_iter()
                .collect(),
            "matrix must cover every block-WAL record kind"
        );
        for (op, start, end) in &records {
            for at in [*start, (*start + *end) / 2, *end - 1] {
                let mut log = wal.bytes().to_vec();
                log[at] ^= 0x01;
                let rec = BlockWal::recover(&log);
                assert!(
                    rec.blocks.len() <= full.blocks.len(),
                    "op={op:#x} at={at}: grew the chain"
                );
                assert_eq!(
                    &full.blocks[..rec.blocks.len()],
                    &rec.blocks[..],
                    "op={op:#x} at={at}: accepted corrupt content"
                );
                assert_eq!(&full.ends[..rec.blocks.len()], &rec.ends[..]);
            }
        }
        // And the CERT sidecar kind.
        let mut certs = CertLog::new();
        for h in 1..=3u64 {
            certs.append_cert(h, &[h as u8; 32]);
        }
        let clean = CertLog::recover(certs.bytes()).certs;
        let len = certs.len();
        for at in [0, len / 2, len - 1] {
            let mut log = certs.bytes().to_vec();
            log[at] ^= 0x01;
            let rec = CertLog::recover(&log);
            assert!(rec.certs.len() <= clean.len(), "cert at={at}");
            assert_eq!(&clean[..rec.certs.len()], &rec.certs[..], "cert at={at}");
        }
    }

    #[test]
    fn recovery_ends_mark_block_boundaries() {
        let wal = sample_wal(4);
        let rec = BlockWal::recover(wal.bytes());
        assert_eq!(rec.ends.len(), 4);
        assert_eq!(*rec.ends.last().unwrap(), wal.len());
        for (i, end) in rec.ends.iter().enumerate() {
            // Truncating at ends[i] replays exactly i+1 blocks.
            let cut = BlockWal::recover(&wal.bytes()[..*end]);
            assert_eq!(cut.blocks.len(), i + 1);
            assert_eq!(cut.torn_bytes, 0);
        }
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let h = header(7);
        let enc = h.encode();
        assert_eq!(enc.len(), 112);
        assert_eq!(BlockHeader::decode(&enc), Some(h));
        assert_eq!(BlockHeader::decode(&enc[..111]), None);
    }
}
