//! Block-framed write-ahead log: the durable-commit seam of the node.
//!
//! [`crate::kvlog`] gives record-level torn-tail recovery; a node needs
//! *block*-level atomicity — a crash mid-commit must roll the whole block
//! back, never replay half of its state mutations. This module frames one
//! committed block as a record group over the same CRC'd record format
//! kvlog uses:
//!
//! ```text
//! HEADER(height → encoded header)
//! TX(index → wire bytes)            × block.txs
//! PUT(key → value) | DEL(key)       × state batch ops
//! COMMIT(height → state_root)       ← the commit marker
//! ```
//!
//! Recovery replays a block only when its `COMMIT` marker is intact and
//! matches the group's `HEADER`; anything after the last intact marker —
//! a torn record, a CRC mismatch, a group missing its marker — is
//! discarded. The log itself is a byte buffer (the process's durable
//! artifact is whatever it flushed to disk); `confide-node` appends the
//! buffer incrementally to a file after every sealed block.

use crate::blockstore::BlockHeader;
use crate::kv::WriteBatch;
use crate::kvlog::{append_record, read_record};

const OP_HEADER: u8 = 0x10;
const OP_TX: u8 = 0x11;
const OP_PUT: u8 = 0x12;
const OP_DEL: u8 = 0x13;
const OP_COMMIT: u8 = 0x1F;

/// One fully committed block recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBlock {
    /// The block header exactly as sealed.
    pub header: BlockHeader,
    /// Raw transaction bytes (the accepted transactions).
    pub txs: Vec<Vec<u8>>,
    /// The state mutations the block committed, in batch order.
    pub batch: WriteBatch,
}

/// Outcome of scanning a log: the committed prefix plus what was cut off.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every block with an intact commit marker, in height order.
    pub blocks: Vec<WalBlock>,
    /// Bytes of the committed prefix (everything after is the torn tail).
    pub consumed: usize,
    /// Bytes discarded after the last commit marker (0 on a clean log).
    pub torn_bytes: usize,
}

/// The block-framed WAL. Append-only; every committed block becomes one
/// record group terminated by a commit marker.
#[derive(Default)]
pub struct BlockWal {
    log: Vec<u8>,
}

impl BlockWal {
    /// Fresh empty log.
    pub fn new() -> BlockWal {
        BlockWal::default()
    }

    /// Rebuild a log from recovered bytes, keeping only the committed
    /// prefix (the torn tail, if any, is dropped).
    pub fn from_recovered(log: &[u8]) -> BlockWal {
        let rec = BlockWal::recover(log);
        BlockWal {
            log: log[..rec.consumed].to_vec(),
        }
    }

    /// The raw log bytes (what a file-backed node has on disk).
    pub fn bytes(&self) -> &[u8] {
        &self.log
    }

    /// Total log length — `confide-node` flushes `bytes()[flushed..]`
    /// after each block.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Frame one committed block into the log: header, transactions,
    /// state mutations, commit marker.
    pub fn append_block(&mut self, header: &BlockHeader, txs: &[Vec<u8>], batch: &WriteBatch) {
        append_record(
            &mut self.log,
            OP_HEADER,
            &header.height.to_le_bytes(),
            &header.encode(),
        );
        for (i, tx) in txs.iter().enumerate() {
            append_record(&mut self.log, OP_TX, &(i as u32).to_le_bytes(), tx);
        }
        for (key, value) in &batch.ops {
            match value {
                Some(v) => append_record(&mut self.log, OP_PUT, key, v),
                None => append_record(&mut self.log, OP_DEL, key, &[]),
            }
        }
        append_record(
            &mut self.log,
            OP_COMMIT,
            &header.height.to_le_bytes(),
            &header.state_root,
        );
    }

    /// Scan `log` and return every block whose commit marker is intact.
    /// Never panics: a torn record, a corrupt CRC, an out-of-place op or a
    /// group without its marker ends the committed prefix right there.
    pub fn recover(log: &[u8]) -> WalRecovery {
        let mut blocks = Vec::new();
        let mut consumed = 0usize;
        let mut pos = 0usize;
        // The group being accumulated (no commit marker seen yet).
        let mut pending: Option<WalBlock> = None;
        while pos < log.len() {
            let Some((op, key, value, next)) = read_record(log, pos) else {
                break; // torn tail
            };
            match (op, &mut pending) {
                (OP_HEADER, None) => {
                    let Some(header) = decode_header_record(key, value) else {
                        break; // poisoned group: stop here
                    };
                    pending = Some(WalBlock {
                        header,
                        txs: Vec::new(),
                        batch: WriteBatch::new(),
                    });
                }
                (OP_TX, Some(block)) => {
                    // Tx records carry their index; out-of-order means a
                    // corrupted group.
                    let ok = key.len() == 4
                        && u32::from_le_bytes(key.try_into().expect("len checked")) as usize
                            == block.txs.len();
                    if !ok {
                        break;
                    }
                    block.txs.push(value.to_vec());
                }
                (OP_PUT, Some(block)) => {
                    block.batch.put(key.to_vec(), value.to_vec());
                }
                (OP_DEL, Some(block)) => {
                    block.batch.delete(key.to_vec());
                }
                (OP_COMMIT, Some(_)) => {
                    let block = pending.take().expect("matched Some");
                    let matches = key == block.header.height.to_le_bytes()
                        && value == block.header.state_root;
                    if !matches {
                        break;
                    }
                    blocks.push(block);
                    consumed = next;
                }
                _ => break, // op out of place
            }
            pos = next;
        }
        WalRecovery {
            blocks,
            torn_bytes: log.len() - consumed,
            consumed,
        }
    }
}

fn decode_header_record(key: &[u8], value: &[u8]) -> Option<BlockHeader> {
    let header = BlockHeader::decode(value)?;
    if key != header.height.to_le_bytes() {
        return None;
    }
    Some(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            height,
            parent: [height as u8; 32],
            state_root: [height as u8 + 1; 32],
            tx_root: [height as u8 + 2; 32],
            timestamp_ns: height * 1_000_000,
        }
    }

    fn sample_wal(blocks: u64) -> BlockWal {
        let mut wal = BlockWal::new();
        for h in 1..=blocks {
            let mut batch = WriteBatch::new();
            batch.put(format!("k{h}").into_bytes(), vec![h as u8; 8]);
            batch.delete(format!("dead{h}").into_bytes());
            wal.append_block(&header(h), &[vec![h as u8, 1], vec![h as u8, 2]], &batch);
        }
        wal
    }

    #[test]
    fn round_trips_every_committed_block() {
        let wal = sample_wal(5);
        let rec = BlockWal::recover(wal.bytes());
        assert_eq!(rec.blocks.len(), 5);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.consumed, wal.len());
        for (i, b) in rec.blocks.iter().enumerate() {
            let h = i as u64 + 1;
            assert_eq!(b.header, header(h));
            assert_eq!(b.txs.len(), 2);
            assert_eq!(b.batch.len(), 2);
        }
    }

    #[test]
    fn truncation_at_every_offset_rolls_back_to_a_block_boundary() {
        let wal = sample_wal(3);
        let full = BlockWal::recover(wal.bytes());
        let boundaries: Vec<usize> = {
            // Reconstruct the per-block committed prefix lengths.
            let mut w = BlockWal::new();
            let mut ends = vec![0usize];
            for b in &full.blocks {
                w.append_block(&b.header, &b.txs, &b.batch);
                ends.push(w.len());
            }
            ends
        };
        for cut in 0..wal.len() {
            let rec = BlockWal::recover(&wal.bytes()[..cut]);
            // Prefix-consistency: exactly the blocks whose marker fits.
            let want = boundaries.iter().filter(|&&e| e > 0 && e <= cut).count();
            assert_eq!(rec.blocks.len(), want, "cut={cut}");
            assert_eq!(&rec.blocks[..], &full.blocks[..want], "cut={cut}");
        }
    }

    #[test]
    fn single_bit_corruption_never_yields_a_wrong_block() {
        let wal = sample_wal(2);
        let full = BlockWal::recover(wal.bytes());
        for byte in 0..wal.len() {
            let mut log = wal.bytes().to_vec();
            log[byte] ^= 0x40;
            let rec = BlockWal::recover(&log);
            // Corruption may shorten the prefix, never alter content.
            assert!(rec.blocks.len() <= full.blocks.len(), "byte={byte}");
            assert_eq!(
                &full.blocks[..rec.blocks.len()],
                &rec.blocks[..],
                "byte={byte}"
            );
        }
    }

    #[test]
    fn from_recovered_drops_the_torn_tail() {
        let wal = sample_wal(2);
        let mut log = wal.bytes().to_vec();
        log.extend_from_slice(&[0x10, 0xFF, 0xEE]); // half a record
        let rebuilt = BlockWal::from_recovered(&log);
        assert_eq!(rebuilt.len(), wal.len());
        assert_eq!(BlockWal::recover(rebuilt.bytes()).blocks.len(), 2);
    }

    #[test]
    fn group_without_marker_is_not_replayed() {
        let mut wal = sample_wal(1);
        // Start a second group by hand, no commit marker.
        let h = header(2);
        crate::kvlog::append_record(&mut wal.log, OP_HEADER, &2u64.to_le_bytes(), &h.encode());
        crate::kvlog::append_record(&mut wal.log, OP_PUT, b"half", b"done");
        let rec = BlockWal::recover(wal.bytes());
        assert_eq!(rec.blocks.len(), 1);
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let h = header(7);
        let enc = h.encode();
        assert_eq!(enc.len(), 112);
        assert_eq!(BlockHeader::decode(&enc), Some(h));
        assert_eq!(BlockHeader::decode(&enc[..111]), None);
    }
}
