//! A write-ahead-log-backed KV store.
//!
//! The paper's modularity argument (§2.4: "Users can even choose their
//! [own] KV storage when hosting a node") needs more than one store behind
//! the [`crate::kv::KvStore`] seam. This one is a classic append-only log
//! plus in-memory index: every mutation is framed into the log
//! (`op, key-len, key, value-len, value, crc`), reads go through a
//! rebuilt-on-recovery memtable, and recovery tolerates a torn tail (a
//! crash mid-append loses at most the unfinished record).
//!
//! The log lives in an in-memory buffer here (the simulation has no real
//! disk), but the format, CRC framing and recovery logic are exactly what
//! a file-backed implementation would use.

use crate::kv::KvStore;
use std::collections::BTreeMap;
use std::ops::Bound;

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// CRC-32 (IEEE 802.3, bitwise — plenty for framing integrity).
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only-log KV store with an in-memory index.
#[derive(Default)]
pub struct LogKv {
    log: Vec<u8>,
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Live bytes (for the compaction heuristic).
    live_bytes: usize,
}

impl LogKv {
    /// Fresh empty store.
    pub fn new() -> LogKv {
        LogKv::default()
    }

    /// Raw log bytes (what a file-backed store would have on disk).
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Recover a store from log bytes, replaying every intact record and
    /// stopping at the first torn/corrupt one (crash-consistent recovery).
    /// Returns the store and the number of records replayed.
    pub fn recover(log: &[u8]) -> (LogKv, usize) {
        let mut store = LogKv::new();
        let mut pos = 0usize;
        let mut replayed = 0usize;
        while pos < log.len() {
            let Some((op, key, value, next)) = read_record(log, pos) else {
                break; // torn tail
            };
            match op {
                OP_PUT => store.index.insert(key.to_vec(), value.to_vec()),
                OP_DELETE => store.index.remove(key),
                _ => break,
            };
            pos = next;
            replayed += 1;
        }
        store.log = log[..pos].to_vec();
        store.live_bytes = store.index.iter().map(|(k, v)| k.len() + v.len()).sum();
        (store, replayed)
    }

    /// Rewrite the log to contain only live records (GC). Returns bytes
    /// reclaimed.
    pub fn compact(&mut self) -> usize {
        let before = self.log.len();
        let mut fresh = Vec::with_capacity(self.live_bytes + self.index.len() * 16);
        for (k, v) in &self.index {
            append_record(&mut fresh, OP_PUT, k, v);
        }
        self.log = fresh;
        before.saturating_sub(self.log.len())
    }

    fn append(&mut self, op: u8, key: &[u8], value: &[u8]) {
        append_record(&mut self.log, op, key, value);
    }
}

/// Frame one `(op, key, value)` record onto `log` (shared with the
/// block-framed [`crate::wal`]).
pub(crate) fn append_record(log: &mut Vec<u8>, op: u8, key: &[u8], value: &[u8]) {
    let start = log.len();
    log.push(op);
    log.extend_from_slice(&(key.len() as u32).to_le_bytes());
    log.extend_from_slice(key);
    log.extend_from_slice(&(value.len() as u32).to_le_bytes());
    log.extend_from_slice(value);
    let crc = crc32(&log[start..]);
    log.extend_from_slice(&crc.to_le_bytes());
}

/// Parse one record at `pos`; `None` on truncation or CRC mismatch.
pub(crate) fn read_record(log: &[u8], pos: usize) -> Option<(u8, &[u8], &[u8], usize)> {
    let op = *log.get(pos)?;
    let mut cursor = pos + 1;
    let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
        let s = log.get(*cursor..*cursor + n)?;
        *cursor += n;
        Some(s)
    };
    let klen = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
    let key_start = cursor;
    take(&mut cursor, klen)?;
    let vlen = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
    let value_start = cursor;
    take(&mut cursor, vlen)?;
    let stored_crc = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?);
    if crc32(&log[pos..cursor - 4]) != stored_crc {
        return None;
    }
    Some((
        op,
        &log[key_start..key_start + klen],
        &log[value_start..value_start + vlen],
        cursor,
    ))
}

impl KvStore for LogKv {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.index.get(key).cloned()
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.append(OP_PUT, key, value);
        if let Some(old) = self.index.insert(key.to_vec(), value.to_vec()) {
            self.live_bytes = self.live_bytes + value.len() - old.len();
        } else {
            self.live_bytes += key.len() + value.len();
        }
    }

    fn delete(&mut self, key: &[u8]) {
        self.append(OP_DELETE, key, &[]);
        if let Some(old) = self.index.remove(key) {
            self.live_bytes -= key.len() + old.len();
        }
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.index
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::WriteBatch;

    #[test]
    fn put_get_delete_through_the_log() {
        let mut kv = LogKv::new();
        kv.put(b"a", b"1");
        kv.put(b"b", b"2");
        kv.delete(b"a");
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn recovery_replays_the_full_log() {
        let mut kv = LogKv::new();
        for i in 0..50 {
            kv.put(format!("key{i:02}").as_bytes(), format!("v{i}").as_bytes());
        }
        kv.delete(b"key07");
        kv.put(b"key10", b"overwritten");
        let (recovered, replayed) = LogKv::recover(kv.log_bytes());
        assert_eq!(replayed, 52);
        assert_eq!(recovered.len(), 49);
        assert_eq!(recovered.get(b"key07"), None);
        assert_eq!(recovered.get(b"key10"), Some(b"overwritten".to_vec()));
    }

    #[test]
    fn torn_tail_tolerated_crash_consistency() {
        let mut kv = LogKv::new();
        kv.put(b"committed", b"yes");
        kv.put(b"victim", b"of the crash");
        let log = kv.log_bytes();
        // Simulate a crash mid-append of the second record.
        for cut in [log.len() - 1, log.len() - 5, log.len() - 10] {
            let (recovered, replayed) = LogKv::recover(&log[..cut]);
            assert_eq!(replayed, 1, "cut={cut}");
            assert_eq!(recovered.get(b"committed"), Some(b"yes".to_vec()));
            assert_eq!(recovered.get(b"victim"), None);
        }
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut kv = LogKv::new();
        kv.put(b"ok", b"1");
        kv.put(b"bad", b"2");
        let mut log = kv.log_bytes().to_vec();
        // Flip a byte inside the second record's value.
        let n = log.len();
        log[n - 6] ^= 0xff;
        let (recovered, replayed) = LogKv::recover(&log);
        assert_eq!(replayed, 1);
        assert_eq!(recovered.get(b"bad"), None);
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_state() {
        let mut kv = LogKv::new();
        for round in 0..10 {
            for i in 0..20 {
                kv.put(format!("k{i}").as_bytes(), format!("r{round}").as_bytes());
            }
        }
        let before = kv.log_bytes().len();
        let reclaimed = kv.compact();
        assert!(reclaimed > before / 2, "reclaimed {reclaimed} of {before}");
        // Same contents after compaction and after recovery of the
        // compacted log.
        let (recovered, _) = LogKv::recover(kv.log_bytes());
        for i in 0..20 {
            assert_eq!(
                recovered.get(format!("k{i}").as_bytes()),
                Some(b"r9".to_vec())
            );
        }
    }

    #[test]
    fn batch_and_scan_work_via_the_trait() {
        let mut kv = LogKv::new();
        let mut batch = WriteBatch::new();
        batch.put(b"acct:a".to_vec(), b"1".to_vec());
        batch.put(b"acct:b".to_vec(), b"2".to_vec());
        batch.put(b"other".to_vec(), b"3".to_vec());
        kv.apply(&batch);
        assert_eq!(kv.scan_prefix(b"acct:").len(), 2);
        // Recovery sees batch writes too.
        let (recovered, _) = LogKv::recover(kv.log_bytes());
        assert_eq!(recovered.scan_prefix(b"acct:").len(), 2);
    }

    #[test]
    fn crc32_known_value() {
        // CRC-32("123456789") = 0xCBF43926 — the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }
}
