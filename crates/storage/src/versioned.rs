//! Versioned state with rollback detection.
//!
//! §3.3: a malicious host can "roll back the data in local database to
//! replace the new data with the stale ones". The enclave defends by
//! tracking the expected state version/root; this module is the storage
//! side of that defence — per-block batches bump a monotonic version, the
//! Merkle root commits the full state, and [`StateDb::verify_version`]
//! detects both stale roots and height mismatches.

use crate::kv::{KvStore, MemKv, WriteBatch};
use crate::merkle::{MerkleProof, MerkleTree};

/// State-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Applied batch for a height other than `current + 1`.
    BadHeight {
        /// What the caller tried to apply.
        got: u64,
        /// What the database expected.
        expected: u64,
    },
    /// Version check failed: database state does not match the claimed
    /// (height, root) — the §3.3 rollback attack, detected.
    RollbackDetected {
        /// Height claimed by the verifier.
        height: u64,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::BadHeight { got, expected } => {
                write!(f, "batch for height {got}, expected {expected}")
            }
            StateError::RollbackDetected { height } => {
                write!(f, "state does not match committed root at height {height}")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Versioned contract-state database.
pub struct StateDb {
    kv: MemKv,
    height: u64,
    /// Root history: `roots[h]` = state root after block `h` (index 0 =
    /// genesis/empty).
    roots: Vec<[u8; 32]>,
}

impl Default for StateDb {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDb {
    /// Empty state at height 0.
    pub fn new() -> StateDb {
        let kv = MemKv::new();
        let root = MerkleTree::build(&[]).root();
        StateDb {
            kv,
            height: 0,
            roots: vec![root],
        }
    }

    /// Current block height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Read access to the underlying KV.
    pub fn kv(&self) -> &MemKv {
        &self.kv
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.kv.get(key)
    }

    /// Prefix scan.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.kv.scan_prefix(prefix)
    }

    /// Current state root.
    pub fn root(&self) -> [u8; 32] {
        *self.roots.last().expect("roots never empty")
    }

    /// Root recorded at `height`, if known.
    pub fn root_at(&self, height: u64) -> Option<[u8; 32]> {
        self.roots.get(height as usize).copied()
    }

    /// Apply block `height`'s write batch; returns the new root.
    pub fn apply_block(&mut self, height: u64, batch: &WriteBatch) -> Result<[u8; 32], StateError> {
        if height != self.height + 1 {
            return Err(StateError::BadHeight {
                got: height,
                expected: self.height + 1,
            });
        }
        self.kv.apply(batch);
        self.height = height;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = self
            .kv
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let root = MerkleTree::build(&pairs).root();
        self.roots.push(root);
        Ok(root)
    }

    /// Recompute the current root from the raw KV and compare against the
    /// root committed for `height` — detects a host that rolled the
    /// database back (or edited it) underneath the enclave.
    pub fn verify_version(&self, height: u64) -> Result<(), StateError> {
        let expected = self
            .roots
            .get(height as usize)
            .copied()
            .ok_or(StateError::RollbackDetected { height })?;
        if height != self.height {
            return Err(StateError::RollbackDetected { height });
        }
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = self
            .kv
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let actual = MerkleTree::build(&pairs).root();
        if actual != expected {
            return Err(StateError::RollbackDetected { height });
        }
        Ok(())
    }

    /// Produce a Merkle inclusion proof for `key` against the current
    /// root — the backing for §3.3's "consensus read (e.g. SPV)": a client
    /// fetches the value + proof from one node and checks the root against
    /// a quorum of other nodes' headers.
    pub fn prove(&self, key: &[u8]) -> Option<(Vec<u8>, MerkleProof)> {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = self
            .kv
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let index = pairs.iter().position(|(k, _)| k.as_slice() == key)?;
        let tree = MerkleTree::build(&pairs);
        let proof = tree.prove(index)?;
        Some((pairs[index].1.clone(), proof))
    }

    /// TEST/ATTACK HELPER: mutate the raw KV *without* version accounting,
    /// as a malicious host with direct database access would.
    pub fn tamper_raw(&mut self, key: &[u8], value: Option<&[u8]>) {
        match value {
            Some(v) => self.kv.put(key, v),
            None => self.kv.delete(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(kvs: &[(&str, &str)]) -> WriteBatch {
        let mut b = WriteBatch::new();
        for (k, v) in kvs {
            b.put(k.as_bytes().to_vec(), v.as_bytes().to_vec());
        }
        b
    }

    #[test]
    fn apply_blocks_in_sequence() {
        let mut db = StateDb::new();
        let r1 = db.apply_block(1, &batch(&[("a", "1")])).unwrap();
        let r2 = db.apply_block(2, &batch(&[("b", "2")])).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(db.height(), 2);
        assert_eq!(db.root_at(1), Some(r1));
        db.verify_version(2).unwrap();
    }

    #[test]
    fn out_of_order_block_rejected() {
        let mut db = StateDb::new();
        assert_eq!(
            db.apply_block(2, &batch(&[("a", "1")])).unwrap_err(),
            StateError::BadHeight {
                got: 2,
                expected: 1
            }
        );
    }

    #[test]
    fn same_batches_same_roots_on_two_replicas() {
        let mut a = StateDb::new();
        let mut b = StateDb::new();
        for h in 1..=5u64 {
            let wb = batch(&[(&format!("k{h}"), &format!("v{h}"))]);
            let ra = a.apply_block(h, &wb).unwrap();
            let rb = b.apply_block(h, &wb).unwrap();
            assert_eq!(ra, rb, "replicas must agree at height {h}");
        }
    }

    #[test]
    fn rollback_attack_detected() {
        let mut db = StateDb::new();
        db.apply_block(1, &batch(&[("balance", "100")])).unwrap();
        db.apply_block(2, &batch(&[("balance", "50")])).unwrap();
        db.verify_version(2).unwrap();
        // Malicious host restores the stale value directly in the KV.
        db.tamper_raw(b"balance", Some(b"100"));
        assert_eq!(
            db.verify_version(2).unwrap_err(),
            StateError::RollbackDetected { height: 2 }
        );
    }

    #[test]
    fn deletion_attack_detected() {
        let mut db = StateDb::new();
        db.apply_block(1, &batch(&[("audit", "entry")])).unwrap();
        db.tamper_raw(b"audit", None);
        assert!(db.verify_version(1).is_err());
    }

    #[test]
    fn stale_height_claim_detected() {
        let mut db = StateDb::new();
        db.apply_block(1, &batch(&[("a", "1")])).unwrap();
        db.apply_block(2, &batch(&[("a", "2")])).unwrap();
        // Claiming the chain is still at height 1 (a frozen replica).
        assert!(db.verify_version(1).is_err());
        assert!(db.verify_version(99).is_err());
    }
}
