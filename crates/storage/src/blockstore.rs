//! Hash-linked block storage.

use crate::merkle::MerkleTree;
use confide_crypto::sha256;

/// A block header: everything consensus signs off on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height (genesis = 0).
    pub height: u64,
    /// Hash of the parent header.
    pub parent: [u8; 32],
    /// Merkle root of the post-execution state.
    pub state_root: [u8; 32],
    /// Merkle root over transaction hashes.
    pub tx_root: [u8; 32],
    /// Simulated timestamp (ns).
    pub timestamp_ns: u64,
}

impl BlockHeader {
    /// Header hash.
    pub fn hash(&self) -> [u8; 32] {
        sha256(&self.encode())
    }

    /// Fixed 112-byte wire/log encoding (the hash preimage).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 32 * 3 + 8);
        buf.extend_from_slice(&self.height.to_le_bytes());
        buf.extend_from_slice(&self.parent);
        buf.extend_from_slice(&self.state_root);
        buf.extend_from_slice(&self.tx_root);
        buf.extend_from_slice(&self.timestamp_ns.to_le_bytes());
        buf
    }

    /// Decode an [`encode`](BlockHeader::encode)d header; `None` unless
    /// `bytes` is exactly 112 bytes.
    pub fn decode(bytes: &[u8]) -> Option<BlockHeader> {
        if bytes.len() != 112 {
            return None;
        }
        let arr32 = |s: &[u8]| -> [u8; 32] { s.try_into().expect("slice is 32 bytes") };
        Some(BlockHeader {
            height: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            parent: arr32(&bytes[8..40]),
            state_root: arr32(&bytes[40..72]),
            tx_root: arr32(&bytes[72..104]),
            timestamp_ns: u64::from_le_bytes(bytes[104..112].try_into().expect("8 bytes")),
        })
    }
}

/// A block: header + opaque transaction payloads (ciphertext for
/// confidential transactions — the block store never sees plaintext).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Raw transaction bytes.
    pub txs: Vec<Vec<u8>>,
}

impl Block {
    /// Compute the tx root for a set of payloads.
    pub fn tx_root(txs: &[Vec<u8>]) -> [u8; 32] {
        MerkleTree::from_leaves(txs.iter().map(|t| sha256(t)).collect()).root()
    }

    /// Total byte size (block-size limits, disk write model).
    pub fn byte_size(&self) -> usize {
        96 + self.txs.iter().map(|t| t.len()).sum::<usize>()
    }
}

/// Block store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockStoreError {
    /// Parent hash does not match the current tip.
    BadParent,
    /// Height is not tip + 1.
    BadHeight,
    /// Declared tx root does not match the payloads.
    BadTxRoot,
}

impl std::fmt::Display for BlockStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockStoreError::BadParent => f.write_str("parent hash mismatch"),
            BlockStoreError::BadHeight => f.write_str("non-sequential height"),
            BlockStoreError::BadTxRoot => f.write_str("tx root mismatch"),
        }
    }
}

impl std::error::Error for BlockStoreError {}

/// An append-only, validated chain of blocks.
pub struct BlockStore {
    blocks: Vec<Block>,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore {
    /// Start from the genesis block (height 0, empty).
    pub fn new() -> BlockStore {
        let genesis = Block {
            header: BlockHeader {
                height: 0,
                parent: [0u8; 32],
                state_root: crate::merkle::empty_root(),
                tx_root: Block::tx_root(&[]),
                timestamp_ns: 0,
            },
            txs: Vec::new(),
        };
        BlockStore {
            blocks: vec![genesis],
        }
    }

    /// The current tip.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Current height.
    pub fn height(&self) -> u64 {
        self.tip().header.height
    }

    /// Append a block after validating linkage and tx root.
    pub fn append(&mut self, block: Block) -> Result<(), BlockStoreError> {
        let tip = self.tip();
        if block.header.height != tip.header.height + 1 {
            return Err(BlockStoreError::BadHeight);
        }
        if block.header.parent != tip.header.hash() {
            return Err(BlockStoreError::BadParent);
        }
        if block.header.tx_root != Block::tx_root(&block.txs) {
            return Err(BlockStoreError::BadTxRoot);
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Block at `height`.
    pub fn get(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Walk the chain verifying every hash link; true when intact.
    pub fn verify_chain(&self) -> bool {
        self.blocks.windows(2).all(|w| {
            w[1].header.parent == w[0].header.hash()
                && w[1].header.height == w[0].header.height + 1
                && w[1].header.tx_root == Block::tx_root(&w[1].txs)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn next_block(store: &BlockStore, txs: Vec<Vec<u8>>) -> Block {
        let tip = store.tip();
        Block {
            header: BlockHeader {
                height: tip.header.height + 1,
                parent: tip.header.hash(),
                state_root: [1u8; 32],
                tx_root: Block::tx_root(&txs),
                timestamp_ns: 1000,
            },
            txs,
        }
    }

    #[test]
    fn append_and_verify() {
        let mut store = BlockStore::new();
        for i in 0..5 {
            let b = next_block(&store, vec![format!("tx{i}").into_bytes()]);
            store.append(b).unwrap();
        }
        assert_eq!(store.height(), 5);
        assert!(store.verify_chain());
        assert_eq!(store.get(3).unwrap().txs[0], b"tx2");
    }

    #[test]
    fn bad_parent_rejected() {
        let mut store = BlockStore::new();
        let mut b = next_block(&store, vec![]);
        b.header.parent = [9u8; 32];
        assert_eq!(store.append(b).unwrap_err(), BlockStoreError::BadParent);
    }

    #[test]
    fn bad_height_rejected() {
        let mut store = BlockStore::new();
        let mut b = next_block(&store, vec![]);
        b.header.height = 5;
        assert_eq!(store.append(b).unwrap_err(), BlockStoreError::BadHeight);
    }

    #[test]
    fn tampered_tx_payload_detected() {
        let mut store = BlockStore::new();
        let mut b = next_block(&store, vec![b"pay alice".to_vec()]);
        b.txs[0] = b"pay mallory".to_vec();
        assert_eq!(store.append(b).unwrap_err(), BlockStoreError::BadTxRoot);
    }

    #[test]
    fn chain_walk_detects_midchain_tamper() {
        let mut store = BlockStore::new();
        for i in 0..3 {
            let b = next_block(&store, vec![vec![i]]);
            store.append(b).unwrap();
        }
        assert!(store.verify_chain());
        store.blocks[1].txs[0] = b"evil".to_vec();
        assert!(!store.verify_chain());
    }

    #[test]
    fn header_hash_covers_all_fields() {
        let h = BlockHeader {
            height: 1,
            parent: [0; 32],
            state_root: [1; 32],
            tx_root: [2; 32],
            timestamp_ns: 3,
        };
        let base = h.hash();
        let mut h2 = h.clone();
        h2.timestamp_ns = 4;
        assert_ne!(base, h2.hash());
        let mut h3 = h.clone();
        h3.state_root = [9; 32];
        assert_ne!(base, h3.hash());
    }
}
