//! Group-commit writer for the block-framed WAL file.
//!
//! [`crate::wal::BlockWal`] frames committed blocks into a byte log; a
//! file-backed node must make each block's delta durable before it
//! acknowledges the block. Fsyncing once per block puts a disk round
//! trip on every block's critical path — the pipelined server instead
//! hands the commit stage *batches* of block deltas and this writer
//! amortizes one `write_all` + one `fsync` across the whole group
//! (classic group commit: the durability barrier is preserved, its cost
//! is divided by the group size).
//!
//! The writer records a group-size histogram so the benchmark can show
//! how many blocks each fsync actually covered under load.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Bucket boundaries of the group-size histogram: groups of exactly 1,
/// 2, 3–4, 5–8, 9–16, and 17+ blocks per fsync.
pub const GROUP_BUCKETS: [&str; 6] = ["1", "2", "3-4", "5-8", "9-16", "17+"];

/// Running group-commit accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Total fsync calls issued.
    pub fsyncs: u64,
    /// Total block deltas made durable.
    pub blocks: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Largest single group.
    pub max_group: u64,
    /// Histogram over [`GROUP_BUCKETS`].
    pub group_hist: [u64; GROUP_BUCKETS.len()],
}

impl GroupCommitStats {
    /// Mean blocks per fsync (1.0 when group commit never batched).
    pub fn blocks_per_fsync(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.blocks as f64 / self.fsyncs as f64
        }
    }

    fn note_group(&mut self, blocks: u64, bytes: u64) {
        self.fsyncs += 1;
        self.blocks += blocks;
        self.bytes += bytes;
        self.max_group = self.max_group.max(blocks);
        let bucket = match blocks {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        self.group_hist[bucket] += 1;
    }
}

/// Append-only WAL file with group-commit flushing.
pub struct WalFile {
    file: File,
    path: PathBuf,
    stats: GroupCommitStats,
}

impl WalFile {
    /// Open (create if absent) the WAL file for appending.
    pub fn open(path: &Path) -> io::Result<WalFile> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalFile {
            file,
            path: path.to_path_buf(),
            stats: GroupCommitStats::default(),
        })
    }

    /// The file path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accounting so far.
    pub fn stats(&self) -> &GroupCommitStats {
        &self.stats
    }

    /// Make a group of block deltas durable: one buffered write of every
    /// delta, then exactly one fsync. Returns only after the data *and*
    /// file metadata are on disk — the caller may acknowledge every block
    /// in the group once this returns.
    ///
    /// Empty deltas are permitted (an empty group is a no-op that costs
    /// no fsync).
    pub fn commit_group(&mut self, deltas: &[&[u8]]) -> io::Result<()> {
        if deltas.is_empty() {
            return Ok(());
        }
        let mut bytes = 0u64;
        for delta in deltas {
            self.file.write_all(delta)?;
            bytes += delta.len() as u64;
        }
        self.file.sync_all()?;
        self.stats.note_group(deltas.len() as u64, bytes);
        Ok(())
    }

    /// Single-block convenience (a group of one).
    pub fn commit_one(&mut self, delta: &[u8]) -> io::Result<()> {
        self.commit_group(&[delta])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("confide-walfile-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn groups_are_appended_in_order_and_counted() {
        let path = tmp("order");
        let mut w = WalFile::open(&path).unwrap();
        w.commit_group(&[b"aa", b"bb"]).unwrap();
        w.commit_one(b"cc").unwrap();
        w.commit_group(&[]).unwrap(); // no-op, no fsync
        let s = w.stats().clone();
        assert_eq!(s.fsyncs, 2);
        assert_eq!(s.blocks, 3);
        assert_eq!(s.bytes, 6);
        assert_eq!(s.max_group, 2);
        assert_eq!(s.group_hist[0], 1); // the group of 1
        assert_eq!(s.group_hist[1], 1); // the group of 2
        assert!((s.blocks_per_fsync() - 1.5).abs() < 1e-9);
        drop(w);
        assert_eq!(std::fs::read(&path).unwrap(), b"aabbcc");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_appends_after_existing_bytes() {
        let path = tmp("reopen");
        WalFile::open(&path).unwrap().commit_one(b"first|").unwrap();
        WalFile::open(&path).unwrap().commit_one(b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first|second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn histogram_buckets_cover_large_groups() {
        let mut s = GroupCommitStats::default();
        for n in [1u64, 2, 3, 4, 5, 8, 9, 16, 17, 100] {
            s.note_group(n, n);
        }
        assert_eq!(s.group_hist, [1, 1, 2, 2, 2, 2]);
        assert_eq!(s.max_group, 100);
    }
}
