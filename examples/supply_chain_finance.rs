//! Supply Chain Finance on Blockchain (paper Fig. 1 + Fig. 8).
//!
//! ```text
//! cargo run --example supply_chain_finance
//! ```
//!
//! Deploys the SCF-AR contract suite (Gateway → Manager → ArAccount /
//! ArIssue / ArTransfer / ArClear), issues an account-receivable asset from
//! a core enterprise to a supplier, transfers a slice of it down the supply
//! chain, and prints the Table-1-style per-operation profile of the flow.

#![forbid(unsafe_code)]
use confide::contracts::scf;
use confide::core::context::ExecContext;
use confide::core::engine::{Engine, EngineConfig};
use confide::core::keys::NodeKeys;
use confide::crypto::HmacDrbg;
use confide::storage::versioned::StateDb;
use confide::tee::platform::TeePlatform;

fn main() {
    // Confidential engine — banks must not see each other's positions.
    let platform = TeePlatform::new(1, 99);
    let mut rng = HmacDrbg::from_u64(5);
    let keys = NodeKeys::generate(&mut rng);
    let engine = Engine::confidential(platform, keys, EngineConfig::default());

    let addrs = scf::deploy_suite(&engine, true);
    println!("SCF-AR suite deployed: 6 contracts (Gateway, Manager, 4 services)");

    let mut state = StateDb::new();
    let mut ctx = ExecContext::new();
    scf::run_genesis(&engine, &state, &mut ctx, &addrs, 8);
    let batch = engine.commit_block(&mut ctx, 1).unwrap();
    state.apply_block(1, &batch).expect("genesis block");
    println!("genesis: accounts alice+bob, asset AR-7788 (face 100000, 8 custody steps)");

    // The typical asset-transfer flow the paper profiles in Table 1.
    let mut ctx = ExecContext::new();
    let req = scf::transfer_request("alice", "bob", "AR-7788", 40_000);
    let out = engine
        .invoke_inner(&state, &mut ctx, &addrs.gateway, "main", &req, &[9u8; 32])
        .expect("transfer");
    println!("transfer result: {}", String::from_utf8_lossy(&out));
    assert!(out.starts_with(b"OK:"));

    // Table-1-style profile of this flow.
    let counters = ctx.counters;
    println!("\nOperations of SCF-AR contract (this flow, simulated cycles → ms @3.7GHz):");
    println!(
        "{:<24} {:>12} {:>8} {:>8}",
        "Method", "Duration(ms)", "Counts", "Ratio"
    );
    for (name, ms, count, ratio) in counters.table1_rows(engine.model()) {
        println!("{name:<24} {ms:>12.2} {count:>8} {:>7.1}%", ratio * 100.0);
    }
    println!(
        "\nVM instructions retired: {}  |  enclave crossings: {}  |  state bytes enciphered: {}",
        counters.vm_instret, counters.ocalls, counters.state_crypto_bytes
    );

    // Commit and verify the balances landed.
    let batch = engine.commit_block(&mut ctx, 2).unwrap();
    state.apply_block(2, &batch).expect("block 2");
    let mut ctx = ExecContext::new();
    let bob_balance_probe = engine
        .invoke_inner(
            &state,
            &mut ctx,
            &addrs.ar_account,
            "main",
            b"exists|bob",
            &[9u8; 32],
        )
        .unwrap();
    assert_eq!(bob_balance_probe, b"1");
    println!(
        "\nchain height 2, state root {}…",
        &confide::crypto::hex(&state.root())[..16]
    );
    println!("supply chain finance example OK");
}
