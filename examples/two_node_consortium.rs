//! A two-node consortium: K-Protocol key agreement + replicated
//! confidential execution (paper §3.2.2 + §3.3).
//!
//! ```text
//! cargo run --example two_node_consortium
//! ```
//!
//! Node A's KM enclave generates the consortium secrets; node B joins via
//! the decentralized Mutual Authenticated Protocol (mutual remote
//! attestation + attested key exchange). Both nodes then execute the same
//! confidential block and — because D-Protocol encryption is deterministic
//! across replicas — arrive at byte-identical sealed state and the same
//! state root, which is what lets ordinary consensus run over encrypted
//! state. Finally a malicious host rolls node B's database back and the
//! version check catches it.

#![forbid(unsafe_code)]
use confide::core::client::ConfideClient;
use confide::core::engine::{EngineConfig, VmKind};
use confide::core::keys::{decentralized_join, NodeKeys};
use confide::core::node::ConfideNode;
use confide::crypto::HmacDrbg;
use confide::tee::platform::TeePlatform;

const LEDGER: &str = r#"
export fn main() {
    let j: bytes = input();
    let to: bytes = json_get(j, b"to");
    let amount: int = json_get_int(j, b"amount");
    let key: bytes = concat(b"bal:", to);
    let bal: int = atoi(storage_get(key));
    storage_set(key, itoa(bal + amount));
    ret(itoa(bal + amount));
}
"#;

fn main() {
    // K-Protocol: A generates, B joins through mutual attestation.
    let platform_a = TeePlatform::new(1, 1001);
    let platform_b = TeePlatform::new(2, 2002);
    let mut rng = HmacDrbg::from_u64(3);
    let keys_a = NodeKeys::generate(&mut rng);
    let keys_b =
        decentralized_join(&platform_a, &keys_a, &platform_b, 1, 77).expect("MAP join succeeds");
    assert_eq!(keys_a.k_states, keys_b.k_states);
    println!(
        "K-Protocol: node B joined via remote attestation; shared pk_tx = {}…",
        &confide::crypto::hex(&keys_a.pk_tx())[..16]
    );

    let mut node_a = ConfideNode::new(platform_a, keys_a, EngineConfig::default(), 10);
    let mut node_b = ConfideNode::new(platform_b, keys_b, EngineConfig::default(), 10);

    let code = confide::lang::build_vm(LEDGER).unwrap();
    let contract = [0x77; 32];
    node_a
        .deploy(contract, &code, VmKind::ConfideVm, true)
        .unwrap();
    node_b
        .deploy(contract, &code, VmKind::ConfideVm, true)
        .unwrap();

    // One client, three confidential transfers; both replicas execute the
    // identical ordered block.
    let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
    let mut txs = Vec::new();
    for (to, amount) in [("alice", 100), ("bob", 250), ("alice", 50)] {
        let (tx, _, _) = client
            .confidential_tx(
                &node_a.pk_tx(),
                contract,
                "main",
                format!(r#"{{"to":"{to}","amount":{amount}}}"#).as_bytes(),
            )
            .unwrap();
        txs.push(tx);
    }
    let ra = node_a.execute_block(&txs).expect("node A executes");
    let rb = node_b.execute_block(&txs).expect("node B executes");
    println!(
        "block 1 executed on both nodes: {} txs, receipts match: {}",
        ra.receipts.len(),
        ra.receipts == rb.receipts
    );
    assert_eq!(node_a.state_root(), node_b.state_root());
    println!(
        "state roots agree over *sealed* state: {}…",
        &confide::crypto::hex(&node_a.state_root())[..16]
    );

    // §3.3: the malicious host rolls node B's database back.
    node_b
        .state
        .verify_version(1)
        .expect("clean state verifies");
    let key = confide::core::engine::full_key(&contract, b"bal:alice");
    let stale = node_b.state.get(&key).map(|mut v| {
        v[0] ^= 1;
        v
    });
    node_b.state.tamper_raw(&key, stale.as_deref());
    let detection = node_b.state.verify_version(1);
    println!("after host-level rollback/tamper, verify_version: {detection:?}");
    assert!(detection.is_err());
    println!("two-node consortium example OK");
}
