//! Quickstart: a confidential counter contract, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full CONFIDE life cycle on one node: write a contract in CCL,
//! compile it to CONFIDE-VM bytecode, deploy it confidentially, send an
//! envelope-encrypted transaction (T-Protocol), execute it in the simulated
//! enclave, decrypt the receipt as the owner, and demonstrate that the raw
//! database holds only ciphertext (D-Protocol).

#![forbid(unsafe_code)]
use confide::core::client::ConfideClient;
use confide::core::engine::{EngineConfig, VmKind};
use confide::core::keys::NodeKeys;
use confide::core::node::ConfideNode;
use confide::crypto::HmacDrbg;
use confide::tee::platform::TeePlatform;

const COUNTER: &str = r#"
export fn add() {
    let n: int = atoi(storage_get(b"count"));
    n = n + atoi(input());
    storage_set(b"count", itoa(n));
    ret(itoa(n));
}
"#;

fn main() {
    // 1. A TEE-capable node with K-Protocol keys.
    let platform = TeePlatform::new(1, 2024);
    let mut rng = HmacDrbg::from_u64(7);
    let keys = NodeKeys::generate(&mut rng);
    let mut node = ConfideNode::new(platform, keys, EngineConfig::default(), 1);
    println!(
        "node up, pk_tx = {}…",
        &confide::crypto::hex(&node.pk_tx())[..16]
    );

    // 2. Compile and deploy the contract (confidential: code sealed too).
    let code = confide::lang::build_vm(COUNTER).expect("contract compiles");
    let contract = [0x42; 32];
    node.deploy(contract, &code, VmKind::ConfideVm, true)
        .unwrap();
    println!("deployed {} bytes of sealed contract code", code.len());

    // 3. The client seals a transaction to pk_tx and submits it.
    let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
    let (tx, tx_hash, _k_tx) = client
        .confidential_tx(&node.pk_tx(), contract, "add", b"41")
        .expect("seal tx");
    let result = node.execute_block(&[tx]).expect("block executes");
    println!(
        "block 1: {} tx, {} contract calls, {} storage ops",
        result.receipts.len(),
        result.totals.contract_calls,
        result.totals.get_storage + result.totals.set_storage,
    );

    // 4. Only the owner can open the receipt.
    let sealed = node.stored_receipt(&tx_hash).expect("receipt stored");
    let receipt = client
        .open_receipt(&sealed, &tx_hash)
        .expect("owner decrypts");
    println!(
        "receipt: success={} return={:?}",
        receipt.success,
        String::from_utf8_lossy(&receipt.return_data)
    );
    assert_eq!(receipt.return_data, b"41");

    // A second transaction sees the sealed state from block 1.
    let (tx2, h2, _) = client
        .confidential_tx(&node.pk_tx(), contract, "add", b"1")
        .expect("seal tx");
    node.execute_block(&[tx2]).expect("block 2");
    let receipt2 = client
        .open_receipt(&node.stored_receipt(&h2).unwrap(), &h2)
        .unwrap();
    assert_eq!(receipt2.return_data, b"42");
    println!(
        "counter after block 2: {}",
        String::from_utf8_lossy(&receipt2.return_data)
    );

    // 5. The raw database never sees plaintext.
    let mut leaked = false;
    for (_k, v) in node.state.kv().iter() {
        if v.windows(2).any(|w| w == b"42") && v.len() < 20 {
            leaked = true;
        }
    }
    println!("plaintext visible in raw KV store: {leaked}");
    assert!(!leaked);
    println!("quickstart OK");
}
